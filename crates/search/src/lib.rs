//! # cned-search
//!
//! Nearest-neighbour search over arbitrary [`cned_core::metric::Distance`]s,
//! implementing the machinery of the paper's Section 4.3:
//!
//! * [`laesa`] — **LAESA** (Micó, Oncina & Vidal 1994, ref \[5\]):
//!   linear preprocessing time and memory; at query time, distances to
//!   a fixed set of *pivots* (base prototypes) give triangle-inequality
//!   lower bounds that eliminate most candidates, so only a handful of
//!   real distance computations remain. This is the engine behind
//!   Figures 3–4 and the "LAESA" column of Table 2.
//! * [`aesa`] — AESA (ref \[6\] context): the quadratic-memory variant
//!   that stores the full pairwise matrix and uses *every* computed
//!   distance as a pivot; fewest computations, largest preprocessing.
//! * [`linear`] — exhaustive scan: the "Exhaustive search" column of
//!   Table 2 and the correctness oracle for the tests.
//! * [`pivots`] — greedy maximum-sum pivot selection (the classic
//!   LAESA strategy) and a random baseline for the ablation bench.
//! * [`vptree`] — a vantage-point tree, backing the paper's remark
//!   that its results "apply in similar cases" for other
//!   metric-property-based methods.
//! * [`counter`] — a `Distance` wrapper counting real distance
//!   evaluations, the y-axis of Figures 3–4.
//!
//! Elimination via lower bounds is only *sound* when the distance is a
//! metric — with a non-metric (e.g. `d_max`) LAESA may return a
//! non-optimal neighbour. The paper exploits exactly this contrast
//! (Table 2 shows `d_max` LAESA ≠ exhaustive); these implementations
//! accept non-metrics and reproduce that behaviour.

//! ## Throughput machinery
//!
//! Beyond the paper's algorithms, this crate provides the plumbing
//! that makes them fast on real hardware:
//!
//! * **parallel preprocessing** — [`Aesa::build`] and [`Laesa::build`]
//!   fan their `n·(n−1)/2` / `p·n` distance loops across cores
//!   ([`parallel`]);
//! * **batch queries** — `nn_batch`/`knn_batch` on linear scan, LAESA
//!   and AESA parallelise across queries and reuse each query's
//!   prepared form ([`cned_core::metric::Distance::prepare`], the
//!   Myers `Peq` bitmap cache for `d_E`) across the whole database;
//! * **bounded evaluation** — comparisons whose exact value is only
//!   needed when it beats the running best (linear nn/k-NN scans,
//!   LAESA non-pivot candidates) are requested through
//!   [`cned_core::metric::Distance::distance_bounded`] with that best
//!   as the budget, so engines with early exit (bit-parallel `d_E`)
//!   abandon hopeless comparisons. Pivot distances, AESA elements and
//!   vp-tree vantage points stay exact — their values feed
//!   lower-bound updates and traversal decisions. This is distance-
//!   agnostic: the same call sites that abandon `d_E` comparisons via
//!   the bit-parallel engine drive `d_C` through its band-pruned
//!   bounded engine (`cned_core::contextual::bounded`), whose cheap
//!   lower-bound gates reject most over-budget candidates before the
//!   cubic DP runs at all;
//! * **thread-safe statistics** — [`SearchStatsAtomic`] accumulates
//!   [`SearchStats`] across worker threads.

//! ## The unified query API
//!
//! Every backend — [`LinearIndex`], [`Laesa`], [`Aesa`], [`VpTree`],
//! and `cned-serve`'s `ShardedIndex` — implements the object-safe
//! [`MetricIndex`] trait: `nn` / `knn` / `range` / `nn_batch` /
//! `knn_batch`, all driven by a [`QueryOptions`] struct (radius seed,
//! `k`, pivot budget, worker override, stats sink) and returning
//! `Result<_, `[`SearchError`]`>` instead of panicking. Range (radius)
//! search is answered with triangle-inequality pruning on every
//! backend. The pre-trait inherent methods and free functions remain
//! as `#[deprecated]` forwarders for one release.

// No unsafe here, enforced at compile time (and by cned-lint).
#![forbid(unsafe_code)]

pub mod aesa;
pub mod counter;
pub mod error;
pub mod index;
pub mod laesa;
pub mod linear;
pub mod parallel;
pub mod pivots;
pub mod tombstone;
pub mod vptree;

pub use aesa::Aesa;
pub use counter::CountingDistance;
pub use error::SearchError;
pub use index::{InsertableIndex, MetricIndex, QueryOptions};
pub use laesa::Laesa;
pub use linear::LinearIndex;
#[allow(deprecated)]
pub use linear::{linear_knn, linear_knn_batch, linear_nn, linear_nn_batch};
pub use parallel::{num_threads, par_map, par_map_with, workers_for};
pub use pivots::{select_pivots_max_sum, select_pivots_random};
pub use tombstone::TombstoneSet;
pub use vptree::VpTree;

use std::sync::atomic::{AtomicU64, Ordering};

/// Serialises tests that set the process-global worker-count override
/// ([`parallel::set_thread_override`]).
#[cfg(test)]
pub(crate) static TEST_ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// The outcome of a nearest-neighbour query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbour {
    /// Index of the neighbour in the database.
    pub index: usize,
    /// Its distance to the query.
    pub distance: f64,
}

impl Neighbour {
    /// Whether this candidate beats `incumbent` under the canonical
    /// result ordering: ascending distance, ties broken by **ascending
    /// database index**.
    ///
    /// Every search path — linear scan, LAESA, AESA, and the sharded
    /// serving layer — resolves equal-distance ties with this rule, so
    /// results cannot diverge between serial, batch and sharded
    /// execution just because they visit candidates in different
    /// orders. Distances are compared with [`f64::total_cmp`]; an
    /// infinite distance (the "nothing found within the radius"
    /// sentinel) never wins a tie.
    pub fn better_than(&self, incumbent: &Neighbour) -> bool {
        match self.distance.total_cmp(&incumbent.distance) {
            core::cmp::Ordering::Less => true,
            core::cmp::Ordering::Equal => self.distance.is_finite() && self.index < incumbent.index,
            core::cmp::Ordering::Greater => false,
        }
    }

    /// The canonical result ordering (ascending distance, then
    /// ascending index) as a total order, for sorting and merging
    /// neighbour lists.
    pub fn ordering(&self, other: &Neighbour) -> core::cmp::Ordering {
        self.distance
            .total_cmp(&other.distance)
            .then(self.index.cmp(&other.index))
    }
}

/// Absolute slack added to triangle-inequality elimination thresholds
/// in LAESA/AESA.
///
/// The lower bound `G[u] = |d(q,p) − d(p,u)|` is computed from two
/// *rounded* doubles, so for real-valued metrics (`d_C`, `d_YB`, …) it
/// can land a few ulps **above** the true distance of a candidate that
/// ties the pruning radius exactly (e.g. 8/15 − 1/5 = 1/3 in exact
/// arithmetic, but one ulp above 1/3 in doubles) — silently dropping
/// an exact-tie member that the linear-scan oracle keeps. Eliminating
/// only when `G[u] > radius + SLACK` restores agreement: slack can
/// only *admit* extra candidates, whose fate is then decided by their
/// real computed distance, so results stay exact; the cost is a
/// vanishing number of extra distance computations. Float rounding
/// error here is O(1e-15); integer-valued metrics (`d_E`) have gaps of
/// 1, so 1e-9 is safely between the two.
pub const ELIMINATION_SLACK: f64 = 1e-9;

/// Sanitise a raw distance value before it enters best-so-far
/// tracking.
///
/// Distances must never be NaN, but a broken user-supplied
/// [`Distance`](cned_core::metric::Distance) — e.g. a generalised
/// edit distance over a cost table containing NaN weights — can
/// produce one. Unguarded, NaN *poisons* the search: it loses every
/// `<` comparison (so it silently never wins), yet if it becomes the
/// running best its use as a pruning bound rejects every later
/// candidate (`d <= NaN` is false for all `d`), and the scan returns
/// garbage with no diagnostic.
///
/// In debug builds this fires an assertion naming the problem. In
/// release builds it falls back to [`f64::total_cmp`] semantics —
/// under which NaN orders after `+inf` — by mapping NaN to
/// `f64::INFINITY`: the candidate is treated as infinitely far, can
/// never win a comparison or become a pruning bound, and the search
/// stays deterministic.
#[inline]
pub fn sanitise_distance(d: f64) -> f64 {
    debug_assert!(
        !d.is_nan(),
        "Distance implementation returned NaN (broken cost table?)"
    );
    if d.is_nan() {
        f64::INFINITY
    } else {
        d
    }
}

/// Search statistics reported alongside results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Number of real distance evaluations performed for the query
    /// (excluding preprocessing).
    pub distance_computations: u64,
}

impl SearchStats {
    /// Fold another query's (or shard's) statistics into this one.
    pub fn merge(&mut self, other: SearchStats) {
        self.distance_computations += other.distance_computations;
    }
}

impl core::ops::Add for SearchStats {
    type Output = SearchStats;
    fn add(mut self, other: SearchStats) -> SearchStats {
        self.merge(other);
        self
    }
}

/// Thread-safe accumulator for [`SearchStats`], for batch pipelines
/// that tally across worker threads (e.g. `cned-classify`'s parallel
/// test-set evaluation, which streams totals instead of materialising
/// per-query statistics).
///
/// ```
/// use cned_search::{SearchStats, SearchStatsAtomic};
///
/// let total = SearchStatsAtomic::default();
/// std::thread::scope(|s| {
///     for _ in 0..4 {
///         s.spawn(|| total.add(SearchStats { distance_computations: 10 }));
///     }
/// });
/// assert_eq!(total.snapshot().distance_computations, 40);
/// ```
#[derive(Debug, Default)]
pub struct SearchStatsAtomic {
    distance_computations: AtomicU64,
}

impl SearchStatsAtomic {
    /// A zeroed accumulator.
    pub fn new() -> SearchStatsAtomic {
        SearchStatsAtomic::default()
    }

    /// Fold one query's statistics into the running total.
    pub fn add(&self, stats: SearchStats) {
        self.distance_computations
            .fetch_add(stats.distance_computations, Ordering::Relaxed);
    }

    /// Current totals as a plain [`SearchStats`].
    pub fn snapshot(&self) -> SearchStats {
        SearchStats {
            distance_computations: self.distance_computations.load(Ordering::Relaxed),
        }
    }

    /// Reset to zero, returning the totals accumulated so far.
    pub fn take(&self) -> SearchStats {
        SearchStats {
            distance_computations: self.distance_computations.swap(0, Ordering::Relaxed),
        }
    }
}
