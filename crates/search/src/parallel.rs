//! Data-parallel building blocks for index construction and batch
//! query pipelines.
//!
//! Built on `std::thread::scope` — this workspace vendors no external
//! crates, so there is no rayon; a scoped fork-join over an index
//! range covers everything the search structures need. Work is dealt
//! **strided** (thread `t` takes indices `t, t + T, t + 2T, …`), which
//! balances the triangular loops of AESA preprocessing (row `i` costs
//! `n − i − 1` distances) as well as uniform per-query batches.
//!
//! The worker count defaults to [`std::thread::available_parallelism`]
//! and can be pinned with the `CNED_THREADS` environment variable
//! (read **once**, at first use — `getenv` after worker threads exist
//! would be a data race if anything called `setenv`) or at runtime
//! with [`set_thread_override`] — useful both for capping fan-out on
//! shared machines and for exercising the multi-threaded code paths
//! in tests on single-core CI boxes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Runtime override; 0 means "no override".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `CNED_THREADS` parsed once per process.
static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();

fn parse_threads(value: &str) -> Option<usize> {
    value.parse::<usize>().ok().filter(|&n| n > 0)
}

/// Pin the worker count at runtime (`Some(n)`), or restore the
/// default resolution (`None`). Takes precedence over `CNED_THREADS`.
///
/// This is the mechanism tests use to exercise the threaded paths —
/// mutating the environment instead would race with concurrent
/// `getenv` calls from other test threads.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::SeqCst);
}

/// Number of worker threads parallel operations will use.
pub fn num_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::SeqCst) {
        0 => ENV_THREADS
            .get_or_init(|| {
                std::env::var("CNED_THREADS")
                    .ok()
                    .as_deref()
                    .and_then(parse_threads)
            })
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            }),
        n => n,
    }
}

/// Worker count for `n` independent work items: [`num_threads`]
/// clamped to the number of items, and never zero.
///
/// Every consumer that spawns workers over a batch must fan out
/// through this clamp rather than raw [`num_threads`]: with a large
/// `CNED_THREADS` (or a future 128-core box) a 3-element batch would
/// otherwise spawn dozens of workers whose strided ranges are empty —
/// pure spawn/join overhead, and in a serving pipeline a thundering
/// herd per tiny batch.
pub fn workers_for(n: usize) -> usize {
    num_threads().min(n).max(1)
}

/// Compute `f(0), f(1), …, f(n - 1)` across [`workers_for`]`(n)`
/// scoped threads, returning the results in index order.
///
/// Falls back to a plain sequential map when one thread suffices (or
/// `n <= 1`), so callers pay no threading overhead in the small case.
/// A panic in `f` propagates to the caller.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_with(None, n, f)
}

/// [`par_map`] with a per-call worker override: `Some(t)` caps the
/// fan-out at `t` threads (still clamped to `n` items), `None` defers
/// to the process default ([`num_threads`]). This is what lets a
/// [`crate::QueryOptions::threads`] override apply to one batch
/// without touching the process-global [`set_thread_override`].
pub fn par_map_with<T, F>(threads: Option<usize>, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = match threads {
        Some(t) => t.max(1).min(n.max(1)),
        None => workers_for(n),
    };
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut out = Vec::with_capacity(n / threads + 1);
                let mut i = t;
                while i < n {
                    out.push((i, f(i)));
                    i += threads;
                }
                out
            }));
        }
        for handle in handles {
            for (i, v) in handle.join().expect("cned-search worker thread panicked") {
                slots[i] = Some(v);
            }
        }
    });
    slots
        .into_iter()
        .map(|v| v.expect("every index computed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_all_indices() {
        let out = par_map(257, |i| i * i);
        assert_eq!(out.len(), 257);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(par_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn override_forces_thread_counts() {
        // The override is process-global: serialise with the other
        // tests that set it. This exercises the threaded path even on
        // a single-core machine.
        let _guard = crate::TEST_ENV_LOCK.lock().unwrap();
        let sequential: Vec<usize> = (0..100).map(|i| i * 3 + 1).collect();
        for threads in [1usize, 2, 7] {
            set_thread_override(Some(threads));
            assert_eq!(num_threads(), threads);
            assert_eq!(par_map(100, |i| i * 3 + 1), sequential, "threads {threads}");
        }
        set_thread_override(None);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn worker_fan_out_is_clamped_to_items() {
        // Regression: a huge thread override over a tiny batch must
        // not spawn workers with empty strided ranges.
        let _guard = crate::TEST_ENV_LOCK.lock().unwrap();
        set_thread_override(Some(64));
        assert_eq!(workers_for(3), 3);
        assert_eq!(workers_for(1), 1);
        assert_eq!(workers_for(0), 1);
        assert_eq!(workers_for(100), 64);
        // A 3-element batch under the 64-thread override still
        // computes every element exactly once, in order.
        assert_eq!(par_map(3, |i| i * 2), vec![0, 2, 4]);
        set_thread_override(None);
    }

    #[test]
    fn per_call_override_beats_the_global_default() {
        // A per-call override must not read or disturb the global
        // knobs; results stay in order regardless of worker count.
        let expected: Vec<usize> = (0..53).map(|i| i + 7).collect();
        for t in [Some(1), Some(3), Some(64), None] {
            assert_eq!(par_map_with(t, 53, |i| i + 7), expected, "threads {t:?}");
        }
        assert_eq!(par_map_with(Some(0), 4, |i| i), vec![0, 1, 2, 3]);
        assert_eq!(par_map_with(Some(8), 0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn env_value_parsing() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads("1"), Some(1));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("not-a-number"), None);
        assert_eq!(parse_threads(""), None);
    }
}
