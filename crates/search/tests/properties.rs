//! Property-based tests for the search engines, driven through the
//! unified [`MetricIndex`] trait: LAESA, AESA and the vp-tree must
//! agree with the exhaustive [`LinearIndex`] oracle on *any* database
//! under a metric distance, for any pivot configuration — for nearest
//! neighbour, k-NN and range search alike.

use cned_core::contextual::exact::Contextual;
use cned_core::levenshtein::Levenshtein;
use cned_core::metric::{Distance, Unpruned};
use cned_core::normalized::yujian_bo::YujianBo;
use cned_search::aesa::Aesa;
use cned_search::laesa::Laesa;
use cned_search::linear::LinearIndex;
use cned_search::pivots::{select_pivots_max_sum, select_pivots_random};
use cned_search::vptree::VpTree;
use cned_search::{MetricIndex, Neighbour, QueryOptions};
use proptest::prelude::*;

fn word() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(97u8..=99, 1..=8)
}

fn database() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(word(), 2..=40)
}

fn nn_of(
    index: &dyn MetricIndex<u8>,
    q: &[u8],
    dist: &dyn Distance<u8>,
) -> (Neighbour, cned_search::SearchStats) {
    let (found, stats) = index
        .nn(q, dist, &QueryOptions::new())
        .expect("non-empty database");
    (found.expect("infinite radius always finds"), stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn laesa_nn_distance_matches_linear_scan(
        db in database(),
        q in word(),
        n_pivots in 0usize..=10,
    ) {
        let pivots = select_pivots_max_sum(&db, n_pivots, 0, &Levenshtein);
        let index = Laesa::try_build(db.clone(), pivots, &Levenshtein).unwrap();
        let oracle = LinearIndex::new(db.clone());
        let (lin, _) = nn_of(&oracle, &q, &Levenshtein);
        let (nn, stats) = nn_of(&index, &q, &Levenshtein);
        prop_assert_eq!(nn.distance, lin.distance);
        prop_assert!(stats.distance_computations >= 1);
        prop_assert!(stats.distance_computations <= db.len() as u64);
    }

    #[test]
    fn laesa_with_random_pivots_is_also_exact(
        db in database(),
        q in word(),
        n_pivots in 0usize..=10,
        seed in 0u64..100,
    ) {
        // Pivot *quality* affects cost, never correctness.
        let pivots = select_pivots_random(db.len(), n_pivots, seed);
        let index = Laesa::try_build(db.clone(), pivots, &Levenshtein).unwrap();
        let oracle = LinearIndex::new(db);
        let (lin, _) = nn_of(&oracle, &q, &Levenshtein);
        let (nn, _) = nn_of(&index, &q, &Levenshtein);
        prop_assert_eq!(nn.distance, lin.distance);
    }

    #[test]
    fn laesa_exact_under_yujian_bo_metric(
        db in database(),
        q in word(),
        n_pivots in 0usize..=8,
    ) {
        let pivots = select_pivots_max_sum(&db, n_pivots, 0, &YujianBo);
        let index = Laesa::try_build(db.clone(), pivots, &YujianBo).unwrap();
        let oracle = LinearIndex::new(db);
        let (lin, _) = nn_of(&oracle, &q, &YujianBo);
        let (nn, _) = nn_of(&index, &q, &YujianBo);
        prop_assert!((nn.distance - lin.distance).abs() < 1e-12);
    }

    #[test]
    fn aesa_matches_linear_scan(db in database(), q in word()) {
        let index = Aesa::build(db.clone(), &Levenshtein);
        let oracle = LinearIndex::new(db.clone());
        let (lin, _) = nn_of(&oracle, &q, &Levenshtein);
        let (nn, stats) = nn_of(&index, &q, &Levenshtein);
        prop_assert_eq!(nn.distance, lin.distance);
        prop_assert!(stats.distance_computations <= db.len() as u64);
    }

    #[test]
    fn laesa_knn_distances_match_linear(
        db in database(),
        q in word(),
        k in 1usize..=5,
        n_pivots in 0usize..=8,
    ) {
        let pivots = select_pivots_max_sum(&db, n_pivots, 0, &Levenshtein);
        let index = Laesa::try_build(db.clone(), pivots, &Levenshtein).unwrap();
        let oracle = LinearIndex::new(db);
        let opts = QueryOptions::new().k(k);
        let (lin, _) = oracle.knn(&q, &Levenshtein, &opts).unwrap();
        let (knn, _) = MetricIndex::knn(&index, &q, &Levenshtein, &opts).unwrap();
        let ld: Vec<f64> = lin.iter().map(|n| n.distance).collect();
        let kd: Vec<f64> = knn.iter().map(|n| n.distance).collect();
        prop_assert_eq!(ld, kd);
    }

    #[test]
    fn pivot_budget_prefixes_are_consistent(
        db in database(),
        q in word(),
    ) {
        // All prefix budgets return the same (correct) distance; the
        // computation count is what varies.
        let n_piv = (db.len() / 3).max(1);
        let pivots = select_pivots_max_sum(&db, n_piv, 0, &Levenshtein);
        let index = Laesa::try_build(db.clone(), pivots, &Levenshtein).unwrap();
        let oracle = LinearIndex::new(db);
        let (lin, _) = nn_of(&oracle, &q, &Levenshtein);
        for limit in 0..=n_piv {
            let opts = QueryOptions::new().pivot_budget(limit);
            let (nn, _) = MetricIndex::nn(&index, &q, &Levenshtein, &opts).unwrap();
            prop_assert_eq!(nn.unwrap().distance, lin.distance, "limit {}", limit);
        }
    }

    #[test]
    fn vptree_matches_linear_scan(db in database(), q in word()) {
        let tree = VpTree::build(db.clone(), &Levenshtein);
        let oracle = LinearIndex::new(db.clone());
        let (lin, _) = nn_of(&oracle, &q, &Levenshtein);
        let (nn, stats) = nn_of(&tree, &q, &Levenshtein);
        prop_assert_eq!(nn.distance, lin.distance);
        prop_assert!(stats.distance_computations <= db.len() as u64);
    }

    #[test]
    fn vptree_matches_linear_scan_under_yujian_bo(db in database(), q in word()) {
        let tree = VpTree::build(db.clone(), &YujianBo);
        let oracle = LinearIndex::new(db);
        let (lin, _) = nn_of(&oracle, &q, &YujianBo);
        let (nn, _) = nn_of(&tree, &q, &YujianBo);
        prop_assert!((nn.distance - lin.distance).abs() < 1e-12);
    }

    #[test]
    fn laesa_exact_under_contextual_metric(
        db in database(),
        q in word(),
        n_pivots in 0usize..=8,
    ) {
        // d_C is a metric (Theorem 1), so LAESA driven through the
        // band-pruned bounded engine must still return the linear-scan
        // neighbour — elimination plus engine gating lose nothing.
        let pivots = select_pivots_max_sum(&db, n_pivots, 0, &Contextual);
        let index = Laesa::try_build(db.clone(), pivots, &Contextual).unwrap();
        let oracle = LinearIndex::new(db);
        let (lin, _) = nn_of(&oracle, &q, &Contextual);
        let (nn, _) = nn_of(&index, &q, &Contextual);
        prop_assert!((nn.distance - lin.distance).abs() < 1e-12);
    }

    #[test]
    fn bounded_contextual_path_matches_unpruned_baseline(
        db in database(),
        q in word(),
        k in 1usize..=4,
    ) {
        // The engine hooks must be invisible in the results: linear
        // scans (nn and k-NN) with the pruned d_C engine return exactly
        // what the full-evaluation baseline returns.
        let oracle = LinearIndex::new(db);
        let (fast, _) = nn_of(&oracle, &q, &Contextual);
        let (slow, _) = nn_of(&oracle, &q, &Unpruned(Contextual));
        prop_assert_eq!(fast.index, slow.index);
        prop_assert_eq!(fast.distance, slow.distance);
        let opts = QueryOptions::new().k(k);
        let (fast_k, _) = oracle.knn(&q, &Contextual, &opts).unwrap();
        let (slow_k, _) = oracle.knn(&q, &Unpruned(Contextual), &opts).unwrap();
        let fk: Vec<(usize, f64)> = fast_k.iter().map(|n| (n.index, n.distance)).collect();
        let sk: Vec<(usize, f64)> = slow_k.iter().map(|n| (n.index, n.distance)).collect();
        prop_assert_eq!(fk, sk);
    }

    #[test]
    fn vptree_matches_linear_scan_under_contextual(db in database(), q in word()) {
        let tree = VpTree::build(db.clone(), &Contextual);
        let oracle = LinearIndex::new(db);
        let (lin, _) = nn_of(&oracle, &q, &Contextual);
        let (nn, _) = nn_of(&tree, &q, &Contextual);
        prop_assert!((nn.distance - lin.distance).abs() < 1e-12);
    }

    #[test]
    fn aesa_matches_linear_scan_under_contextual(db in database(), q in word()) {
        let index = Aesa::build(db.clone(), &Contextual);
        let oracle = LinearIndex::new(db);
        let (lin, _) = nn_of(&oracle, &q, &Contextual);
        let (nn, _) = nn_of(&index, &q, &Contextual);
        prop_assert!((nn.distance - lin.distance).abs() < 1e-12);
    }

    #[test]
    fn member_queries_return_distance_zero(db in database(), idx in 0usize..40) {
        let probe = db[idx % db.len()].clone();
        let pivots = select_pivots_max_sum(&db, 4.min(db.len()), 0, &Levenshtein);
        let index = Laesa::try_build(db.clone(), pivots, &Levenshtein).unwrap();
        let (nn, _) = nn_of(&index, &probe, &Levenshtein);
        prop_assert_eq!(nn.distance, 0.0);
    }

    #[test]
    fn range_search_agrees_across_all_backends(
        db in database(),
        q in word(),
        n_pivots in 0usize..=8,
        radius_steps in 0u32..=8,
    ) {
        // Every backend must return exactly the linear-scan filter at
        // any radius — members, distances and canonical order — for
        // both an integer metric (d_E) and a real-valued one (d_YB,
        // where exact radius ties exercise the elimination slack).
        let radius = radius_steps as f64 * 0.5;
        let pivots = select_pivots_max_sum(&db, n_pivots, 0, &Levenshtein);
        let laesa = Laesa::try_build(db.clone(), pivots, &Levenshtein).unwrap();
        let aesa = Aesa::build(db.clone(), &Levenshtein);
        let tree = VpTree::build(db.clone(), &Levenshtein);
        let oracle = LinearIndex::new(db.clone());
        let opts = QueryOptions::new().radius(radius);
        let key = |ns: &[Neighbour]| -> Vec<(usize, u64)> {
            ns.iter().map(|n| (n.index, n.distance.to_bits())).collect()
        };
        let (expected, _) = oracle.range(&q, &Levenshtein, &opts).unwrap();
        let backends: [&dyn MetricIndex<u8>; 3] = [&laesa, &aesa, &tree];
        for backend in backends {
            let (hits, _) = backend.range(&q, &Levenshtein, &opts).unwrap();
            prop_assert_eq!(
                key(&hits),
                key(&expected),
                "backend {} radius {}",
                backend.backend_name(),
                radius
            );
        }
        // Real-valued metric, radius picked at an achieved distance so
        // exact ties sit on the boundary.
        let yb_radius = YujianBo.distance(&q, &db[0]);
        let yb_opts = QueryOptions::new().radius(yb_radius);
        let yb_pivots = select_pivots_max_sum(&db, n_pivots, 0, &YujianBo);
        let yb_laesa = Laesa::try_build(db.clone(), yb_pivots, &YujianBo).unwrap();
        let (yb_expected, _) = oracle.range(&q, &YujianBo, &yb_opts).unwrap();
        let (yb_hits, _) = yb_laesa.range(&q, &YujianBo, &yb_opts).unwrap();
        prop_assert_eq!(key(&yb_hits), key(&yb_expected));
        prop_assert!(yb_expected.iter().any(|n| n.index == 0), "boundary tie kept");
    }

    #[test]
    fn radius_seeded_nn_is_a_pure_filter(
        db in database(),
        q in word(),
        n_pivots in 0usize..=8,
    ) {
        // A radius seed may only switch the answer between "the true
        // NN" (when within the radius) and "nothing" — never to a
        // different neighbour.
        let pivots = select_pivots_max_sum(&db, n_pivots, 0, &Levenshtein);
        let index = Laesa::try_build(db.clone(), pivots, &Levenshtein).unwrap();
        let (truth, _) = nn_of(&index, &q, &Levenshtein);
        for radius in [0.0, 1.0, 2.0, 5.0] {
            let opts = QueryOptions::new().radius(radius);
            let (found, _) = MetricIndex::nn(&index, &q, &Levenshtein, &opts).unwrap();
            if truth.distance <= radius {
                let found = found.expect("true NN within radius must be found");
                prop_assert_eq!(found.index, truth.index);
                prop_assert_eq!(found.distance, truth.distance);
            } else {
                prop_assert!(found.is_none());
            }
        }
    }
}
