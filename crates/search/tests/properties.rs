//! Property-based tests for the search engines: LAESA and AESA must
//! agree with exhaustive scan on *any* database under a metric
//! distance, for any pivot configuration.

use cned_core::contextual::exact::Contextual;
use cned_core::levenshtein::Levenshtein;
use cned_core::metric::Unpruned;
use cned_core::normalized::yujian_bo::YujianBo;
use cned_search::aesa::Aesa;
use cned_search::laesa::Laesa;
use cned_search::linear::{linear_knn, linear_nn};
use cned_search::pivots::{select_pivots_max_sum, select_pivots_random};
use cned_search::vptree::VpTree;
use proptest::prelude::*;

fn word() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(97u8..=99, 1..=8)
}

fn database() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(word(), 2..=40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn laesa_nn_distance_matches_linear_scan(
        db in database(),
        q in word(),
        n_pivots in 0usize..=10,
    ) {
        let pivots = select_pivots_max_sum(&db, n_pivots, 0, &Levenshtein);
        let index = Laesa::build(db.clone(), pivots, &Levenshtein);
        let (lin, _) = linear_nn(&db, &q, &Levenshtein).unwrap();
        let (nn, stats) = index.nn(&q, &Levenshtein).unwrap();
        prop_assert_eq!(nn.distance, lin.distance);
        prop_assert!(stats.distance_computations >= 1);
        prop_assert!(stats.distance_computations <= db.len() as u64);
    }

    #[test]
    fn laesa_with_random_pivots_is_also_exact(
        db in database(),
        q in word(),
        n_pivots in 0usize..=10,
        seed in 0u64..100,
    ) {
        // Pivot *quality* affects cost, never correctness.
        let pivots = select_pivots_random(db.len(), n_pivots, seed);
        let index = Laesa::build(db.clone(), pivots, &Levenshtein);
        let (lin, _) = linear_nn(&db, &q, &Levenshtein).unwrap();
        let (nn, _) = index.nn(&q, &Levenshtein).unwrap();
        prop_assert_eq!(nn.distance, lin.distance);
    }

    #[test]
    fn laesa_exact_under_yujian_bo_metric(
        db in database(),
        q in word(),
        n_pivots in 0usize..=8,
    ) {
        let pivots = select_pivots_max_sum(&db, n_pivots, 0, &YujianBo);
        let index = Laesa::build(db.clone(), pivots, &YujianBo);
        let (lin, _) = linear_nn(&db, &q, &YujianBo).unwrap();
        let (nn, _) = index.nn(&q, &YujianBo).unwrap();
        prop_assert!((nn.distance - lin.distance).abs() < 1e-12);
    }

    #[test]
    fn aesa_matches_linear_scan(db in database(), q in word()) {
        let index = Aesa::build(db.clone(), &Levenshtein);
        let (lin, _) = linear_nn(&db, &q, &Levenshtein).unwrap();
        let (nn, stats) = index.nn(&q, &Levenshtein).unwrap();
        prop_assert_eq!(nn.distance, lin.distance);
        prop_assert!(stats.distance_computations <= db.len() as u64);
    }

    #[test]
    fn laesa_knn_distances_match_linear(
        db in database(),
        q in word(),
        k in 1usize..=5,
        n_pivots in 0usize..=8,
    ) {
        let pivots = select_pivots_max_sum(&db, n_pivots, 0, &Levenshtein);
        let index = Laesa::build(db.clone(), pivots, &Levenshtein);
        let (lin, _) = linear_knn(&db, &q, &Levenshtein, k);
        let (knn, _) = index.knn(&q, &Levenshtein, k);
        let ld: Vec<f64> = lin.iter().map(|n| n.distance).collect();
        let kd: Vec<f64> = knn.iter().map(|n| n.distance).collect();
        prop_assert_eq!(ld, kd);
    }

    #[test]
    fn nn_limited_prefixes_are_consistent(
        db in database(),
        q in word(),
    ) {
        // All prefix limits return the same (correct) distance; the
        // computation count is what varies.
        let n_piv = (db.len() / 3).max(1);
        let pivots = select_pivots_max_sum(&db, n_piv, 0, &Levenshtein);
        let index = Laesa::build(db.clone(), pivots, &Levenshtein);
        let (lin, _) = linear_nn(&db, &q, &Levenshtein).unwrap();
        for limit in 0..=n_piv {
            let (nn, _) = index.nn_limited(&q, &Levenshtein, limit).unwrap();
            prop_assert_eq!(nn.distance, lin.distance, "limit {}", limit);
        }
    }

    #[test]
    fn vptree_matches_linear_scan(db in database(), q in word()) {
        let tree = VpTree::build(db.clone(), &Levenshtein);
        let (lin, _) = linear_nn(&db, &q, &Levenshtein).unwrap();
        let (nn, stats) = tree.nn(&q, &Levenshtein).unwrap();
        prop_assert_eq!(nn.distance, lin.distance);
        prop_assert!(stats.distance_computations <= db.len() as u64);
    }

    #[test]
    fn vptree_matches_linear_scan_under_yujian_bo(db in database(), q in word()) {
        let tree = VpTree::build(db.clone(), &YujianBo);
        let (lin, _) = linear_nn(&db, &q, &YujianBo).unwrap();
        let (nn, _) = tree.nn(&q, &YujianBo).unwrap();
        prop_assert!((nn.distance - lin.distance).abs() < 1e-12);
    }

    #[test]
    fn laesa_exact_under_contextual_metric(
        db in database(),
        q in word(),
        n_pivots in 0usize..=8,
    ) {
        // d_C is a metric (Theorem 1), so LAESA driven through the
        // band-pruned bounded engine must still return the linear-scan
        // neighbour — elimination plus engine gating lose nothing.
        let pivots = select_pivots_max_sum(&db, n_pivots, 0, &Contextual);
        let index = Laesa::build(db.clone(), pivots, &Contextual);
        let (lin, _) = linear_nn(&db, &q, &Contextual).unwrap();
        let (nn, _) = index.nn(&q, &Contextual).unwrap();
        prop_assert!((nn.distance - lin.distance).abs() < 1e-12);
    }

    #[test]
    fn bounded_contextual_path_matches_unpruned_baseline(
        db in database(),
        q in word(),
        k in 1usize..=4,
    ) {
        // The engine hooks must be invisible in the results: linear
        // scans (nn and k-NN) with the pruned d_C engine return exactly
        // what the full-evaluation baseline returns.
        let (fast, _) = linear_nn(&db, &q, &Contextual).unwrap();
        let (slow, _) = linear_nn(&db, &q, &Unpruned(Contextual)).unwrap();
        prop_assert_eq!(fast.index, slow.index);
        prop_assert_eq!(fast.distance, slow.distance);
        let (fast_k, _) = linear_knn(&db, &q, &Contextual, k);
        let (slow_k, _) = linear_knn(&db, &q, &Unpruned(Contextual), k);
        let fk: Vec<(usize, f64)> = fast_k.iter().map(|n| (n.index, n.distance)).collect();
        let sk: Vec<(usize, f64)> = slow_k.iter().map(|n| (n.index, n.distance)).collect();
        prop_assert_eq!(fk, sk);
    }

    #[test]
    fn vptree_matches_linear_scan_under_contextual(db in database(), q in word()) {
        let tree = VpTree::build(db.clone(), &Contextual);
        let (lin, _) = linear_nn(&db, &q, &Contextual).unwrap();
        let (nn, _) = tree.nn(&q, &Contextual).unwrap();
        prop_assert!((nn.distance - lin.distance).abs() < 1e-12);
    }

    #[test]
    fn aesa_matches_linear_scan_under_contextual(db in database(), q in word()) {
        let index = Aesa::build(db.clone(), &Contextual);
        let (lin, _) = linear_nn(&db, &q, &Contextual).unwrap();
        let (nn, _) = index.nn(&q, &Contextual).unwrap();
        prop_assert!((nn.distance - lin.distance).abs() < 1e-12);
    }

    #[test]
    fn member_queries_return_distance_zero(db in database(), idx in 0usize..40) {
        let probe = db[idx % db.len()].clone();
        let pivots = select_pivots_max_sum(&db, 4.min(db.len()), 0, &Levenshtein);
        let index = Laesa::build(db.clone(), pivots, &Levenshtein);
        let (nn, _) = index.nn(&probe, &Levenshtein).unwrap();
        prop_assert_eq!(nn.distance, 0.0);
    }
}
