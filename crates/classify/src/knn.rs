//! k-NN majority-vote classification — the natural extension of the
//! paper's 1-NN protocol (§4.4), built on the same unified search
//! surface ([`MetricIndex`]).
//!
//! The query takes the majority label among its `k` nearest
//! neighbours; ties are broken towards the label of the *nearest*
//! neighbour carrying a tied count (the standard distance-weighted
//! tie-break).

use cned_core::metric::Distance;
use cned_core::Symbol;
use cned_search::{MetricIndex, Neighbour, QueryOptions, SearchError, SearchStats};

/// A labelled k-NN classifier over any search backend.
pub struct KnnClassifier<S: Symbol> {
    index: Box<dyn MetricIndex<S>>,
    labels: Vec<u8>,
    k: usize,
}

impl<S: Symbol> KnnClassifier<S> {
    /// Build a classifier from a search index, one label per indexed
    /// item, and the neighbour count `k`.
    ///
    /// `k == 0`, label count mismatches and empty training sets are
    /// typed errors.
    pub fn new(
        index: Box<dyn MetricIndex<S>>,
        labels: Vec<u8>,
        k: usize,
    ) -> Result<KnnClassifier<S>, SearchError> {
        if k == 0 {
            return Err(SearchError::UnsupportedConfig {
                reason: "k-NN classification needs k >= 1",
            });
        }
        if labels.len() != index.len() {
            return Err(SearchError::LabelCount {
                labels: labels.len(),
                items: index.len(),
            });
        }
        if index.is_empty() {
            return Err(SearchError::EmptyDatabase);
        }
        Ok(KnnClassifier { index, labels, k })
    }

    /// The search index answering the queries.
    pub fn index(&self) -> &dyn MetricIndex<S> {
        &*self.index
    }

    /// Majority vote over neighbours; ties go to the label whose
    /// closest tied representative is nearest.
    fn vote(&self, neighbours: &[Neighbour]) -> u8 {
        debug_assert!(!neighbours.is_empty());
        // Counts and best (smallest) distance per label.
        let mut tally: Vec<(u8, usize, f64)> = Vec::new();
        for nb in neighbours {
            let label = self.labels[nb.index];
            match tally.iter_mut().find(|(l, _, _)| *l == label) {
                Some((_, c, best)) => {
                    *c += 1;
                    if nb.distance < *best {
                        *best = nb.distance;
                    }
                }
                None => tally.push((label, 1, nb.distance)),
            }
        }
        tally
            .into_iter()
            .max_by(|a, b| {
                a.1.cmp(&b.1).then(b.2.total_cmp(&a.2)) // smaller best-distance wins ties
            })
            .map(|(l, _, _)| l)
            .expect("non-empty tally")
    }

    /// Classify one query.
    pub fn classify<D: Distance<S> + ?Sized>(
        &self,
        query: &[S],
        dist: &D,
    ) -> Result<(u8, SearchStats), SearchError> {
        let (neighbours, stats) = self
            .index
            .knn(query, &dist, &QueryOptions::new().k(self.k))?;
        Ok((self.vote(&neighbours), stats))
    }

    /// Classify a batch of queries, parallelised across queries via
    /// the search layer's batch k-NN pipeline. Returns one
    /// `(label, stats)` per query in input order.
    pub fn classify_batch<D: Distance<S> + ?Sized>(
        &self,
        queries: &[Vec<S>],
        dist: &D,
    ) -> Result<Vec<(u8, SearchStats)>, SearchError> {
        let results = self
            .index
            .knn_batch(queries, &dist, &QueryOptions::new().k(self.k))?;
        Ok(results
            .into_iter()
            .map(|(neighbours, stats)| (self.vote(&neighbours), stats))
            .collect())
    }

    /// Error rate (%) over a labelled test set, evaluated through the
    /// parallel [`KnnClassifier::classify_batch`] pipeline.
    pub fn error_rate<D: Distance<S> + ?Sized>(
        &self,
        test: &[(Vec<S>, u8)],
        dist: &D,
    ) -> Result<f64, SearchError> {
        if test.is_empty() {
            return Ok(0.0);
        }
        let queries: Vec<Vec<S>> = test.iter().map(|(q, _)| q.clone()).collect();
        let errors = self
            .classify_batch(&queries, dist)?
            .iter()
            .zip(test)
            .filter(|((pred, _), (_, truth))| pred != truth)
            .count();
        Ok(100.0 * errors as f64 / test.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cned_core::contextual::heuristic::ContextualHeuristic;
    use cned_core::levenshtein::Levenshtein;
    use cned_search::pivots::select_pivots_max_sum;
    use cned_search::{Laesa, LinearIndex};
    use cned_serve::{ShardConfig, ShardedIndex};

    fn toy() -> (Vec<Vec<u8>>, Vec<u8>) {
        let train: Vec<Vec<u8>> = [
            &b"aaaa"[..],
            b"aaab",
            b"aaba",
            b"bbbb",
            b"bbba",
            b"bbab",
            b"cccc",
            b"cccd",
        ]
        .iter()
        .map(|w| w.to_vec())
        .collect();
        (train, vec![0, 0, 0, 1, 1, 1, 2, 2])
    }

    fn exhaustive(train: Vec<Vec<u8>>, labels: Vec<u8>, k: usize) -> KnnClassifier<u8> {
        KnnClassifier::new(Box::new(LinearIndex::new(train)), labels, k).unwrap()
    }

    #[test]
    fn k1_matches_nearest_label() {
        let (train, labels) = toy();
        let c = exhaustive(train, labels, 1);
        assert_eq!(c.classify(b"aaaa", &Levenshtein).unwrap().0, 0);
        assert_eq!(c.classify(b"bbbb", &Levenshtein).unwrap().0, 1);
        assert_eq!(c.classify(b"cccc", &Levenshtein).unwrap().0, 2);
    }

    #[test]
    fn k3_majority_overrules_single_outlier() {
        // Query "aabb": nearest are aaab/aaba at d=1; bbab/bbba at
        // d=2. With k=3, labels {0,0,?} -> 0.
        let (train, labels) = toy();
        let c = exhaustive(train, labels, 3);
        assert_eq!(c.classify(b"aabb", &Levenshtein).unwrap().0, 0);
    }

    #[test]
    fn laesa_backend_agrees_with_exhaustive() {
        let (train, labels) = toy();
        let ex = exhaustive(train.clone(), labels.clone(), 3);
        let piv = select_pivots_max_sum(&train, 4, 0, &ContextualHeuristic);
        let index = Laesa::try_build(train, piv, &ContextualHeuristic).unwrap();
        let la = KnnClassifier::new(Box::new(index), labels, 3).unwrap();
        for q in [&b"aaba"[..], b"bbaa", b"ccdd", b"abcb"] {
            let (le, _) = ex.classify(q, &ContextualHeuristic).unwrap();
            let (ll, _) = la.classify(q, &ContextualHeuristic).unwrap();
            assert_eq!(le, ll, "query {q:?}");
        }
    }

    #[test]
    fn sharded_backend_agrees_with_exhaustive() {
        let (train, labels) = toy();
        let ex = exhaustive(train.clone(), labels.clone(), 3);
        let config = ShardConfig {
            shards: 3,
            pivots_per_shard: 2,
            ..ShardConfig::default()
        };
        let index = ShardedIndex::try_build(train, config, &Levenshtein).unwrap();
        let sh = KnnClassifier::new(Box::new(index), labels, 3).unwrap();
        let queries: Vec<Vec<u8>> = [&b"aaba"[..], b"bbaa", b"ccdd", b"abcb"]
            .iter()
            .map(|q| q.to_vec())
            .collect();
        for q in &queries {
            let (le, _) = ex.classify(q, &Levenshtein).unwrap();
            let (ls, _) = sh.classify(q, &Levenshtein).unwrap();
            assert_eq!(le, ls, "query {q:?}");
        }
        let batch = sh.classify_batch(&queries, &Levenshtein).unwrap();
        for (q, (label, stats)) in queries.iter().zip(&batch) {
            let (sl, sstats) = sh.classify(q, &Levenshtein).unwrap();
            assert_eq!(*label, sl, "query {q:?}");
            assert_eq!(stats.distance_computations, sstats.distance_computations);
        }
        let test: Vec<(Vec<u8>, u8)> = vec![(b"aaaa".to_vec(), 0), (b"bbbb".to_vec(), 1)];
        assert_eq!(sh.error_rate(&test, &Levenshtein).unwrap(), 0.0);
    }

    #[test]
    fn exact_contextual_classification_through_bounded_engine() {
        use cned_core::contextual::exact::Contextual;
        let (train, labels) = toy();
        let ex = exhaustive(train.clone(), labels.clone(), 3);
        let piv = select_pivots_max_sum(&train, 4, 0, &Contextual);
        let index = Laesa::try_build(train, piv, &Contextual).unwrap();
        let la = KnnClassifier::new(Box::new(index), labels, 3).unwrap();
        for q in [&b"aaba"[..], b"bbaa", b"ccdd", b"abcb"] {
            let (le, _) = ex.classify(q, &Contextual).unwrap();
            let (ll, _) = la.classify(q, &Contextual).unwrap();
            assert_eq!(le, ll, "query {q:?}");
        }
    }

    #[test]
    fn error_rate_counts_mismatches() {
        let (train, labels) = toy();
        let c = exhaustive(train, labels, 1);
        let test: Vec<(Vec<u8>, u8)> = vec![
            (b"aaaa".to_vec(), 0), // right
            (b"bbbb".to_vec(), 0), // wrong (true NN label is 1)
        ];
        assert_eq!(c.error_rate(&test, &Levenshtein).unwrap(), 50.0);
        assert_eq!(c.error_rate(&[], &Levenshtein).unwrap(), 0.0);
    }

    #[test]
    fn zero_k_is_a_typed_error() {
        let (train, labels) = toy();
        let err = KnnClassifier::new(Box::new(LinearIndex::new(train)), labels, 0)
            .err()
            .expect("construction must fail");
        assert!(matches!(err, SearchError::UnsupportedConfig { .. }));
    }

    #[test]
    fn batch_classification_matches_single() {
        let (train, labels) = toy();
        let piv = select_pivots_max_sum(&train, 4, 0, &Levenshtein);
        let laesa_index = Laesa::try_build(train.clone(), piv, &Levenshtein).unwrap();
        let classifiers = [
            exhaustive(train, labels.clone(), 3),
            KnnClassifier::new(Box::new(laesa_index), labels, 3).unwrap(),
        ];
        let queries: Vec<Vec<u8>> = [&b"aaba"[..], b"bbaa", b"ccdd", b"abcb"]
            .iter()
            .map(|q| q.to_vec())
            .collect();
        for c in &classifiers {
            let batch = c.classify_batch(&queries, &Levenshtein).unwrap();
            assert_eq!(batch.len(), queries.len());
            for (q, (label, stats)) in queries.iter().zip(&batch) {
                let (sl, sstats) = c.classify(q, &Levenshtein).unwrap();
                assert_eq!(*label, sl, "query {q:?}");
                assert_eq!(stats.distance_computations, sstats.distance_computations);
            }
        }
    }
}
