//! k-NN majority-vote classification — the natural extension of the
//! paper's 1-NN protocol (§4.4), built on the same search backends.
//!
//! The query takes the majority label among its `k` nearest
//! neighbours; ties are broken towards the label of the *nearest*
//! neighbour carrying a tied count (the standard distance-weighted
//! tie-break).

use cned_core::metric::Distance;
use cned_core::Symbol;
use cned_search::laesa::Laesa;
use cned_search::linear::{linear_knn, linear_knn_batch};
use cned_search::pivots::select_pivots_max_sum;
use cned_search::{Neighbour, SearchStats};
use cned_serve::{ShardConfig, ShardedIndex};

/// A labelled k-NN classifier.
pub struct KnnClassifier<S: Symbol> {
    training: Vec<Vec<S>>,
    labels: Vec<u8>,
    laesa: Option<Laesa<S>>,
    sharded: Option<ShardedIndex<S>>,
    k: usize,
}

impl<S: Symbol> KnnClassifier<S> {
    /// Build an exhaustive-search k-NN classifier.
    ///
    /// # Panics
    /// Panics if `k == 0`, training is empty, or lengths mismatch.
    pub fn new(training: Vec<Vec<S>>, labels: Vec<u8>, k: usize) -> KnnClassifier<S> {
        assert!(k > 0, "k must be positive");
        assert_eq!(training.len(), labels.len(), "one label per training item");
        assert!(!training.is_empty(), "training set must be non-empty");
        KnnClassifier {
            training,
            labels,
            laesa: None,
            sharded: None,
            k,
        }
    }

    /// Build a LAESA-backed k-NN classifier with `pivots` max-sum
    /// pivots.
    pub fn with_laesa<D: Distance<S> + ?Sized>(
        training: Vec<Vec<S>>,
        labels: Vec<u8>,
        k: usize,
        pivots: usize,
        dist: &D,
    ) -> KnnClassifier<S> {
        let mut c = KnnClassifier::new(training, labels, k);
        let piv = select_pivots_max_sum(&c.training, pivots, 0, dist);
        c.laesa = Some(Laesa::build(c.training.clone(), piv, dist));
        c
    }

    /// Build a k-NN classifier backed by the sharded serving index
    /// (`cned-serve`): the training set split into `shards` LAESA
    /// shards queried with cross-shard bound propagation. For a metric
    /// distance the answers match the other backends exactly.
    pub fn with_sharded<D: Distance<S> + ?Sized>(
        training: Vec<Vec<S>>,
        labels: Vec<u8>,
        k: usize,
        shards: usize,
        pivots_per_shard: usize,
        dist: &D,
    ) -> KnnClassifier<S> {
        let mut c = KnnClassifier::new(training, labels, k);
        let config = ShardConfig {
            shards,
            pivots_per_shard,
            ..ShardConfig::default()
        };
        c.sharded = Some(ShardedIndex::build(c.training.clone(), config, dist));
        c
    }

    /// Majority vote over neighbours; ties go to the label whose
    /// closest tied representative is nearest.
    fn vote(&self, neighbours: &[Neighbour]) -> u8 {
        debug_assert!(!neighbours.is_empty());
        // Counts and best (smallest) distance per label.
        let mut tally: Vec<(u8, usize, f64)> = Vec::new();
        for nb in neighbours {
            let label = self.labels[nb.index];
            match tally.iter_mut().find(|(l, _, _)| *l == label) {
                Some((_, c, best)) => {
                    *c += 1;
                    if nb.distance < *best {
                        *best = nb.distance;
                    }
                }
                None => tally.push((label, 1, nb.distance)),
            }
        }
        tally
            .into_iter()
            .max_by(|a, b| {
                a.1.cmp(&b.1).then(b.2.total_cmp(&a.2)) // smaller best-distance wins ties
            })
            .map(|(l, _, _)| l)
            .expect("non-empty tally")
    }

    /// Classify one query.
    pub fn classify<D: Distance<S> + ?Sized>(&self, query: &[S], dist: &D) -> (u8, SearchStats) {
        if let Some(idx) = &self.sharded {
            let (neighbours, stats) = idx.knn(query, dist, self.k);
            return (self.vote(&neighbours), stats.total());
        }
        let (neighbours, stats) = match &self.laesa {
            None => linear_knn(&self.training, query, dist, self.k),
            Some(idx) => idx.knn(query, dist, self.k),
        };
        (self.vote(&neighbours), stats)
    }

    /// Classify a batch of queries, parallelised across queries via
    /// the search layer's batch k-NN pipeline. Returns one
    /// `(label, stats)` per query in input order.
    pub fn classify_batch<D: Distance<S> + ?Sized>(
        &self,
        queries: &[Vec<S>],
        dist: &D,
    ) -> Vec<(u8, SearchStats)> {
        if let Some(idx) = &self.sharded {
            return idx
                .knn_batch(queries, dist, self.k)
                .into_iter()
                .map(|(neighbours, stats)| (self.vote(&neighbours), stats.total()))
                .collect();
        }
        let results = match &self.laesa {
            None => linear_knn_batch(&self.training, queries, dist, self.k),
            Some(idx) => idx.knn_batch(queries, dist, self.k),
        };
        results
            .into_iter()
            .map(|(neighbours, stats)| (self.vote(&neighbours), stats))
            .collect()
    }

    /// Error rate (%) over a labelled test set, evaluated through the
    /// parallel [`KnnClassifier::classify_batch`] pipeline.
    pub fn error_rate<D: Distance<S> + ?Sized>(&self, test: &[(Vec<S>, u8)], dist: &D) -> f64 {
        if test.is_empty() {
            return 0.0;
        }
        let queries: Vec<Vec<S>> = test.iter().map(|(q, _)| q.clone()).collect();
        let errors = self
            .classify_batch(&queries, dist)
            .iter()
            .zip(test)
            .filter(|((pred, _), (_, truth))| pred != truth)
            .count();
        100.0 * errors as f64 / test.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cned_core::contextual::heuristic::ContextualHeuristic;
    use cned_core::levenshtein::Levenshtein;

    fn toy() -> (Vec<Vec<u8>>, Vec<u8>) {
        let train: Vec<Vec<u8>> = [
            &b"aaaa"[..],
            b"aaab",
            b"aaba",
            b"bbbb",
            b"bbba",
            b"bbab",
            b"cccc",
            b"cccd",
        ]
        .iter()
        .map(|w| w.to_vec())
        .collect();
        (train, vec![0, 0, 0, 1, 1, 1, 2, 2])
    }

    #[test]
    fn k1_matches_nearest_label() {
        let (train, labels) = toy();
        let c = KnnClassifier::new(train, labels, 1);
        assert_eq!(c.classify(b"aaaa", &Levenshtein).0, 0);
        assert_eq!(c.classify(b"bbbb", &Levenshtein).0, 1);
        assert_eq!(c.classify(b"cccc", &Levenshtein).0, 2);
    }

    #[test]
    fn k3_majority_overrules_single_outlier() {
        // Query "aabb": nearest are aaab/aaba (d=1? aabb vs aaab d=2?
        // compute: aabb vs aaab = 2 subs? a a b b vs a a a b: one sub
        // at pos 2 -> 1). aaba: a a b b vs a a b a: one sub -> 1.
        // bbab/bbba: d=2. With k=3, labels {0,0,?} -> 0.
        let (train, labels) = toy();
        let c = KnnClassifier::new(train, labels, 3);
        assert_eq!(c.classify(b"aabb", &Levenshtein).0, 0);
    }

    #[test]
    fn laesa_backend_agrees_with_exhaustive() {
        let (train, labels) = toy();
        let ex = KnnClassifier::new(train.clone(), labels.clone(), 3);
        let la = KnnClassifier::with_laesa(train, labels, 3, 4, &ContextualHeuristic);
        for q in [&b"aaba"[..], b"bbaa", b"ccdd", b"abcb"] {
            let (le, _) = ex.classify(q, &ContextualHeuristic);
            let (ll, _) = la.classify(q, &ContextualHeuristic);
            assert_eq!(le, ll, "query {q:?}");
        }
    }

    #[test]
    fn sharded_backend_agrees_with_exhaustive() {
        let (train, labels) = toy();
        let ex = KnnClassifier::new(train.clone(), labels.clone(), 3);
        let sh = KnnClassifier::with_sharded(train, labels, 3, 3, 2, &Levenshtein);
        let queries: Vec<Vec<u8>> = [&b"aaba"[..], b"bbaa", b"ccdd", b"abcb"]
            .iter()
            .map(|q| q.to_vec())
            .collect();
        for q in &queries {
            let (le, _) = ex.classify(q, &Levenshtein);
            let (ls, _) = sh.classify(q, &Levenshtein);
            assert_eq!(le, ls, "query {q:?}");
        }
        let batch = sh.classify_batch(&queries, &Levenshtein);
        for (q, (label, stats)) in queries.iter().zip(&batch) {
            let (sl, sstats) = sh.classify(q, &Levenshtein);
            assert_eq!(*label, sl, "query {q:?}");
            assert_eq!(stats.distance_computations, sstats.distance_computations);
        }
        let test: Vec<(Vec<u8>, u8)> = vec![(b"aaaa".to_vec(), 0), (b"bbbb".to_vec(), 1)];
        assert_eq!(sh.error_rate(&test, &Levenshtein), 0.0);
    }

    #[test]
    fn exact_contextual_classification_through_bounded_engine() {
        use cned_core::contextual::exact::Contextual;
        let (train, labels) = toy();
        let ex = KnnClassifier::new(train.clone(), labels.clone(), 3);
        let la = KnnClassifier::with_laesa(train, labels, 3, 4, &Contextual);
        for q in [&b"aaba"[..], b"bbaa", b"ccdd", b"abcb"] {
            let (le, _) = ex.classify(q, &Contextual);
            let (ll, _) = la.classify(q, &Contextual);
            assert_eq!(le, ll, "query {q:?}");
        }
    }

    #[test]
    fn error_rate_counts_mismatches() {
        let (train, labels) = toy();
        let c = KnnClassifier::new(train, labels, 1);
        let test: Vec<(Vec<u8>, u8)> = vec![
            (b"aaaa".to_vec(), 0), // right
            (b"bbbb".to_vec(), 0), // wrong (true NN label is 1)
        ];
        assert_eq!(c.error_rate(&test, &Levenshtein), 50.0);
        assert_eq!(c.error_rate(&[], &Levenshtein), 0.0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let (train, labels) = toy();
        KnnClassifier::new(train, labels, 0);
    }

    #[test]
    fn batch_classification_matches_single() {
        let (train, labels) = toy();
        let exhaustive = KnnClassifier::new(train.clone(), labels.clone(), 3);
        let laesa = KnnClassifier::with_laesa(train, labels, 3, 4, &Levenshtein);
        let queries: Vec<Vec<u8>> = [&b"aaba"[..], b"bbaa", b"ccdd", b"abcb"]
            .iter()
            .map(|q| q.to_vec())
            .collect();
        for c in [&exhaustive, &laesa] {
            let batch = c.classify_batch(&queries, &Levenshtein);
            assert_eq!(batch.len(), queries.len());
            for (q, (label, stats)) in queries.iter().zip(&batch) {
                let (sl, sstats) = c.classify(q, &Levenshtein);
                assert_eq!(*label, sl, "query {q:?}");
                assert_eq!(stats.distance_computations, sstats.distance_computations);
            }
        }
    }
}
