//! Classification evaluation: error rates and confusion matrices.

use cned_core::metric::Distance;
use cned_core::Symbol;
use cned_search::SearchStatsAtomic;

use crate::nn::NnClassifier;

/// A `k × k` confusion matrix over `u8` class labels `0..k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    k: usize,
    /// `counts[true_label][predicted]`.
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// An empty `k`-class matrix.
    pub fn new(k: usize) -> ConfusionMatrix {
        assert!(k > 0);
        ConfusionMatrix {
            k,
            counts: vec![0; k * k],
        }
    }

    /// Record one (truth, prediction) pair.
    pub fn record(&mut self, truth: u8, predicted: u8) {
        assert!((truth as usize) < self.k && (predicted as usize) < self.k);
        self.counts[truth as usize * self.k + predicted as usize] += 1;
    }

    /// Count for a (truth, prediction) cell.
    pub fn get(&self, truth: u8, predicted: u8) -> u64 {
        self.counts[truth as usize * self.k + predicted as usize]
    }

    /// Total recorded samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of misclassified samples (off-diagonal mass).
    pub fn errors(&self) -> u64 {
        let mut e = 0;
        for t in 0..self.k {
            for p in 0..self.k {
                if t != p {
                    e += self.counts[t * self.k + p];
                }
            }
        }
        e
    }

    /// Error rate in percent (the unit of Table 2); 0 when empty.
    pub fn error_rate_percent(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            100.0 * self.errors() as f64 / total as f64
        }
    }

    /// The class most often confused with `truth` (excluding itself),
    /// if any errors exist for that class.
    pub fn worst_confusion(&self, truth: u8) -> Option<(u8, u64)> {
        (0..self.k)
            .filter(|&p| p != truth as usize)
            .map(|p| (p as u8, self.get(truth, p as u8)))
            .filter(|&(_, c)| c > 0)
            .max_by_key(|&(_, c)| c)
    }
}

/// Run a labelled test set through a classifier; returns the confusion
/// matrix and total distance computations spent.
///
/// Queries are evaluated in parallel across all cores (each worker
/// routes through the classifier's prepared-query search path);
/// per-query statistics are streamed into a [`SearchStatsAtomic`]
/// rather than materialised, and the confusion matrix is folded in
/// input order afterwards, so results are deterministic and identical
/// to a sequential evaluation. A failing query (impossible with a
/// well-constructed classifier) surfaces as a typed error instead of
/// a panic.
pub fn evaluate<S: Symbol, D: Distance<S> + ?Sized>(
    classifier: &NnClassifier<S>,
    test: &[(Vec<S>, u8)],
    dist: &D,
    classes: usize,
) -> Result<(ConfusionMatrix, u64), cned_search::SearchError> {
    let total = SearchStatsAtomic::new();
    let per_query = cned_search::par_map(test.len(), |i| {
        let (query, truth) = &test[i];
        let (pred, _, stats) = classifier.classify(query, dist)?;
        total.add(stats);
        Ok((*truth, pred))
    });
    let mut cm = ConfusionMatrix::new(classes);
    for result in per_query {
        let (truth, pred) = result?;
        cm.record(truth, pred);
    }
    Ok((cm, total.snapshot().distance_computations))
}

/// Convenience: error rate in percent for a labelled test set.
pub fn error_rate<S: Symbol, D: Distance<S> + ?Sized>(
    classifier: &NnClassifier<S>,
    test: &[(Vec<S>, u8)],
    dist: &D,
    classes: usize,
) -> Result<f64, cned_search::SearchError> {
    Ok(evaluate(classifier, test, dist, classes)?
        .0
        .error_rate_percent())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cned_core::levenshtein::Levenshtein;
    use cned_search::LinearIndex;

    #[test]
    fn confusion_matrix_bookkeeping() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        cm.record(0, 1);
        cm.record(1, 1);
        cm.record(2, 0);
        assert_eq!(cm.total(), 4);
        assert_eq!(cm.errors(), 2);
        assert_eq!(cm.error_rate_percent(), 50.0);
        assert_eq!(cm.get(0, 1), 1);
        assert_eq!(cm.worst_confusion(0), Some((1, 1)));
        assert_eq!(cm.worst_confusion(1), None);
    }

    #[test]
    fn empty_matrix_is_zero_rate() {
        let cm = ConfusionMatrix::new(2);
        assert_eq!(cm.error_rate_percent(), 0.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_label_panics() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(2, 0);
    }

    #[test]
    fn end_to_end_error_rate() {
        let train: Vec<Vec<u8>> = [&b"aaaa"[..], b"bbbb"].iter().map(|w| w.to_vec()).collect();
        let labels = vec![0, 1];
        let c = NnClassifier::new(Box::new(LinearIndex::new(train)), labels).unwrap();
        let test: Vec<(Vec<u8>, u8)> = vec![
            (b"aaab".to_vec(), 0), // correct
            (b"bbba".to_vec(), 1), // correct
            (b"aabb".to_vec(), 1), // tie aaaa/bbbb at d=2; first index wins -> predicted 0: error
        ];
        let (cm, comps) = evaluate(&c, &test, &Levenshtein, 2).unwrap();
        assert_eq!(cm.total(), 3);
        assert_eq!(cm.errors(), 1);
        assert_eq!(comps, 6);
        let rate = error_rate(&c, &test, &Levenshtein, 2).unwrap();
        assert!((rate - 100.0 / 3.0).abs() < 1e-9);
    }
}
