//! # cned-classify
//!
//! Nearest-neighbour classification (the paper's Section 4.4 /
//! Table 2): an unlabelled query takes the label of its nearest
//! neighbour in a labelled training set; mismatches against the true
//! label count as errors.
//!
//! Two search backends mirror the two columns of Table 2:
//! * **exhaustive** — linear scan, always the true 1-NN;
//! * **LAESA** — pivot-based search; identical answers for metrics,
//!   possibly different for non-metrics (`d_max`, `d_C,h`).

pub mod eval;
pub mod knn;
pub mod nn;

pub use eval::{error_rate, ConfusionMatrix};
pub use knn::KnnClassifier;
pub use nn::{NnClassifier, SearchBackend};
