//! # cned-classify
//!
//! Nearest-neighbour classification (the paper's Section 4.4 /
//! Table 2): an unlabelled query takes the label of its nearest
//! neighbour in a labelled training set; mismatches against the true
//! label count as errors.
//!
//! Classifiers are built over **any** search backend through the
//! unified [`cned_search::MetricIndex`] trait — exhaustive scan
//! ([`cned_search::LinearIndex`], always the true 1-NN), LAESA, AESA,
//! vp-tree, or the sharded serving index. For a metric distance every
//! backend answers identically; for non-metrics (`d_max`, `d_C,h`)
//! pivot-based backends may differ from exhaustive — exactly the
//! contrast Table 2 exploits. Construction and classification return
//! typed [`cned_search::SearchError`]s (label/count mismatch, empty
//! training set) instead of panicking.

// No unsafe here, enforced at compile time (and by cned-lint).
#![forbid(unsafe_code)]

pub mod eval;
pub mod knn;
pub mod nn;

pub use eval::{error_rate, ConfusionMatrix};
pub use knn::KnnClassifier;
pub use nn::NnClassifier;
