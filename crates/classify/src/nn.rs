//! The 1-NN classifier over an arbitrary string distance.

use cned_core::metric::Distance;
use cned_core::Symbol;
use cned_search::laesa::Laesa;
use cned_search::linear::{linear_nn, linear_nn_batch};
use cned_search::pivots::select_pivots_max_sum;
use cned_search::SearchStats;
use cned_serve::{ShardConfig, ShardedIndex};

/// Which search engine answers the nearest-neighbour queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchBackend {
    /// Exhaustive linear scan — `n` distance computations per query.
    Exhaustive,
    /// LAESA with the given number of max-sum pivots.
    Laesa {
        /// Number of base prototypes (pivots).
        pivots: usize,
    },
    /// Sharded serving index (`cned-serve`): the training set split
    /// into LAESA shards queried with cross-shard bound propagation.
    /// Same answers as the other backends (for a metric distance),
    /// built shard-parallel and ready for pipeline serving.
    Sharded {
        /// Number of LAESA shards.
        shards: usize,
        /// Max-sum pivots per shard.
        pivots_per_shard: usize,
    },
}

/// A labelled 1-NN classifier.
pub struct NnClassifier<S: Symbol> {
    training: Vec<Vec<S>>,
    labels: Vec<u8>,
    laesa: Option<Laesa<S>>,
    sharded: Option<ShardedIndex<S>>,
}

impl<S: Symbol> NnClassifier<S> {
    /// Build a classifier from labelled training data.
    ///
    /// For [`SearchBackend::Laesa`], pivot selection and row
    /// precomputation happen here (preprocessing; not counted in query
    /// statistics).
    ///
    /// # Panics
    /// Panics if `training` and `labels` lengths differ or training is
    /// empty.
    pub fn new<D: Distance<S> + ?Sized>(
        training: Vec<Vec<S>>,
        labels: Vec<u8>,
        backend: SearchBackend,
        dist: &D,
    ) -> NnClassifier<S> {
        assert_eq!(training.len(), labels.len(), "one label per training item");
        assert!(!training.is_empty(), "training set must be non-empty");
        let mut laesa = None;
        let mut sharded = None;
        match backend {
            SearchBackend::Exhaustive => {}
            SearchBackend::Laesa { pivots } => {
                let piv = select_pivots_max_sum(&training, pivots, 0, dist);
                laesa = Some(Laesa::build(training.clone(), piv, dist));
            }
            SearchBackend::Sharded {
                shards,
                pivots_per_shard,
            } => {
                let config = ShardConfig {
                    shards,
                    pivots_per_shard,
                    ..ShardConfig::default()
                };
                sharded = Some(ShardedIndex::build(training.clone(), config, dist));
            }
        };
        NnClassifier {
            training,
            labels,
            laesa,
            sharded,
        }
    }

    /// Classify one query: the label of its nearest neighbour, plus
    /// the neighbour's distance and the search statistics.
    pub fn classify<D: Distance<S> + ?Sized>(
        &self,
        query: &[S],
        dist: &D,
    ) -> (u8, f64, SearchStats) {
        if let Some(idx) = &self.sharded {
            let (nn, stats) = idx.nn(query, dist).expect("training set is non-empty");
            return (self.labels[nn.index], nn.distance, stats.total());
        }
        match &self.laesa {
            None => {
                let (nn, stats) =
                    linear_nn(&self.training, query, dist).expect("training set is non-empty");
                (self.labels[nn.index], nn.distance, stats)
            }
            Some(idx) => {
                let (nn, stats) = idx.nn(query, dist).expect("training set is non-empty");
                (self.labels[nn.index], nn.distance, stats)
            }
        }
    }

    /// Classify a batch of queries, parallelised across queries via
    /// the search layer's batch pipeline (per-query prepared caches,
    /// all cores). Returns `(label, nn distance, stats)` per query in
    /// input order.
    pub fn classify_batch<D: Distance<S> + ?Sized>(
        &self,
        queries: &[Vec<S>],
        dist: &D,
    ) -> Vec<(u8, f64, SearchStats)> {
        if let Some(idx) = &self.sharded {
            return idx
                .nn_batch(queries, dist)
                .expect("training set is non-empty")
                .into_iter()
                .map(|(nn, stats)| (self.labels[nn.index], nn.distance, stats.total()))
                .collect();
        }
        let results = match &self.laesa {
            None => linear_nn_batch(&self.training, queries, dist),
            Some(idx) => idx.nn_batch(queries, dist),
        };
        results
            .expect("training set is non-empty")
            .into_iter()
            .map(|(nn, stats)| (self.labels[nn.index], nn.distance, stats))
            .collect()
    }

    /// Number of training items.
    pub fn len(&self) -> usize {
        self.training.len()
    }

    /// Always false (construction rejects empty training sets); kept
    /// for API completeness.
    pub fn is_empty(&self) -> bool {
        self.training.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cned_core::levenshtein::Levenshtein;

    fn toy() -> (Vec<Vec<u8>>, Vec<u8>) {
        let train: Vec<Vec<u8>> = [&b"aaaa"[..], b"aaab", b"abab", b"bbbb", b"bbba", b"babb"]
            .iter()
            .map(|w| w.to_vec())
            .collect();
        let labels = vec![0, 0, 0, 1, 1, 1];
        (train, labels)
    }

    #[test]
    fn classifies_obvious_queries() {
        let (train, labels) = toy();
        let c = NnClassifier::new(train, labels, SearchBackend::Exhaustive, &Levenshtein);
        let (label_a, d_a, stats) = c.classify(b"aaaa", &Levenshtein);
        assert_eq!(label_a, 0);
        assert_eq!(d_a, 0.0);
        assert_eq!(stats.distance_computations, 6);
        let (label_b, _, _) = c.classify(b"bbbb", &Levenshtein);
        assert_eq!(label_b, 1);
    }

    #[test]
    fn laesa_backend_agrees_with_exhaustive_for_metric() {
        let (train, labels) = toy();
        let ex = NnClassifier::new(
            train.clone(),
            labels.clone(),
            SearchBackend::Exhaustive,
            &Levenshtein,
        );
        let la = NnClassifier::new(
            train,
            labels,
            SearchBackend::Laesa { pivots: 3 },
            &Levenshtein,
        );
        let (train, _) = toy();
        for q in [&b"aaba"[..], b"bbab", b"aabb", b"abba"] {
            let (le, de, _) = ex.classify(q, &Levenshtein);
            let (ll, dl, _) = la.classify(q, &Levenshtein);
            assert_eq!(de, dl, "distance mismatch on {q:?}");
            // Labels must agree whenever the nearest neighbour is
            // unique; on ties either backend may pick either witness.
            let min_count = train
                .iter()
                .filter(|t| cned_core::levenshtein::levenshtein(t, q) as f64 == de)
                .count();
            if min_count == 1 {
                assert_eq!(le, ll, "label mismatch on {q:?}");
            }
        }
    }

    #[test]
    fn batch_classification_matches_single() {
        let (train, labels) = toy();
        for backend in [
            SearchBackend::Exhaustive,
            SearchBackend::Laesa { pivots: 3 },
        ] {
            let c = NnClassifier::new(train.clone(), labels.clone(), backend, &Levenshtein);
            let queries: Vec<Vec<u8>> = [&b"aaba"[..], b"bbab", b"aabb", b"abba"]
                .iter()
                .map(|q| q.to_vec())
                .collect();
            let batch = c.classify_batch(&queries, &Levenshtein);
            assert_eq!(batch.len(), queries.len());
            for (q, (label, d, stats)) in queries.iter().zip(&batch) {
                let (sl, sd, sstats) = c.classify(q, &Levenshtein);
                assert_eq!(*label, sl, "query {q:?}");
                assert_eq!(*d, sd);
                assert_eq!(stats.distance_computations, sstats.distance_computations);
            }
        }
    }

    #[test]
    fn contextual_backends_agree_through_bounded_engine() {
        // The classifier's queries route through the search layer's
        // prepared path, which for d_C is the band-pruned bounded
        // engine; both backends must agree with each other and with
        // the batch pipeline.
        use cned_core::contextual::exact::Contextual;
        let (train, labels) = toy();
        let ex = NnClassifier::new(
            train.clone(),
            labels.clone(),
            SearchBackend::Exhaustive,
            &Contextual,
        );
        let la = NnClassifier::new(
            train,
            labels,
            SearchBackend::Laesa { pivots: 3 },
            &Contextual,
        );
        let queries: Vec<Vec<u8>> = [&b"aaba"[..], b"bbab", b"aabb", b"abba"]
            .iter()
            .map(|q| q.to_vec())
            .collect();
        for q in &queries {
            let (_, de, _) = ex.classify(q, &Contextual);
            let (_, dl, _) = la.classify(q, &Contextual);
            assert!((de - dl).abs() < 1e-12, "distance mismatch on {q:?}");
        }
        let batch = ex.classify_batch(&queries, &Contextual);
        for (q, (label, d, _)) in queries.iter().zip(&batch) {
            let (sl, sd, _) = ex.classify(q, &Contextual);
            assert_eq!(*label, sl, "query {q:?}");
            assert_eq!(*d, sd);
        }
    }

    #[test]
    fn sharded_backend_agrees_with_exhaustive() {
        let (train, labels) = toy();
        let ex = NnClassifier::new(
            train.clone(),
            labels.clone(),
            SearchBackend::Exhaustive,
            &Levenshtein,
        );
        let sh = NnClassifier::new(
            train,
            labels,
            SearchBackend::Sharded {
                shards: 3,
                pivots_per_shard: 2,
            },
            &Levenshtein,
        );
        let queries: Vec<Vec<u8>> = [&b"aaba"[..], b"bbab", b"aabb", b"abba"]
            .iter()
            .map(|q| q.to_vec())
            .collect();
        for q in &queries {
            let (le, de, _) = ex.classify(q, &Levenshtein);
            let (ls, ds, _) = sh.classify(q, &Levenshtein);
            // With the canonical (distance, index) tie-break both
            // backends resolve to the same training item, so labels
            // agree even on distance ties.
            assert_eq!(de, ds, "distance mismatch on {q:?}");
            assert_eq!(le, ls, "label mismatch on {q:?}");
        }
        let batch = sh.classify_batch(&queries, &Levenshtein);
        for (q, (label, d, stats)) in queries.iter().zip(&batch) {
            let (sl, sd, sstats) = sh.classify(q, &Levenshtein);
            assert_eq!(*label, sl, "query {q:?}");
            assert_eq!(*d, sd);
            assert_eq!(stats.distance_computations, sstats.distance_computations);
        }
    }

    #[test]
    #[should_panic(expected = "one label per training item")]
    fn mismatched_labels_rejected() {
        NnClassifier::new(
            vec![b"a".to_vec()],
            vec![0, 1],
            SearchBackend::Exhaustive,
            &Levenshtein,
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_training_rejected() {
        NnClassifier::<u8>::new(
            Vec::new(),
            Vec::new(),
            SearchBackend::Exhaustive,
            &Levenshtein,
        );
    }
}
