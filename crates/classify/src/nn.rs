//! The 1-NN classifier over an arbitrary string distance.
//!
//! The classifier consumes any [`MetricIndex`] trait object — linear
//! scan, LAESA, AESA, vp-tree or the sharded serving index — instead
//! of a closed backend enum, so a new search backend works here with
//! zero classifier changes.

use cned_core::metric::Distance;
use cned_core::Symbol;
use cned_search::{MetricIndex, QueryOptions, SearchError, SearchStats};

/// A labelled 1-NN classifier over any search backend.
pub struct NnClassifier<S: Symbol> {
    index: Box<dyn MetricIndex<S>>,
    labels: Vec<u8>,
}

impl<S: Symbol> NnClassifier<S> {
    /// Build a classifier from a search index and one label per
    /// indexed item.
    ///
    /// The index must be built over the training set with the same
    /// distance later passed to [`NnClassifier::classify`]. Label
    /// count mismatches and empty training sets are typed errors.
    pub fn new(
        index: Box<dyn MetricIndex<S>>,
        labels: Vec<u8>,
    ) -> Result<NnClassifier<S>, SearchError> {
        if labels.len() != index.len() {
            return Err(SearchError::LabelCount {
                labels: labels.len(),
                items: index.len(),
            });
        }
        if index.is_empty() {
            return Err(SearchError::EmptyDatabase);
        }
        Ok(NnClassifier { index, labels })
    }

    /// The search index answering the queries.
    pub fn index(&self) -> &dyn MetricIndex<S> {
        &*self.index
    }

    /// Classify one query: the label of its nearest neighbour, plus
    /// the neighbour's distance and the search statistics.
    pub fn classify<D: Distance<S> + ?Sized>(
        &self,
        query: &[S],
        dist: &D,
    ) -> Result<(u8, f64, SearchStats), SearchError> {
        let (found, stats) = self.index.nn(query, &dist, &QueryOptions::new())?;
        let nn = found.expect("construction rejects empty training sets");
        Ok((self.labels[nn.index], nn.distance, stats))
    }

    /// Classify a batch of queries, parallelised across queries via
    /// the search layer's batch pipeline (per-query prepared caches,
    /// all cores). Returns `(label, nn distance, stats)` per query in
    /// input order.
    pub fn classify_batch<D: Distance<S> + ?Sized>(
        &self,
        queries: &[Vec<S>],
        dist: &D,
    ) -> Result<Vec<(u8, f64, SearchStats)>, SearchError> {
        let results = self.index.nn_batch(queries, &dist, &QueryOptions::new())?;
        Ok(results
            .into_iter()
            .map(|(found, stats)| {
                let nn = found.expect("construction rejects empty training sets");
                (self.labels[nn.index], nn.distance, stats)
            })
            .collect())
    }

    /// Number of training items.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Always false (construction rejects empty training sets); kept
    /// for API completeness.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cned_core::levenshtein::Levenshtein;
    use cned_search::pivots::select_pivots_max_sum;
    use cned_search::{Laesa, LinearIndex};
    use cned_serve::{ShardConfig, ShardedIndex};

    fn toy() -> (Vec<Vec<u8>>, Vec<u8>) {
        let train: Vec<Vec<u8>> = [&b"aaaa"[..], b"aaab", b"abab", b"bbbb", b"bbba", b"babb"]
            .iter()
            .map(|w| w.to_vec())
            .collect();
        let labels = vec![0, 0, 0, 1, 1, 1];
        (train, labels)
    }

    fn exhaustive(train: Vec<Vec<u8>>, labels: Vec<u8>) -> NnClassifier<u8> {
        NnClassifier::new(Box::new(LinearIndex::new(train)), labels).unwrap()
    }

    fn laesa(
        train: Vec<Vec<u8>>,
        labels: Vec<u8>,
        pivots: usize,
        dist: &dyn cned_core::metric::Distance<u8>,
    ) -> NnClassifier<u8> {
        let piv = select_pivots_max_sum(&train, pivots, 0, dist);
        let index = Laesa::try_build(train, piv, dist).unwrap();
        NnClassifier::new(Box::new(index), labels).unwrap()
    }

    #[test]
    fn classifies_obvious_queries() {
        let (train, labels) = toy();
        let c = exhaustive(train, labels);
        let (label_a, d_a, stats) = c.classify(b"aaaa", &Levenshtein).unwrap();
        assert_eq!(label_a, 0);
        assert_eq!(d_a, 0.0);
        assert_eq!(stats.distance_computations, 6);
        let (label_b, _, _) = c.classify(b"bbbb", &Levenshtein).unwrap();
        assert_eq!(label_b, 1);
    }

    #[test]
    fn laesa_backend_agrees_with_exhaustive_for_metric() {
        let (train, labels) = toy();
        let ex = exhaustive(train.clone(), labels.clone());
        let la = laesa(train.clone(), labels, 3, &Levenshtein);
        for q in [&b"aaba"[..], b"bbab", b"aabb", b"abba"] {
            let (le, de, _) = ex.classify(q, &Levenshtein).unwrap();
            let (ll, dl, _) = la.classify(q, &Levenshtein).unwrap();
            assert_eq!(de, dl, "distance mismatch on {q:?}");
            // With the canonical (distance, index) tie-break both
            // backends resolve to the same training item, so labels
            // agree even on distance ties.
            assert_eq!(le, ll, "label mismatch on {q:?}");
        }
    }

    #[test]
    fn batch_classification_matches_single() {
        let (train, labels) = toy();
        let classifiers = [
            exhaustive(train.clone(), labels.clone()),
            laesa(train, labels, 3, &Levenshtein),
        ];
        for c in &classifiers {
            let queries: Vec<Vec<u8>> = [&b"aaba"[..], b"bbab", b"aabb", b"abba"]
                .iter()
                .map(|q| q.to_vec())
                .collect();
            let batch = c.classify_batch(&queries, &Levenshtein).unwrap();
            assert_eq!(batch.len(), queries.len());
            for (q, (label, d, stats)) in queries.iter().zip(&batch) {
                let (sl, sd, sstats) = c.classify(q, &Levenshtein).unwrap();
                assert_eq!(*label, sl, "query {q:?}");
                assert_eq!(*d, sd);
                assert_eq!(stats.distance_computations, sstats.distance_computations);
            }
        }
    }

    #[test]
    fn contextual_backends_agree_through_bounded_engine() {
        // The classifier's queries route through the search layer's
        // prepared path, which for d_C is the band-pruned bounded
        // engine; both backends must agree with each other and with
        // the batch pipeline.
        use cned_core::contextual::exact::Contextual;
        let (train, labels) = toy();
        let ex = exhaustive(train.clone(), labels.clone());
        let la = laesa(train, labels, 3, &Contextual);
        let queries: Vec<Vec<u8>> = [&b"aaba"[..], b"bbab", b"aabb", b"abba"]
            .iter()
            .map(|q| q.to_vec())
            .collect();
        for q in &queries {
            let (_, de, _) = ex.classify(q, &Contextual).unwrap();
            let (_, dl, _) = la.classify(q, &Contextual).unwrap();
            assert!((de - dl).abs() < 1e-12, "distance mismatch on {q:?}");
        }
        let batch = ex.classify_batch(&queries, &Contextual).unwrap();
        for (q, (label, d, _)) in queries.iter().zip(&batch) {
            let (sl, sd, _) = ex.classify(q, &Contextual).unwrap();
            assert_eq!(*label, sl, "query {q:?}");
            assert_eq!(*d, sd);
        }
    }

    #[test]
    fn sharded_backend_agrees_with_exhaustive() {
        let (train, labels) = toy();
        let ex = exhaustive(train.clone(), labels.clone());
        let config = ShardConfig {
            shards: 3,
            pivots_per_shard: 2,
            ..ShardConfig::default()
        };
        let index = ShardedIndex::try_build(train, config, &Levenshtein).unwrap();
        let sh = NnClassifier::new(Box::new(index), labels).unwrap();
        let queries: Vec<Vec<u8>> = [&b"aaba"[..], b"bbab", b"aabb", b"abba"]
            .iter()
            .map(|q| q.to_vec())
            .collect();
        for q in &queries {
            let (le, de, _) = ex.classify(q, &Levenshtein).unwrap();
            let (ls, ds, _) = sh.classify(q, &Levenshtein).unwrap();
            assert_eq!(de, ds, "distance mismatch on {q:?}");
            assert_eq!(le, ls, "label mismatch on {q:?}");
        }
        let batch = sh.classify_batch(&queries, &Levenshtein).unwrap();
        for (q, (label, d, stats)) in queries.iter().zip(&batch) {
            let (sl, sd, sstats) = sh.classify(q, &Levenshtein).unwrap();
            assert_eq!(*label, sl, "query {q:?}");
            assert_eq!(*d, sd);
            assert_eq!(stats.distance_computations, sstats.distance_computations);
        }
    }

    #[test]
    fn mismatched_labels_are_a_typed_error() {
        let err = NnClassifier::new(Box::new(LinearIndex::new(vec![b"a".to_vec()])), vec![0, 1])
            .err()
            .expect("construction must fail");
        assert_eq!(
            err,
            SearchError::LabelCount {
                labels: 2,
                items: 1
            }
        );
    }

    #[test]
    fn empty_training_is_a_typed_error() {
        let err = NnClassifier::<u8>::new(Box::new(LinearIndex::new(Vec::new())), Vec::new())
            .err()
            .expect("construction must fail");
        assert_eq!(err, SearchError::EmptyDatabase);
    }
}
