//! Property-based tests for the dataset generators, especially the
//! raster → contour → chain-code pipeline, whose invariants must hold
//! for *any* bitmap, not just digit glyphs.

use cned_core::levenshtein::levenshtein;
use cned_datasets::chain::{chain_code, freeman_step, replay_chain};
use cned_datasets::contour::trace_boundary;
use cned_datasets::dictionary::spanish_dictionary;
use cned_datasets::dna::{dna_sequences_with, LengthLaw, TransitionMatrix};
use cned_datasets::perturb::{perturb, ASCII_LOWER};
use cned_datasets::raster::Bitmap;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random small bitmaps: dimensions 1..=12, arbitrary ink.
fn bitmap_strategy() -> impl Strategy<Value = Bitmap> {
    (1usize..=12, 1usize..=12).prop_flat_map(|(w, h)| {
        proptest::collection::vec(proptest::bool::weighted(0.35), w * h).prop_map(move |cells| {
            let mut b = Bitmap::new(w, h);
            for (i, &ink) in cells.iter().enumerate() {
                if ink {
                    b.set((i % w) as i32, (i / w) as i32);
                }
            }
            b
        })
    })
}

proptest! {
    // ------------- Moore boundary tracing -------------

    #[test]
    fn contour_pixels_are_ink_and_adjacent(bmp in bitmap_strategy()) {
        let c = trace_boundary(&bmp);
        for &(x, y) in &c {
            prop_assert!(bmp.get(x, y), "contour pixel ({x},{y}) is background");
        }
        for w in c.windows(2) {
            let (dx, dy) = (w[1].0 - w[0].0, w[1].1 - w[0].1);
            prop_assert!(dx.abs() <= 1 && dy.abs() <= 1 && (dx, dy) != (0, 0));
        }
        // Closure: last pixel is 8-adjacent to the first (len >= 2).
        if c.len() >= 2 {
            let (dx, dy) = (c[0].0 - c[c.len() - 1].0, c[0].1 - c[c.len() - 1].1);
            prop_assert!(dx.abs() <= 1 && dy.abs() <= 1);
        }
    }

    #[test]
    fn contour_nonempty_iff_ink(bmp in bitmap_strategy()) {
        let c = trace_boundary(&bmp);
        prop_assert_eq!(c.is_empty(), bmp.ink() == 0);
    }

    #[test]
    fn contour_starts_at_scan_order_first_ink(bmp in bitmap_strategy()) {
        let c = trace_boundary(&bmp);
        if let Some(&first) = c.first() {
            'scan: for y in 0..bmp.height() as i32 {
                for x in 0..bmp.width() as i32 {
                    if bmp.get(x, y) {
                        prop_assert_eq!(first, (x, y));
                        break 'scan;
                    }
                }
            }
        }
    }

    #[test]
    fn contour_never_visits_interior(bmp in bitmap_strategy()) {
        // An interior pixel (all 4-neighbours ink) cannot be on the
        // outer boundary.
        let c = trace_boundary(&bmp);
        for &(x, y) in &c {
            let interior = bmp.get(x - 1, y) && bmp.get(x + 1, y)
                && bmp.get(x, y - 1) && bmp.get(x, y + 1)
                && bmp.get(x - 1, y - 1) && bmp.get(x + 1, y - 1)
                && bmp.get(x - 1, y + 1) && bmp.get(x + 1, y + 1);
            prop_assert!(!interior, "interior pixel ({x},{y}) on contour");
        }
    }

    // ------------- Freeman chain codes -------------

    #[test]
    fn chain_code_replays_and_closes(bmp in bitmap_strategy()) {
        let c = trace_boundary(&bmp);
        if c.len() >= 2 {
            let chain = chain_code(&c);
            prop_assert_eq!(chain.len(), c.len());
            prop_assert!(chain.iter().all(|&s| s < 8));
            // Replaying ends back at the start pixel.
            let replay = replay_chain(c[0], &chain);
            prop_assert_eq!(*replay.last().unwrap(), c[0]);
            // Net displacement per axis is zero.
            let (mut dx, mut dy) = (0i32, 0i32);
            for &s in &chain {
                let (a, b) = freeman_step(s);
                dx += a;
                dy += b;
            }
            prop_assert_eq!((dx, dy), (0, 0));
        }
    }

    // ------------- Perturbation (genqueries) -------------

    #[test]
    fn perturbation_distance_bounded_by_ops(
        word in proptest::collection::vec(97u8..=99, 0..=12),
        ops in 0usize..=4,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = perturb(&word, ops, ASCII_LOWER, &mut rng);
        prop_assert!(levenshtein(&word, &q) <= ops);
    }

    // ------------- Generators -------------

    #[test]
    fn dictionary_prefix_stability(n in 1usize..=400, seed in 0u64..20) {
        // Generating a bigger dictionary extends, never rewrites, a
        // smaller one with the same seed (streaming determinism).
        let small = spanish_dictionary(n, seed);
        let large = spanish_dictionary(n + 50, seed);
        prop_assert_eq!(&large[..n], &small[..]);
    }

    #[test]
    fn dna_lengths_always_clamped(median in 20.0f64..200.0, sigma in 0.05f64..1.0, seed in 0u64..30) {
        let law = LengthLaw { median, sigma, min: 10, max: 300 };
        for s in dna_sequences_with(20, seed, law, TransitionMatrix::default()) {
            prop_assert!((10..=300).contains(&s.len()));
        }
    }
}
