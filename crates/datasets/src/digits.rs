//! Synthetic handwritten digits → contour chain-code strings
//! (stand-in for NIST SPECIAL DATABASE 3).
//!
//! Pipeline per sample:
//!
//! 1. a per-class **stroke template** (polylines + ellipse arcs in the
//!    unit square);
//! 2. a random **writer jitter**: rotation, anisotropic scale, shear,
//!    translation and stroke-width variation — reproducing the paper's
//!    "no preprocessing of the digits: orientation and sizes are
//!    therefore widely different from scribe to scribe";
//! 3. rasterisation onto a binary canvas ([`crate::raster`]);
//! 4. Moore boundary tracing ([`crate::contour`]);
//! 5. Freeman chain coding ([`crate::chain`]) — an 8-symbol string
//!    whose length tracks the glyph perimeter.
//!
//! Samples are labelled with their digit class for the classification
//! experiment (Table 2).

use crate::chain::chain_code;
use crate::contour::trace_boundary;
use crate::raster::{Affine, Bitmap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One labelled digit sample: the class and its contour chain code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigitSample {
    /// Digit class, `0..=9`.
    pub label: u8,
    /// Freeman chain code of the glyph's outer contour (symbols
    /// `0..=7`).
    pub chain: Vec<u8>,
}

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DigitConfig {
    /// Canvas side in pixels.
    pub canvas: usize,
    /// Base stroke radius in pixels.
    pub stroke: f64,
    /// Maximum |rotation| in radians.
    pub max_rotation: f64,
    /// Scale jitter: each axis drawn from `1 ± scale_jitter`.
    pub scale_jitter: f64,
    /// Maximum |shear|.
    pub max_shear: f64,
    /// Maximum |translation| in pixels.
    pub max_shift: f64,
}

impl Default for DigitConfig {
    fn default() -> DigitConfig {
        // Calibrated so 1-NN error rates land in the paper's Table 2
        // ballpark (a few percent) with normalised distances beating
        // plain d_E: heavy rotation/scale/shear variation mimics the
        // "no preprocessing — orientation and sizes widely different
        // from scribe to scribe" regime of NIST SD3.
        DigitConfig {
            canvas: 40,
            stroke: 1.6,
            max_rotation: 0.6, // ~34 degrees
            scale_jitter: 0.35,
            max_shear: 0.4,
            max_shift: 6.0,
        }
    }
}

/// A drawing primitive in unit-square coordinates.
enum Stroke {
    /// Straight segment.
    Line((f64, f64), (f64, f64)),
    /// Ellipse arc: centre, radii, start/end angle (radians,
    /// counter-clockwise in unit coordinates with y down).
    Arc {
        c: (f64, f64),
        r: (f64, f64),
        from: f64,
        to: f64,
    },
}

/// Stroke templates for digits 0–9. Coordinates are (x, y) with y
/// growing downward, inside the unit square.
fn template(digit: u8) -> Vec<Stroke> {
    use std::f64::consts::PI;
    use Stroke::{Arc, Line};
    match digit {
        0 => vec![Arc {
            c: (0.5, 0.5),
            r: (0.27, 0.38),
            from: 0.0,
            to: 2.0 * PI,
        }],
        1 => vec![
            Line((0.38, 0.22), (0.54, 0.08)),
            Line((0.54, 0.08), (0.54, 0.92)),
        ],
        2 => vec![
            Arc {
                c: (0.5, 0.3),
                r: (0.24, 0.2),
                from: -PI,
                to: 0.1,
            },
            Line((0.72, 0.34), (0.28, 0.9)),
            Line((0.28, 0.9), (0.75, 0.9)),
        ],
        3 => vec![
            Arc {
                c: (0.48, 0.29),
                r: (0.21, 0.19),
                from: -PI * 0.9,
                to: PI * 0.45,
            },
            Arc {
                c: (0.48, 0.69),
                r: (0.24, 0.22),
                from: -PI * 0.45,
                to: PI * 0.9,
            },
        ],
        4 => vec![
            Line((0.66, 0.92), (0.66, 0.08)),
            Line((0.66, 0.08), (0.24, 0.62)),
            Line((0.24, 0.62), (0.8, 0.62)),
        ],
        5 => vec![
            Line((0.72, 0.08), (0.32, 0.08)),
            Line((0.32, 0.08), (0.3, 0.45)),
            Arc {
                c: (0.48, 0.66),
                r: (0.24, 0.24),
                from: -PI * 0.55,
                to: PI * 0.8,
            },
        ],
        6 => vec![
            Line((0.62, 0.08), (0.36, 0.48)),
            Arc {
                c: (0.5, 0.68),
                r: (0.2, 0.21),
                from: 0.0,
                to: 2.0 * PI,
            },
        ],
        7 => vec![
            Line((0.25, 0.1), (0.75, 0.1)),
            Line((0.75, 0.1), (0.42, 0.92)),
        ],
        8 => vec![
            Arc {
                c: (0.5, 0.3),
                r: (0.18, 0.18),
                from: 0.0,
                to: 2.0 * PI,
            },
            Arc {
                c: (0.5, 0.69),
                r: (0.22, 0.21),
                from: 0.0,
                to: 2.0 * PI,
            },
        ],
        9 => vec![
            Arc {
                c: (0.47, 0.32),
                r: (0.19, 0.2),
                from: 0.0,
                to: 2.0 * PI,
            },
            Line((0.66, 0.36), (0.58, 0.92)),
        ],
        _ => panic!("digit {digit} out of range 0..=9"),
    }
}

/// Rasterise one digit template under the given transform.
fn render_bitmap(digit: u8, t: &Affine, stroke: f64, canvas: usize) -> Bitmap {
    let mut bmp = Bitmap::new(canvas, canvas);
    for s in template(digit) {
        match s {
            Stroke::Line(p, q) => {
                let (x0, y0) = t.apply(p.0, p.1);
                let (x1, y1) = t.apply(q.0, q.1);
                bmp.line(x0, y0, x1, y1, stroke);
            }
            Stroke::Arc { c, r, from, to } => {
                // Sample the arc densely and join with short segments.
                let steps = ((to - from).abs() * r.0.max(r.1) * canvas as f64).ceil() as usize + 8;
                let mut prev: Option<(f64, f64)> = None;
                for i in 0..=steps {
                    let a = from + (to - from) * i as f64 / steps as f64;
                    let ux = c.0 + r.0 * a.cos();
                    let uy = c.1 + r.1 * a.sin();
                    let (px, py) = t.apply(ux, uy);
                    if let Some((qx, qy)) = prev {
                        bmp.line(qx, qy, px, py, stroke);
                    }
                    prev = Some((px, py));
                }
            }
        }
    }
    bmp
}

/// Render one digit with the given jitter transform onto a fresh
/// canvas and return its contour chain code.
fn render_chain(digit: u8, t: &Affine, stroke: f64, canvas: usize) -> Vec<u8> {
    chain_code(&trace_boundary(&render_bitmap(digit, t, stroke, canvas)))
}

/// Render one jittered digit glyph to its bitmap — the image-side
/// view of the pipeline (the paper's Figure 5 shows how differently
/// the same class can look across scribes). Deterministic in `seed`.
pub fn render_digit_bitmap(digit: u8, seed: u64, cfg: DigitConfig) -> Bitmap {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = Affine::canvas(cfg.canvas);
    let theta = rng.random_range(-cfg.max_rotation..=cfg.max_rotation);
    let sx = rng.random_range(1.0 - cfg.scale_jitter..=1.0 + cfg.scale_jitter);
    let sy = rng.random_range(1.0 - cfg.scale_jitter..=1.0 + cfg.scale_jitter);
    let sh = rng.random_range(-cfg.max_shear..=cfg.max_shear);
    let dx = rng.random_range(-cfg.max_shift..=cfg.max_shift);
    let dy = rng.random_range(-cfg.max_shift..=cfg.max_shift);
    let stroke = cfg.stroke * rng.random_range(0.85..=1.25);
    let t = base.jittered(theta, sx, sy, sh, dx, dy);
    render_bitmap(digit, &t, stroke, cfg.canvas)
}

/// Generate `per_class` samples of every digit 0–9 (so
/// `10 × per_class` total), deterministic in `seed`.
///
/// Each sample gets an independent writer jitter; samples are returned
/// grouped by class (all 0s, then all 1s, …). Shuffle or split
/// downstream as needed.
///
/// ```
/// use cned_datasets::digits::generate_digits;
/// let data = generate_digits(5, 42);
/// assert_eq!(data.len(), 50);
/// assert!(data.iter().all(|d| d.label < 10));
/// assert!(data.iter().all(|d| d.chain.len() > 20)); // real perimeters
/// ```
pub fn generate_digits(per_class: usize, seed: u64) -> Vec<DigitSample> {
    generate_digits_with(per_class, seed, DigitConfig::default())
}

/// [`generate_digits`] with explicit parameters.
pub fn generate_digits_with(per_class: usize, seed: u64, cfg: DigitConfig) -> Vec<DigitSample> {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = Affine::canvas(cfg.canvas);
    let mut out = Vec::with_capacity(per_class * 10);
    for digit in 0..10u8 {
        for _ in 0..per_class {
            let chain = loop {
                let theta = rng.random_range(-cfg.max_rotation..=cfg.max_rotation);
                let sx = rng.random_range(1.0 - cfg.scale_jitter..=1.0 + cfg.scale_jitter);
                let sy = rng.random_range(1.0 - cfg.scale_jitter..=1.0 + cfg.scale_jitter);
                let sh = rng.random_range(-cfg.max_shear..=cfg.max_shear);
                let dx = rng.random_range(-cfg.max_shift..=cfg.max_shift);
                let dy = rng.random_range(-cfg.max_shift..=cfg.max_shift);
                let stroke = cfg.stroke * rng.random_range(0.85..=1.25);
                let t = base.jittered(theta, sx, sy, sh, dx, dy);
                let chain = render_chain(digit, &t, stroke, cfg.canvas);
                // Degenerate jitters (glyph off-canvas) are re-rolled.
                if chain.len() >= 16 {
                    break chain;
                }
            };
            out.push(DigitSample {
                label: digit,
                chain,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_classes_present_and_sized() {
        let data = generate_digits(3, 1);
        assert_eq!(data.len(), 30);
        for d in 0..10u8 {
            assert_eq!(data.iter().filter(|s| s.label == d).count(), 3);
        }
    }

    #[test]
    fn chains_use_freeman_alphabet() {
        for s in generate_digits(2, 2) {
            assert!(!s.chain.is_empty());
            assert!(s.chain.iter().all(|&c| c < 8), "bad symbol in {s:?}");
        }
    }

    #[test]
    fn chains_are_closed_loops() {
        use crate::chain::freeman_step;
        for s in generate_digits(2, 3) {
            let (mut x, mut y) = (0i32, 0i32);
            for &c in &s.chain {
                let (dx, dy) = freeman_step(c);
                x += dx;
                y += dy;
            }
            assert_eq!((x, y), (0, 0), "chain of {} does not close", s.label);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate_digits(2, 7), generate_digits(2, 7));
        assert_ne!(generate_digits(2, 7), generate_digits(2, 8));
    }

    #[test]
    fn intra_class_variation_exists() {
        let data = generate_digits(5, 4);
        // Two samples of the same class should (overwhelmingly) differ:
        // jitter must actually do something.
        let zeros: Vec<_> = data.iter().filter(|s| s.label == 0).collect();
        assert!(zeros.windows(2).any(|w| w[0].chain != w[1].chain));
    }

    #[test]
    fn chain_lengths_look_like_perimeters() {
        let data = generate_digits(4, 5);
        for s in &data {
            assert!(
                (16..=400).contains(&s.chain.len()),
                "class {} chain length {} out of plausible perimeter range",
                s.label,
                s.chain.len()
            );
        }
    }

    #[test]
    fn classes_are_geometrically_distinct() {
        // A '1' (thin stroke) must have a much shorter contour than a
        // '0' (full ellipse) on average — sanity that templates differ.
        let data = generate_digits(6, 6);
        let avg = |d: u8| {
            let v: Vec<_> = data.iter().filter(|s| s.label == d).collect();
            v.iter().map(|s| s.chain.len()).sum::<usize>() as f64 / v.len() as f64
        };
        assert!(
            avg(0) > avg(1) * 0.8,
            "0 perimeter {} vs 1 {}",
            avg(0),
            avg(1)
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn template_rejects_non_digits() {
        template(10);
    }

    #[test]
    fn rendered_bitmap_has_ink_and_is_deterministic() {
        let cfg = DigitConfig::default();
        for d in 0..10u8 {
            let bmp = render_digit_bitmap(d, 5, cfg);
            assert!(bmp.ink() > 20, "digit {d} rendered almost empty");
            assert_eq!(bmp, render_digit_bitmap(d, 5, cfg));
        }
    }

    #[test]
    fn different_seeds_render_different_glyphs() {
        let cfg = DigitConfig::default();
        assert_ne!(
            render_digit_bitmap(8, 1, cfg),
            render_digit_bitmap(8, 2, cfg)
        );
    }
}
