//! Moore boundary tracing: bitmap → ordered contour pixels.
//!
//! The classic 8-neighbourhood boundary-following algorithm with
//! Jacob's stopping criterion: start at the first ink pixel in scan
//! order (top-to-bottom, left-to-right), walk the Moore neighbourhood
//! clockwise from the backtrack direction, and stop on re-entering the
//! start pixel from the same direction as the first time. The result
//! is the closed outer contour of the ink component containing the
//! start pixel — exactly the curve the NIST contour-string pipeline
//! encodes as a Freeman chain.

use crate::raster::Bitmap;

/// Moore neighbourhood in clockwise order starting East, as
/// `(dx, dy)` with `y` growing downwards:
/// E, SE, S, SW, W, NW, N, NE.
pub const MOORE: [(i32, i32); 8] = [
    (1, 0),
    (1, 1),
    (0, 1),
    (-1, 1),
    (-1, 0),
    (-1, -1),
    (0, -1),
    (1, -1),
];

/// Trace the outer boundary of the ink component containing the first
/// ink pixel (scan order). Returns the closed sequence of boundary
/// pixel coordinates (first pixel not repeated at the end), or an
/// empty vector for a blank bitmap.
///
/// An isolated single pixel yields a one-element contour.
pub fn trace_boundary(bitmap: &Bitmap) -> Vec<(i32, i32)> {
    // Find the start pixel.
    let mut start = None;
    'scan: for y in 0..bitmap.height() as i32 {
        for x in 0..bitmap.width() as i32 {
            if bitmap.get(x, y) {
                start = Some((x, y));
                break 'scan;
            }
        }
    }
    let Some(start) = start else {
        return Vec::new();
    };

    // One tracing step: from pixel `cur` entered via direction `dir`,
    // scan the Moore neighbourhood clockwise starting just past the
    // backtrack direction (opposite of `dir`) and return the first ink
    // neighbour with its direction. `None` only for isolated pixels.
    let step = |cur: (i32, i32), dir: usize| -> Option<((i32, i32), usize)> {
        let backtrack = (dir + 4) % 8;
        for s in 1..=8 {
            let d = (backtrack + s) % 8;
            let (dx, dy) = MOORE[d];
            if bitmap.get(cur.0 + dx, cur.1 + dy) {
                return Some(((cur.0 + dx, cur.1 + dy), d));
            }
        }
        None
    };

    // The start pixel is the topmost-leftmost ink pixel, so its W, NW,
    // N and NE neighbours are background: entering "via W" (dir 0's
    // backtrack) makes the first clockwise scan begin at NW.
    let Some(s0) = step(start, 0) else {
        return vec![start]; // isolated pixel
    };

    // The walk is deterministic in the state (pixel, arrival
    // direction), so the boundary is exactly one period of the state
    // cycle seeded at s0. Emit pixels until the state repeats.
    let mut contour = Vec::new();
    let mut state = s0;
    let max_steps = 4 * bitmap.width() * bitmap.height() + 16;
    for _ in 0..max_steps {
        contour.push(state.0);
        state = step(state.0, state.1).expect("contour pixel has an ink neighbour");
        if state == s0 {
            // Rotate so the scan-order start pixel comes first.
            if let Some(pos) = contour.iter().position(|&p| p == start) {
                contour.rotate_left(pos);
            }
            return contour;
        }
    }
    debug_assert!(false, "boundary tracing failed to terminate");
    contour
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bitmap_from_ascii(art: &str) -> Bitmap {
        let lines: Vec<&str> = art.trim().lines().map(str::trim).collect();
        let h = lines.len();
        let w = lines[0].len();
        let mut b = Bitmap::new(w, h);
        for (y, line) in lines.iter().enumerate() {
            for (x, c) in line.chars().enumerate() {
                if c == '#' {
                    b.set(x as i32, y as i32);
                }
            }
        }
        b
    }

    #[test]
    fn blank_bitmap_gives_empty_contour() {
        let b = Bitmap::new(8, 8);
        assert!(trace_boundary(&b).is_empty());
    }

    #[test]
    fn isolated_pixel_gives_single_point() {
        let mut b = Bitmap::new(8, 8);
        b.set(3, 3);
        assert_eq!(trace_boundary(&b), vec![(3, 3)]);
    }

    #[test]
    fn square_contour_walks_the_perimeter() {
        let b = bitmap_from_ascii(
            "........
             .####...
             .####...
             .####...
             .####...
             ........",
        );
        let c = trace_boundary(&b);
        // 4x4 square: 12 boundary pixels.
        assert_eq!(c.len(), 12, "contour was {c:?}");
        // Starts at topmost-leftmost ink pixel.
        assert_eq!(c[0], (1, 1));
        // All contour pixels are ink and on the border of the square.
        for &(x, y) in &c {
            assert!(b.get(x, y));
            assert!(x == 1 || x == 4 || y == 1 || y == 4);
        }
        // Consecutive pixels are 8-adjacent.
        for w in c.windows(2) {
            let (dx, dy) = (w[1].0 - w[0].0, w[1].1 - w[0].1);
            assert!(dx.abs() <= 1 && dy.abs() <= 1 && (dx, dy) != (0, 0));
        }
    }

    #[test]
    fn line_contour_traverses_both_sides() {
        let b = bitmap_from_ascii(
            ".......
             .#####.
             .......",
        );
        let c = trace_boundary(&b);
        // A 1-px line of length 5: boundary covers each pixel, going
        // right then back left: 2·5 − 2 = 8 entries.
        assert_eq!(c.len(), 8, "contour was {c:?}");
    }

    #[test]
    fn contour_ignores_interior_pixels() {
        let b = bitmap_from_ascii(
            ".....
             .###.
             .###.
             .###.
             .....",
        );
        let c = trace_boundary(&b);
        assert!(!c.contains(&(2, 2)), "interior pixel leaked into contour");
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn traces_first_component_only() {
        let b = bitmap_from_ascii(
            ".......
             .##....
             .##....
             .......
             ....##.
             ....##.",
        );
        let c = trace_boundary(&b);
        assert!(c.iter().all(|&(x, y)| x <= 2 && y <= 2));
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn ring_traces_outer_boundary() {
        let b = bitmap_from_ascii(
            ".......
             .#####.
             .#...#.
             .#...#.
             .#####.
             .......",
        );
        let c = trace_boundary(&b);
        // Outer boundary of the 5x4 ring: every ink pixel is on it.
        assert_eq!(c.len(), 14, "contour was {c:?}");
    }
}
