//! Gene-like DNA sequences (stand-in for the 20 660 Listeria
//! monocytogenes genes).
//!
//! Sequences over `{A, C, G, T}` are drawn from an order-1 Markov
//! chain whose transition matrix has mild nearest-neighbour structure
//! (purine/pyrimidine persistence, ≈38 % GC — in the ballpark of
//! *Listeria*), with lengths from a log-normal law.
//!
//! **Scale substitution (see DESIGN.md):** real gene lengths are
//! 10³–10⁴ bases; the cubic exact algorithm made even the *paper* fall
//! back to the heuristic on this dataset. The default length law here
//! is scaled down (median ≈ 200) so the full experiment sweep stays
//! laptop-scale; all code paths are identical and the histogram /
//! intrinsic-dimensionality *shape* (genes = widest relative spread,
//! lowest ρ) is preserved. Pass a larger [`LengthLaw`] to approach the
//! original scale.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Nucleotide alphabet used by the generator, as bytes.
pub const NUCLEOTIDES: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// Log-normal length law for generated sequences.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LengthLaw {
    /// Median sequence length (the log-normal's `exp(µ)`).
    pub median: f64,
    /// Log-space standard deviation (spread; 0.35–0.5 looks genuinely
    /// gene-like).
    pub sigma: f64,
    /// Hard lower clamp.
    pub min: usize,
    /// Hard upper clamp.
    pub max: usize,
}

impl Default for LengthLaw {
    fn default() -> LengthLaw {
        LengthLaw {
            median: 200.0,
            sigma: 0.45,
            min: 40,
            max: 700,
        }
    }
}

impl LengthLaw {
    /// Sample one length.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        // Box–Muller: two uniforms -> one standard normal.
        let u1: f64 = rng.random::<f64>().max(1e-12);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let len = self.median * (self.sigma * z).exp();
        (len.round() as usize).clamp(self.min, self.max)
    }
}

/// Order-1 Markov transition matrix over `ACGT`, row-stochastic.
///
/// Rows/columns are indexed in [`NUCLEOTIDES`] order. The default has
/// mild self-persistence and a Listeria-like AT bias.
#[derive(Debug, Clone, Copy)]
pub struct TransitionMatrix(pub [[f64; 4]; 4]);

impl Default for TransitionMatrix {
    fn default() -> TransitionMatrix {
        // ~62% AT overall; weak persistence on the diagonal.
        TransitionMatrix([
            // to:   A     C     G     T      from:
            [0.34, 0.17, 0.19, 0.30], // A
            [0.33, 0.20, 0.17, 0.30], // C
            [0.30, 0.19, 0.20, 0.31], // G
            [0.29, 0.18, 0.19, 0.34], // T
        ])
    }
}

impl TransitionMatrix {
    /// Validate row-stochasticity within tolerance.
    pub fn is_stochastic(&self) -> bool {
        self.0.iter().all(|row| {
            (row.iter().sum::<f64>() - 1.0).abs() < 1e-9 && row.iter().all(|&p| p >= 0.0)
        })
    }

    fn step(&self, from: usize, rng: &mut StdRng) -> usize {
        let row = &self.0[from];
        let mut u: f64 = rng.random();
        for (i, &p) in row.iter().enumerate() {
            if u < p {
                return i;
            }
            u -= p;
        }
        3 // numerical slack lands on the last symbol
    }
}

/// Generate `n` gene-like sequences with the default length law and
/// transition matrix.
///
/// ```
/// use cned_datasets::dna::dna_sequences;
/// let genes = dna_sequences(50, 42);
/// assert_eq!(genes.len(), 50);
/// assert!(genes.iter().all(|g| g.iter().all(|b| b"ACGT".contains(b))));
/// assert_eq!(genes, dna_sequences(50, 42)); // deterministic
/// ```
pub fn dna_sequences(n: usize, seed: u64) -> Vec<Vec<u8>> {
    dna_sequences_with(n, seed, LengthLaw::default(), TransitionMatrix::default())
}

/// Generate `n` sequences with explicit length law and transition
/// matrix.
pub fn dna_sequences_with(
    n: usize,
    seed: u64,
    law: LengthLaw,
    matrix: TransitionMatrix,
) -> Vec<Vec<u8>> {
    assert!(
        matrix.is_stochastic(),
        "transition matrix must be row-stochastic"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let len = law.sample(&mut rng);
            let mut seq = Vec::with_capacity(len);
            let mut state = rng.random_range(0..4usize);
            for _ in 0..len {
                seq.push(NUCLEOTIDES[state]);
                state = matrix.step(state, &mut rng);
            }
            seq
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matrix_is_stochastic() {
        assert!(TransitionMatrix::default().is_stochastic());
    }

    #[test]
    fn sequences_use_only_nucleotides() {
        for g in dna_sequences(100, 1) {
            assert!(g.iter().all(|b| NUCLEOTIDES.contains(b)));
        }
    }

    #[test]
    fn lengths_respect_the_law() {
        let law = LengthLaw {
            median: 100.0,
            sigma: 0.3,
            min: 50,
            max: 200,
        };
        let seqs = dna_sequences_with(300, 2, law, TransitionMatrix::default());
        for s in &seqs {
            assert!((50..=200).contains(&s.len()));
        }
        let mean: f64 = seqs.iter().map(|s| s.len() as f64).sum::<f64>() / seqs.len() as f64;
        assert!((80.0..=130.0).contains(&mean), "mean length {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(dna_sequences(20, 9), dna_sequences(20, 9));
        assert_ne!(dna_sequences(20, 9), dna_sequences(20, 10));
    }

    #[test]
    fn at_bias_roughly_holds() {
        let seqs = dna_sequences(100, 5);
        let (mut at, mut total) = (0usize, 0usize);
        for s in &seqs {
            for &b in s {
                if b == b'A' || b == b'T' {
                    at += 1;
                }
                total += 1;
            }
        }
        let frac = at as f64 / total as f64;
        assert!(
            (0.52..=0.72).contains(&frac),
            "AT fraction {frac} outside Listeria-like band"
        );
    }

    #[test]
    fn length_law_sampling_is_clamped() {
        let law = LengthLaw {
            median: 10.0,
            sigma: 3.0, // huge spread to stress the clamps
            min: 5,
            max: 50,
        };
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let l = law.sample(&mut rng);
            assert!((5..=50).contains(&l));
        }
    }

    #[test]
    #[should_panic(expected = "row-stochastic")]
    fn non_stochastic_matrix_rejected() {
        let bad = TransitionMatrix([[0.5; 4]; 4]);
        dna_sequences_with(1, 0, LengthLaw::default(), bad);
    }
}
