//! Query generation by perturbation — the `genqueries` equivalent.
//!
//! The paper builds dictionary test queries "using the program
//! `genqueries` … with a perturbation of two operations over the
//! training dataset" (§4.3): take a training string and apply a fixed
//! number of uniformly random edit operations (insert / delete /
//! substitute at random positions, symbols drawn from a given
//! alphabet).

use cned_core::ops::EditOp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Apply `ops` uniformly random edit operations to `word`.
///
/// Operation kinds are drawn uniformly from {insert, delete,
/// substitute}; deletions/substitutions on an empty string fall back
/// to insertion. Inserted/substituted symbols come from `alphabet`.
pub fn perturb(word: &[u8], ops: usize, alphabet: &[u8], rng: &mut StdRng) -> Vec<u8> {
    assert!(!alphabet.is_empty(), "alphabet must be non-empty");
    let mut cur = word.to_vec();
    for _ in 0..ops {
        let kind = rng.random_range(0..3u8);
        let op = if kind == 0 || cur.is_empty() {
            EditOp::Insert {
                pos: rng.random_range(0..=cur.len()),
                sym: alphabet[rng.random_range(0..alphabet.len())],
            }
        } else if kind == 1 {
            EditOp::Delete {
                pos: rng.random_range(0..cur.len()),
            }
        } else {
            EditOp::Substitute {
                pos: rng.random_range(0..cur.len()),
                sym: alphabet[rng.random_range(0..alphabet.len())],
            }
        };
        cur = op.apply(&cur);
    }
    cur
}

/// Generate `n` queries by perturbing strings sampled (with
/// replacement) from `training`, each with `ops` random operations.
/// Deterministic in `seed`.
pub fn gen_queries(
    training: &[Vec<u8>],
    n: usize,
    ops: usize,
    alphabet: &[u8],
    seed: u64,
) -> Vec<Vec<u8>> {
    assert!(!training.is_empty(), "training set must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let base = &training[rng.random_range(0..training.len())];
            perturb(base, ops, alphabet, &mut rng)
        })
        .collect()
}

/// The lowercase ASCII alphabet used for dictionary perturbations.
pub const ASCII_LOWER: &[u8] = b"abcdefghijklmnopqrstuvwxyz";

#[cfg(test)]
mod tests {
    use super::*;
    use cned_core::levenshtein::levenshtein;

    #[test]
    fn zero_ops_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(perturb(b"palabra", 0, ASCII_LOWER, &mut rng), b"palabra");
    }

    #[test]
    fn perturbed_distance_is_bounded_by_ops() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let q = perturb(b"diccionario", 2, ASCII_LOWER, &mut rng);
            assert!(levenshtein(b"diccionario", &q) <= 2);
        }
    }

    #[test]
    fn perturbation_usually_changes_the_string() {
        let mut rng = StdRng::seed_from_u64(2);
        let changed = (0..100)
            .filter(|_| perturb(b"palabra", 2, ASCII_LOWER, &mut rng) != b"palabra")
            .count();
        assert!(
            changed > 80,
            "only {changed}/100 perturbations changed the word"
        );
    }

    #[test]
    fn empty_string_perturbation_inserts() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let q = perturb(b"", 2, ASCII_LOWER, &mut rng);
            assert!(q.len() <= 2);
        }
    }

    #[test]
    fn gen_queries_deterministic_and_sized() {
        let training: Vec<Vec<u8>> = vec![b"uno".to_vec(), b"dos".to_vec(), b"tres".to_vec()];
        let q1 = gen_queries(&training, 50, 2, ASCII_LOWER, 9);
        let q2 = gen_queries(&training, 50, 2, ASCII_LOWER, 9);
        assert_eq!(q1, q2);
        assert_eq!(q1.len(), 50);
    }

    #[test]
    fn queries_stay_near_training_set() {
        let training: Vec<Vec<u8>> = vec![b"palabra".to_vec(), b"contexto".to_vec()];
        for q in gen_queries(&training, 30, 2, ASCII_LOWER, 4) {
            let dmin = training.iter().map(|t| levenshtein(t, &q)).min().unwrap();
            assert!(dmin <= 2, "query {q:?} drifted {dmin} ops away");
        }
    }

    #[test]
    #[should_panic(expected = "alphabet")]
    fn empty_alphabet_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        perturb(b"x", 1, &[], &mut rng);
    }
}
