//! Freeman chain codes: contour pixel sequences → strings over an
//! 8-symbol alphabet.
//!
//! The NIST contour-string representation encodes each step between
//! consecutive boundary pixels as one of 8 directions. We use the
//! standard Freeman convention (with image `y` growing downwards):
//!
//! ```text
//!   3  2  1
//!   4  ·  0        0 = East, 2 = North, 4 = West, 6 = South
//!   5  6  7
//! ```
//!
//! The closed contour of `n` pixels yields a chain string of length
//! `n` (the last symbol closes the loop back to the start pixel).
//! Chain strings are the inputs to every digit experiment: an
//! 8-symbol alphabet with length ≈ glyph perimeter.

/// Number of Freeman directions.
pub const DIRECTIONS: usize = 8;

/// Map a unit step `(dx, dy)` (`y` downwards) to its Freeman code.
///
/// Returns `None` for non-unit steps (including `(0, 0)`).
pub fn freeman_direction(dx: i32, dy: i32) -> Option<u8> {
    match (dx, dy) {
        (1, 0) => Some(0),
        (1, -1) => Some(1),
        (0, -1) => Some(2),
        (-1, -1) => Some(3),
        (-1, 0) => Some(4),
        (-1, 1) => Some(5),
        (0, 1) => Some(6),
        (1, 1) => Some(7),
        _ => None,
    }
}

/// The inverse of [`freeman_direction`].
pub fn freeman_step(code: u8) -> (i32, i32) {
    match code {
        0 => (1, 0),
        1 => (1, -1),
        2 => (0, -1),
        3 => (-1, -1),
        4 => (-1, 0),
        5 => (-1, 1),
        6 => (0, 1),
        7 => (1, 1),
        _ => panic!("invalid Freeman code {code}"),
    }
}

/// Encode a **closed** contour (as produced by
/// [`crate::contour::trace_boundary`]) into its Freeman chain string.
///
/// Contours with fewer than 2 pixels produce an empty chain.
///
/// # Panics
/// Panics if consecutive contour pixels are not 8-adjacent.
pub fn chain_code(contour: &[(i32, i32)]) -> Vec<u8> {
    if contour.len() < 2 {
        return Vec::new();
    }
    let mut chain = Vec::with_capacity(contour.len());
    for w in contour.windows(2) {
        let (dx, dy) = (w[1].0 - w[0].0, w[1].1 - w[0].1);
        chain.push(
            freeman_direction(dx, dy)
                .unwrap_or_else(|| panic!("non-adjacent contour pixels {:?} -> {:?}", w[0], w[1])),
        );
    }
    // Closing step back to the start pixel.
    let first = contour[0];
    let last = contour[contour.len() - 1];
    let (dx, dy) = (first.0 - last.0, first.1 - last.1);
    chain.push(
        freeman_direction(dx, dy)
            .unwrap_or_else(|| panic!("contour does not close: {last:?} -> {first:?}")),
    );
    chain
}

/// Replay a chain string from `start`, returning the visited pixels —
/// the inverse of [`chain_code`], used by tests to verify round-trips.
pub fn replay_chain(start: (i32, i32), chain: &[u8]) -> Vec<(i32, i32)> {
    let mut pts = Vec::with_capacity(chain.len() + 1);
    let mut cur = start;
    pts.push(cur);
    for &c in chain {
        let (dx, dy) = freeman_step(c);
        cur = (cur.0 + dx, cur.1 + dy);
        pts.push(cur);
    }
    pts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_and_step_are_inverse() {
        for code in 0..8u8 {
            let (dx, dy) = freeman_step(code);
            assert_eq!(freeman_direction(dx, dy), Some(code));
        }
    }

    #[test]
    fn non_unit_steps_rejected() {
        assert_eq!(freeman_direction(0, 0), None);
        assert_eq!(freeman_direction(2, 0), None);
        assert_eq!(freeman_direction(-1, 2), None);
    }

    #[test]
    fn square_contour_chain() {
        // Clockwise unit square (y down): E, S, W, N.
        let contour = [(0, 0), (1, 0), (1, 1), (0, 1)];
        assert_eq!(chain_code(&contour), vec![0, 6, 4, 2]);
    }

    #[test]
    fn chain_replays_to_original_contour() {
        let contour = [(2, 3), (3, 3), (4, 4), (4, 5), (3, 6), (2, 5), (2, 4)];
        let chain = chain_code(&contour);
        let replay = replay_chain(contour[0], &chain);
        // Replay revisits every contour pixel and returns to start.
        assert_eq!(&replay[..contour.len()], &contour[..]);
        assert_eq!(*replay.last().unwrap(), contour[0]);
    }

    #[test]
    fn closed_chain_displacement_is_zero() {
        let contour = [(0, 0), (1, 0), (2, 1), (1, 2), (0, 1)];
        let chain = chain_code(&contour);
        let (mut x, mut y) = (0i32, 0i32);
        for &c in &chain {
            let (dx, dy) = freeman_step(c);
            x += dx;
            y += dy;
        }
        assert_eq!((x, y), (0, 0));
    }

    #[test]
    fn tiny_contours_give_empty_chain() {
        assert!(chain_code(&[]).is_empty());
        assert!(chain_code(&[(3, 3)]).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-adjacent")]
    fn gaps_panic() {
        chain_code(&[(0, 0), (5, 5), (0, 0)]);
    }
}
