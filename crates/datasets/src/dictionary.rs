//! Spanish-like dictionary words (stand-in for the SISAP Spanish
//! dictionary, 86 062 words).
//!
//! A character-bigram Markov model is trained on an embedded lexicon
//! of real Spanish words (with start/end markers), then sampled to the
//! requested dictionary size. The generated vocabulary matches the
//! seed lexicon's length distribution (mean ≈ 8–9 characters) and
//! bigram statistics, which is what drives edit-distance histograms
//! and nearest-neighbour behaviour on a natural-language word list.
//! Diacritics are folded to ASCII so the alphabet is `a..=z` + `ñ→n`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Embedded seed lexicon: common Spanish words (diacritics folded).
/// Training data for the bigram model *and* the first entries of every
/// generated dictionary.
pub const SEED_LEXICON: &[&str] = &[
    "casa",
    "perro",
    "gato",
    "mesa",
    "silla",
    "ventana",
    "puerta",
    "libro",
    "papel",
    "ciudad",
    "campo",
    "montana",
    "playa",
    "coche",
    "camion",
    "bicicleta",
    "tren",
    "avion",
    "barco",
    "agua",
    "fuego",
    "tierra",
    "viento",
    "tiempo",
    "momento",
    "historia",
    "palabra",
    "frase",
    "idioma",
    "lengua",
    "persona",
    "hombre",
    "mujer",
    "nino",
    "nina",
    "familia",
    "padre",
    "madre",
    "hermano",
    "hermana",
    "abuelo",
    "abuela",
    "amigo",
    "amiga",
    "trabajo",
    "oficina",
    "escuela",
    "universidad",
    "estudiante",
    "profesor",
    "maestro",
    "medico",
    "enfermera",
    "abogado",
    "ingeniero",
    "musica",
    "cancion",
    "baile",
    "pintura",
    "cuadro",
    "museo",
    "teatro",
    "cine",
    "pelicula",
    "television",
    "radio",
    "periodico",
    "revista",
    "noticia",
    "mercado",
    "tienda",
    "restaurante",
    "comida",
    "desayuno",
    "almuerzo",
    "cena",
    "pan",
    "leche",
    "queso",
    "huevo",
    "carne",
    "pescado",
    "pollo",
    "arroz",
    "frijoles",
    "verdura",
    "fruta",
    "manzana",
    "naranja",
    "platano",
    "uva",
    "fresa",
    "limon",
    "tomate",
    "cebolla",
    "papa",
    "zanahoria",
    "azucar",
    "sal",
    "pimienta",
    "aceite",
    "vinagre",
    "vino",
    "cerveza",
    "cafe",
    "te",
    "jugo",
    "refresco",
    "hielo",
    "cocina",
    "comedor",
    "dormitorio",
    "bano",
    "jardin",
    "garaje",
    "techo",
    "pared",
    "suelo",
    "escalera",
    "ascensor",
    "edificio",
    "apartamento",
    "calle",
    "avenida",
    "plaza",
    "parque",
    "puente",
    "camino",
    "carretera",
    "semaforo",
    "esquina",
    "barrio",
    "pueblo",
    "pais",
    "mundo",
    "continente",
    "oceano",
    "rio",
    "lago",
    "isla",
    "bosque",
    "selva",
    "desierto",
    "nieve",
    "lluvia",
    "tormenta",
    "nube",
    "sol",
    "luna",
    "estrella",
    "cielo",
    "amanecer",
    "atardecer",
    "noche",
    "dia",
    "semana",
    "mes",
    "ano",
    "siglo",
    "hora",
    "minuto",
    "segundo",
    "reloj",
    "calendario",
    "fecha",
    "cumpleanos",
    "fiesta",
    "regalo",
    "sorpresa",
    "alegria",
    "tristeza",
    "miedo",
    "esperanza",
    "amor",
    "odio",
    "paz",
    "guerra",
    "libertad",
    "justicia",
    "verdad",
    "mentira",
    "pregunta",
    "respuesta",
    "problema",
    "solucion",
    "idea",
    "pensamiento",
    "memoria",
    "recuerdo",
    "sueno",
    "realidad",
    "futuro",
    "pasado",
    "presente",
    "principio",
    "final",
    "centro",
    "lado",
    "arriba",
    "abajo",
    "dentro",
    "fuera",
    "cerca",
    "lejos",
    "grande",
    "pequeno",
    "alto",
    "bajo",
    "largo",
    "corto",
    "ancho",
    "estrecho",
    "gordo",
    "delgado",
    "fuerte",
    "debil",
    "rapido",
    "lento",
    "nuevo",
    "viejo",
    "joven",
    "antiguo",
    "moderno",
    "facil",
    "dificil",
    "posible",
    "imposible",
    "importante",
    "necesario",
    "suficiente",
    "demasiado",
    "bastante",
    "poco",
    "mucho",
    "todo",
    "nada",
    "algo",
    "alguien",
    "nadie",
    "siempre",
    "nunca",
    "ahora",
    "luego",
    "despues",
    "antes",
    "durante",
    "mientras",
    "cuando",
    "donde",
    "como",
    "porque",
    "aunque",
    "entonces",
    "tambien",
    "tampoco",
    "quizas",
    "claro",
    "exacto",
    "correcto",
    "equivocado",
    "verdadero",
    "falso",
    "bueno",
    "malo",
    "mejor",
    "peor",
    "primero",
    "ultimo",
    "siguiente",
    "anterior",
    "caballo",
    "vaca",
    "toro",
    "oveja",
    "cabra",
    "cerdo",
    "gallina",
    "pato",
    "pajaro",
    "aguila",
    "paloma",
    "raton",
    "conejo",
    "ardilla",
    "lobo",
    "zorro",
    "oso",
    "leon",
    "tigre",
    "elefante",
    "jirafa",
    "mono",
    "serpiente",
    "tortuga",
    "rana",
    "pez",
    "tiburon",
    "ballena",
    "delfin",
    "pulpo",
    "cangrejo",
    "abeja",
    "mariposa",
    "hormiga",
    "arana",
    "mosca",
    "mosquito",
    "caminar",
    "correr",
    "saltar",
    "nadar",
    "volar",
    "subir",
    "bajar",
    "entrar",
    "salir",
    "llegar",
    "partir",
    "viajar",
    "conducir",
    "parar",
    "esperar",
    "buscar",
    "encontrar",
    "perder",
    "ganar",
    "comprar",
    "vender",
    "pagar",
    "costar",
    "deber",
    "prestar",
    "devolver",
    "dar",
    "recibir",
    "tomar",
    "dejar",
    "poner",
    "quitar",
    "abrir",
    "cerrar",
    "empezar",
    "terminar",
    "seguir",
    "cambiar",
    "mejorar",
    "empeorar",
    "crecer",
    "nacer",
    "vivir",
    "morir",
    "comer",
    "beber",
    "cocinar",
    "probar",
    "dormir",
    "despertar",
    "levantar",
    "sentar",
    "acostar",
    "banar",
    "duchar",
    "vestir",
    "lavar",
    "limpiar",
    "ordenar",
    "romper",
    "arreglar",
    "construir",
    "destruir",
    "crear",
    "inventar",
    "descubrir",
    "aprender",
    "ensenar",
    "estudiar",
    "leer",
    "escribir",
    "contar",
    "hablar",
    "decir",
    "preguntar",
    "responder",
    "escuchar",
    "oir",
    "mirar",
    "ver",
    "observar",
    "mostrar",
    "explicar",
    "entender",
    "comprender",
    "saber",
    "conocer",
    "pensar",
    "creer",
    "recordar",
    "olvidar",
    "imaginar",
    "sonar",
    "querer",
    "desear",
    "necesitar",
    "poder",
    "intentar",
    "lograr",
    "conseguir",
    "ayudar",
    "servir",
    "cuidar",
    "proteger",
    "defender",
    "atacar",
    "luchar",
    "jugar",
    "cantar",
    "bailar",
    "tocar",
    "pintar",
    "dibujar",
    "cortar",
    "pegar",
    "coser",
    "tejer",
    "plantar",
    "regar",
    "cosechar",
    "cazar",
    "pescar",
    "trabajador",
    "panaderia",
    "carniceria",
    "farmacia",
    "hospital",
    "biblioteca",
    "iglesia",
    "catedral",
    "castillo",
    "palacio",
    "torre",
    "muralla",
    "fuente",
    "estatua",
    "monumento",
    "bandera",
    "himno",
    "gobierno",
    "presidente",
    "ministro",
    "alcalde",
    "policia",
    "bombero",
    "soldado",
    "ejercito",
    "batalla",
    "victoria",
    "derrota",
    "campeon",
    "equipo",
    "partido",
    "pelota",
    "porteria",
    "cancha",
    "estadio",
    "carrera",
    "meta",
    "premio",
    "medalla",
    "zapato",
    "calcetin",
    "pantalon",
    "camisa",
    "chaqueta",
    "abrigo",
    "bufanda",
    "guante",
    "sombrero",
    "gorra",
    "vestido",
    "falda",
    "cinturon",
    "bolsillo",
    "boton",
    "corbata",
];

/// A character-bigram Markov model over word characters with explicit
/// start/end states.
#[derive(Debug, Clone)]
pub struct MarkovWordModel {
    /// 28 states: 26 letters + start marker; state 27 is "end".
    /// `counts[ctx0][ctx1][next]` over a compact alphabet.
    counts: Vec<u32>,
    /// Cumulative tables derived from `counts`, built lazily at train
    /// time for O(log k) sampling.
    cumulative: Vec<Vec<(u32, u8)>>,
    min_len: usize,
    max_len: usize,
}

const ALPHA: usize = 26; // a..=z
const START: usize = ALPHA; // virtual start-of-word symbol
const END: u8 = ALPHA as u8 + 1; // virtual end-of-word symbol
const STATES: usize = ALPHA + 1;
const OUTCOMES: usize = ALPHA + 2;

fn char_index(c: u8) -> usize {
    debug_assert!(c.is_ascii_lowercase());
    (c - b'a') as usize
}

impl MarkovWordModel {
    /// Train a bigram model from `lexicon` (ASCII lowercase words;
    /// other bytes are skipped).
    pub fn train(lexicon: &[&str]) -> MarkovWordModel {
        let mut counts = vec![0u32; STATES * STATES * OUTCOMES];
        let mut min_len = usize::MAX;
        let mut max_len = 0usize;
        for word in lexicon {
            let bytes: Vec<u8> = word.bytes().filter(u8::is_ascii_lowercase).collect();
            if bytes.is_empty() {
                continue;
            }
            min_len = min_len.min(bytes.len());
            max_len = max_len.max(bytes.len());
            let mut ctx = (START, START);
            for &b in &bytes {
                let n = char_index(b);
                counts[(ctx.0 * STATES + ctx.1) * OUTCOMES + n] += 1;
                ctx = (ctx.1, n);
            }
            counts[(ctx.0 * STATES + ctx.1) * OUTCOMES + END as usize] += 1;
        }
        // Build cumulative sampling tables per context.
        let mut cumulative = Vec::with_capacity(STATES * STATES);
        for ctx in 0..STATES * STATES {
            let slice = &counts[ctx * OUTCOMES..(ctx + 1) * OUTCOMES];
            let mut acc = 0u32;
            let mut table = Vec::new();
            for (sym, &c) in slice.iter().enumerate() {
                if c > 0 {
                    acc += c;
                    table.push((acc, sym as u8));
                }
            }
            cumulative.push(table);
        }
        MarkovWordModel {
            counts,
            cumulative,
            min_len: min_len.min(2),
            max_len: max_len.max(4),
        }
    }

    /// Sample one word. Length is clamped to the lexicon's observed
    /// range (re-rolling the end decision when too short, forcing an
    /// end when too long and the context has no escape).
    pub fn generate(&self, rng: &mut StdRng) -> Vec<u8> {
        loop {
            if let Some(w) = self.try_generate(rng) {
                return w;
            }
        }
    }

    fn try_generate(&self, rng: &mut StdRng) -> Option<Vec<u8>> {
        let mut word = Vec::with_capacity(12);
        let mut ctx = (START, START);
        loop {
            let table = &self.cumulative[ctx.0 * STATES + ctx.1];
            if table.is_empty() {
                return None; // dead-end context (shouldn't happen after training)
            }
            let total = table.last().expect("non-empty").0;
            let mut pick = rng.random_range(0..total);
            // Re-draw end decisions outside the allowed length band.
            let sym = loop {
                let idx = table.partition_point(|&(acc, _)| acc <= pick);
                let (_, sym) = table[idx];
                if sym == END && word.len() < self.min_len && table.len() > 1 {
                    pick = rng.random_range(0..total);
                    continue;
                }
                break sym;
            };
            if sym == END {
                return Some(word);
            }
            word.push(b'a' + sym);
            if word.len() >= self.max_len {
                return Some(word);
            }
            ctx = (ctx.1, sym as usize);
        }
    }

    /// Raw transition count for tests/diagnostics.
    pub fn count(&self, ctx: (usize, usize), next: usize) -> u32 {
        self.counts[(ctx.0 * STATES + ctx.1) * OUTCOMES + next]
    }
}

/// Generate a deterministic Spanish-like dictionary of `n` distinct
/// words (as byte strings). The first entries are the embedded seed
/// lexicon itself (up to `n`); the rest are Markov samples, de-duped.
///
/// ```
/// use cned_datasets::dictionary::spanish_dictionary;
/// let dict = spanish_dictionary(500, 42);
/// assert_eq!(dict.len(), 500);
/// assert!(dict.iter().all(|w| !w.is_empty()));
/// // Deterministic:
/// assert_eq!(dict, spanish_dictionary(500, 42));
/// ```
pub fn spanish_dictionary(n: usize, seed: u64) -> Vec<Vec<u8>> {
    let model = MarkovWordModel::train(SEED_LEXICON);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: HashSet<Vec<u8>> = HashSet::with_capacity(n * 2);
    let mut out: Vec<Vec<u8>> = Vec::with_capacity(n);
    for w in SEED_LEXICON.iter().take(n) {
        let bytes = w.as_bytes().to_vec();
        if seen.insert(bytes.clone()) {
            out.push(bytes);
        }
    }
    while out.len() < n {
        let w = model.generate(&mut rng);
        if seen.insert(w.clone()) {
            out.push(w);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_lexicon_is_clean_ascii_lowercase() {
        for w in SEED_LEXICON {
            assert!(!w.is_empty());
            assert!(
                w.bytes().all(|b| b.is_ascii_lowercase()),
                "non-lowercase word {w}"
            );
        }
    }

    #[test]
    fn seed_lexicon_has_no_duplicates() {
        let mut set = HashSet::new();
        for w in SEED_LEXICON {
            assert!(set.insert(*w), "duplicate seed word {w}");
        }
    }

    #[test]
    fn model_counts_reflect_training_data() {
        let model = MarkovWordModel::train(&["casa"]);
        // (START, START) -> 'c'
        assert_eq!(model.count((START, START), char_index(b'c')), 1);
        // ('c','a') -> 's'
        assert_eq!(
            model.count((char_index(b'c'), char_index(b'a')), char_index(b's')),
            1
        );
        // ('s','a') -> END
        assert_eq!(
            model.count((char_index(b's'), char_index(b'a')), END as usize),
            1
        );
    }

    #[test]
    fn generated_words_are_lowercase_and_bounded() {
        let model = MarkovWordModel::train(SEED_LEXICON);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let w = model.generate(&mut rng);
            assert!(!w.is_empty());
            assert!(w.len() <= model.max_len);
            assert!(w.iter().all(u8::is_ascii_lowercase));
        }
    }

    #[test]
    fn dictionary_is_deterministic_distinct_and_sized() {
        let d1 = spanish_dictionary(800, 7);
        let d2 = spanish_dictionary(800, 7);
        assert_eq!(d1, d2);
        assert_eq!(d1.len(), 800);
        let set: HashSet<_> = d1.iter().collect();
        assert_eq!(set.len(), 800, "words must be distinct");
    }

    #[test]
    fn different_seeds_differ_beyond_the_lexicon() {
        let d1 = spanish_dictionary(600, 1);
        let d2 = spanish_dictionary(600, 2);
        assert_ne!(d1, d2);
        // But both start with the seed lexicon.
        assert_eq!(d1[0], SEED_LEXICON[0].as_bytes());
        assert_eq!(d2[0], SEED_LEXICON[0].as_bytes());
    }

    #[test]
    fn length_distribution_resembles_spanish() {
        let d = spanish_dictionary(2000, 3);
        let mean: f64 = d.iter().map(|w| w.len() as f64).sum::<f64>() / d.len() as f64;
        assert!(
            (4.0..=12.0).contains(&mean),
            "mean word length {mean} outside plausible Spanish range"
        );
    }

    #[test]
    fn small_request_returns_lexicon_prefix() {
        let d = spanish_dictionary(10, 0);
        for (i, w) in d.iter().enumerate() {
            assert_eq!(w, SEED_LEXICON[i].as_bytes());
        }
    }
}
