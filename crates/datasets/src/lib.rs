//! # cned-datasets
//!
//! Synthetic stand-ins for the three benchmarks of the paper's
//! Section 4. The originals (SISAP Spanish dictionary, Listeria
//! monocytogenes genes, NIST SD3 digit contours) are external
//! downloads; every experiment here instead consumes generators that
//! reproduce the *string statistics* the experiments actually depend
//! on — length laws, alphabet sizes, n-gram structure, and class
//! structure. The substitutions are documented per-dataset in
//! `DESIGN.md`.
//!
//! * [`dictionary`] — Spanish-like words from a character-bigram
//!   Markov model trained on an embedded lexicon of real Spanish words
//!   (dataset 1: "A Spanish dictionary with 86062 words").
//! * [`dna`] — gene-like nucleotide sequences from an order-1 Markov
//!   chain with a log-normal length law (dataset 2: "20,660 DNA
//!   sequences of genes of Listeria monocytogenes").
//! * [`digits`] + [`raster`] + [`contour`] + [`chain`] — a full
//!   synthetic handwriting pipeline: per-class stroke templates →
//!   random affine "writer" jitter → rasterised bitmap → Moore
//!   boundary tracing → 8-direction Freeman chain code (dataset 3:
//!   "contour strings of handwritten digits from NIST SPECIAL
//!   DATABASE 3"; the paper stresses "no preprocessing of the digits:
//!   orientation and sizes are widely different from scribe to
//!   scribe", which the jitter reproduces).
//! * [`mod@perturb`] — the `genqueries` equivalent: test queries made by
//!   applying a fixed number of random edit operations to training
//!   strings ("a perturbation of two operations over the training
//!   dataset", §4.3).
//!
//! All generators are deterministic given a seed (`StdRng`), so every
//! experiment and test is reproducible.

// No unsafe here, enforced at compile time (and by cned-lint).
#![forbid(unsafe_code)]

pub mod chain;
pub mod contour;
pub mod dictionary;
pub mod digits;
pub mod dna;
pub mod perturb;
pub mod raster;

pub use dictionary::spanish_dictionary;
pub use digits::{generate_digits, DigitSample};
pub use dna::dna_sequences;
pub use perturb::perturb;
