//! Tiny binary rasteriser for the synthetic handwriting pipeline.
//!
//! Digit glyphs are defined as polylines and ellipse arcs in the unit
//! square; this module renders them onto a binary [`Bitmap`] with a
//! configurable stroke radius, after an affine "writer jitter"
//! transform. No external imaging dependency — the experiments only
//! need a boolean grid good enough for boundary tracing.

/// A binary image, row-major, `true` = ink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    width: usize,
    height: usize,
    pixels: Vec<bool>,
}

impl Bitmap {
    /// A blank `width × height` bitmap.
    pub fn new(width: usize, height: usize) -> Bitmap {
        assert!(width > 0 && height > 0, "bitmap must be non-empty");
        Bitmap {
            width,
            height,
            pixels: vec![false; width * height],
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel accessor; out-of-bounds reads are background.
    #[inline]
    pub fn get(&self, x: i32, y: i32) -> bool {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            false
        } else {
            self.pixels[y as usize * self.width + x as usize]
        }
    }

    /// Set a pixel; out-of-bounds writes are ignored (strokes may
    /// jitter past the canvas edge).
    #[inline]
    pub fn set(&mut self, x: i32, y: i32) {
        if x >= 0 && y >= 0 && (x as usize) < self.width && (y as usize) < self.height {
            self.pixels[y as usize * self.width + x as usize] = true;
        }
    }

    /// Number of ink pixels.
    pub fn ink(&self) -> usize {
        self.pixels.iter().filter(|&&p| p).count()
    }

    /// Stamp a filled disc of radius `r` (in pixels) at `(cx, cy)`.
    pub fn stamp(&mut self, cx: f64, cy: f64, r: f64) {
        let r_ceil = r.ceil() as i32;
        let (icx, icy) = (cx.round() as i32, cy.round() as i32);
        for dy in -r_ceil..=r_ceil {
            for dx in -r_ceil..=r_ceil {
                let (fx, fy) = (icx + dx, icy + dy);
                let (ddx, ddy) = (fx as f64 - cx, fy as f64 - cy);
                if ddx * ddx + ddy * ddy <= r * r {
                    self.set(fx, fy);
                }
            }
        }
    }

    /// Draw a stroked line segment from `(x0, y0)` to `(x1, y1)`
    /// (pixel coordinates) with stroke radius `r`, by stamping discs
    /// at sub-pixel steps.
    pub fn line(&mut self, x0: f64, y0: f64, x1: f64, y1: f64, r: f64) {
        let len = ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt();
        let steps = (len * 2.0).ceil().max(1.0) as usize;
        for i in 0..=steps {
            let t = i as f64 / steps as f64;
            self.stamp(x0 + (x1 - x0) * t, y0 + (y1 - y0) * t, r);
        }
    }

    /// ASCII-art dump for debugging and doc examples ('#' = ink).
    pub fn to_ascii(&self) -> String {
        let mut s = String::with_capacity((self.width + 1) * self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                s.push(if self.pixels[y * self.width + x] {
                    '#'
                } else {
                    '.'
                });
            }
            s.push('\n');
        }
        s
    }
}

/// An affine transform of the unit square into pixel coordinates,
/// encoding the "writer jitter" (scale, rotation, shear, translation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Affine {
    /// Matrix `[[a, b], [c, d]]` applied before translation.
    pub a: f64,
    /// Matrix entry (row 0, col 1).
    pub b: f64,
    /// Matrix entry (row 1, col 0).
    pub c: f64,
    /// Matrix entry (row 1, col 1).
    pub d: f64,
    /// Translation x.
    pub tx: f64,
    /// Translation y.
    pub ty: f64,
}

impl Affine {
    /// Identity scaled to a `size × size` canvas with a small margin.
    pub fn canvas(size: usize) -> Affine {
        let s = size as f64 * 0.8;
        let m = size as f64 * 0.1;
        Affine {
            a: s,
            b: 0.0,
            c: 0.0,
            d: s,
            tx: m,
            ty: m,
        }
    }

    /// Compose writer jitter on top of `self`: rotation `theta`
    /// (radians), anisotropic scale `(sx, sy)`, shear `sh` and
    /// translation `(dx, dy)` in pixels — applied about the canvas
    /// centre so glyphs stay roughly on-canvas.
    pub fn jittered(self, theta: f64, sx: f64, sy: f64, sh: f64, dx: f64, dy: f64) -> Affine {
        // J = R(theta) · Shear(sh) · Scale(sx, sy):
        //   Shear·Scale = [[sx, sh·sy], [0, sy]]
        let (sin, cos) = theta.sin_cos();
        let (ja, jb) = (cos * sx, cos * sh * sy - sin * sy);
        let (jc, jd) = (sin * sx, sin * sh * sy + cos * sy);
        // New transform: p -> base(J·(p − c) + c) + (dx, dy), with the
        // glyph centre c = (0.5, 0.5) in unit space. Matrix = B·J;
        // translation = B·(c − J·c) + t_base + (dx, dy).
        let (cx, cy) = (0.5f64, 0.5f64);
        let (rx, ry) = (cx - (ja * cx + jb * cy), cy - (jc * cx + jd * cy));
        Affine {
            a: self.a * ja + self.b * jc,
            b: self.a * jb + self.b * jd,
            c: self.c * ja + self.d * jc,
            d: self.c * jb + self.d * jd,
            tx: self.a * rx + self.b * ry + self.tx + dx,
            ty: self.c * rx + self.d * ry + self.ty + dy,
        }
    }

    /// Map a unit-square point to pixel coordinates.
    #[inline]
    pub fn apply(&self, x: f64, y: f64) -> (f64, f64) {
        (
            self.a * x + self.b * y + self.tx,
            self.c * x + self.d * y + self.ty,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_bitmap_has_no_ink() {
        let b = Bitmap::new(8, 8);
        assert_eq!(b.ink(), 0);
        assert!(!b.get(3, 3));
        assert!(!b.get(-1, 0));
        assert!(!b.get(100, 0));
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut b = Bitmap::new(8, 8);
        b.set(2, 5);
        assert!(b.get(2, 5));
        // Out of bounds is silently ignored.
        b.set(-1, -1);
        b.set(99, 99);
        assert_eq!(b.ink(), 1);
    }

    #[test]
    fn stamp_covers_a_disc() {
        let mut b = Bitmap::new(16, 16);
        b.stamp(8.0, 8.0, 2.0);
        assert!(b.get(8, 8));
        assert!(b.get(10, 8));
        assert!(b.get(8, 6));
        assert!(!b.get(11, 11)); // outside radius 2
        assert!(b.ink() >= 9);
    }

    #[test]
    fn line_connects_endpoints() {
        let mut b = Bitmap::new(32, 32);
        b.line(2.0, 2.0, 29.0, 29.0, 1.0);
        assert!(b.get(2, 2));
        assert!(b.get(29, 29));
        assert!(b.get(15, 15) || b.get(16, 16));
    }

    #[test]
    fn canvas_affine_keeps_unit_square_inside() {
        let t = Affine::canvas(32);
        for &(x, y) in &[(0.0, 0.0), (1.0, 1.0), (0.5, 0.5), (1.0, 0.0)] {
            let (px, py) = t.apply(x, y);
            assert!((0.0..32.0).contains(&px), "px {px}");
            assert!((0.0..32.0).contains(&py), "py {py}");
        }
    }

    #[test]
    fn jitter_identity_is_near_base() {
        let base = Affine::canvas(32);
        let j = base.jittered(0.0, 1.0, 1.0, 0.0, 0.0, 0.0);
        for &(x, y) in &[(0.0, 0.0), (1.0, 1.0), (0.3, 0.7)] {
            let (bx, by) = base.apply(x, y);
            let (jx, jy) = j.apply(x, y);
            assert!((bx - jx).abs() < 1e-9 && (by - jy).abs() < 1e-9);
        }
    }

    #[test]
    fn ascii_dump_dimensions() {
        let mut b = Bitmap::new(4, 2);
        b.set(0, 0);
        let art = b.to_ascii();
        assert_eq!(art.lines().count(), 2);
        assert!(art.starts_with('#'));
    }
}
