//! Wire-schema exhaustiveness: every [`SearchError`] variant and
//! every frame-kind constant must round-trip through the binary
//! protocol, and *only* those — a new variant or kind that is added
//! without extending the codec (and bumping the version / blessing
//! the `cned-lint` fingerprint) fails here, not in production.

use cned_search::SearchError;
use cned_serve::session::{RequestId, Response, ResponseBody};
use cned_serve::wire::{
    self, decode_request_frame, decode_response_frame, encode_response, kind, WireError,
    WireRequest, WireResponse, WIRE_VERSION,
};

/// One value of every `SearchError` variant. `code()` is the wire
/// identity; a variant missing here no longer compiles this match.
fn every_error() -> Vec<SearchError> {
    let all = vec![
        SearchError::EmptyDatabase,
        SearchError::PivotOutOfRange { pivot: 7, len: 3 },
        SearchError::DuplicatePivot { pivot: 5 },
        SearchError::InvalidRadius { radius: -1.5 },
        SearchError::LabelCount {
            labels: 2,
            items: 9,
        },
        SearchError::UnsupportedConfig {
            reason: "test reason",
        },
        SearchError::Overloaded { depth: 64 },
        SearchError::Shutdown,
        SearchError::DeadlineExceeded,
        SearchError::Persistence {
            reason: "wal fsync failed".to_string(),
        },
    ];
    // Exhaustiveness guard: every value of the match below must be
    // present above exactly once, covering codes 1..=10 contiguously.
    let codes: Vec<u8> = all.iter().map(|e| e.code()).collect();
    assert_eq!(codes, (1..=10).collect::<Vec<u8>>());
    all
}

#[test]
fn every_error_variant_round_trips() {
    let mut buf = Vec::new();
    for error in every_error() {
        let response = Response {
            id: RequestId(42),
            body: ResponseBody::Failed {
                error: error.clone(),
            },
        };
        encode_response(&response, &mut buf);
        let decoded = decode_response_frame(&buf).expect("encoded Failed frame decodes");
        let WireResponse::One(got) = decoded else {
            panic!("Failed frame decoded as a batch");
        };
        assert_eq!(got.id, RequestId(42));
        let ResponseBody::Failed { error: got_error } = got.body else {
            panic!("Failed frame decoded as a non-Failed body");
        };
        // The code (the wire identity) always survives. The value
        // itself survives too, except `UnsupportedConfig`, whose
        // remote reason canonicalises to a static string.
        assert_eq!(got_error.code(), error.code());
        match error {
            SearchError::UnsupportedConfig { .. } => {
                assert!(matches!(got_error, SearchError::UnsupportedConfig { .. }));
            }
            other => assert_eq!(got_error, other),
        }
    }
}

/// A minimal `RESP_FAILED` frame carrying `code` followed by `body`
/// bytes (the variant's fields).
fn failed_frame(code: u8, body: &[u8]) -> Vec<u8> {
    let mut payload = vec![WIRE_VERSION, kind::RESP_FAILED];
    payload.extend_from_slice(&7u64.to_le_bytes());
    payload.push(code);
    payload.extend_from_slice(body);
    payload
}

#[test]
fn decodable_error_codes_are_exactly_one_through_ten() {
    // Candidate field encodings covering every variant's layout:
    // no fields / one u64 / one f64 / two u64 / a zero-length string.
    let suffixes: [&[u8]; 4] = [&[], &[0; 8], &[0; 16], &[0; 4]];
    for code in 0..=255u8 {
        let decodable = suffixes
            .iter()
            .any(|body| decode_response_frame(&failed_frame(code, body)).is_ok());
        assert_eq!(
            decodable,
            (1..=10).contains(&code),
            "error code {code}: decodable={decodable}"
        );
    }
}

/// A frame header (version, kind, id) with an empty body.
fn bare_frame(k: u8) -> Vec<u8> {
    let mut payload = vec![WIRE_VERSION, k];
    payload.extend_from_slice(&7u64.to_le_bytes());
    payload
}

#[test]
fn known_response_kinds_are_exactly_the_declared_constants() {
    // The *client* decoder: the replication kinds (`RESP_SYNC`,
    // `RESP_REPL_INSERT`) are deliberately absent — they only appear
    // on replica catch-up connections, which use
    // `decode_replica_frame` (pinned below).
    let known = [
        kind::RESP_NN,
        kind::RESP_KNN,
        kind::RESP_RANGE,
        kind::RESP_INSERTED,
        kind::RESP_FAILED,
        kind::RESP_BATCH,
        kind::RESP_DELETED,
    ];
    assert_eq!(known, [16, 17, 18, 19, 20, 21, 24]);
    for k in 0..=255u8 {
        // An unknown kind byte is rejected as `BadKind` (carrying the
        // byte); a known kind gets past the kind dispatch — with an
        // empty body it may then fail, but never as `BadKind`.
        let result = decode_response_frame(&bare_frame(k));
        let bad_kind = matches!(result, Err(WireError::BadKind { got }) if got == k);
        assert_eq!(
            bad_kind,
            !known.contains(&k),
            "response kind {k}: result={result:?}"
        );
    }
}

#[test]
fn known_replica_frame_kinds_are_the_response_kinds_plus_replication() {
    // `RESP_BATCH` is absent: a replica's sync connection only ever
    // carries single responses (a refusal answering the sync request),
    // sync chunks, and streamed writes.
    let known = [
        kind::RESP_NN,
        kind::RESP_KNN,
        kind::RESP_RANGE,
        kind::RESP_INSERTED,
        kind::RESP_FAILED,
        kind::RESP_SYNC,
        kind::RESP_REPL_INSERT,
        kind::RESP_DELETED,
        kind::RESP_REPL_DELETE,
    ];
    assert_eq!(known, [16, 17, 18, 19, 20, 22, 23, 24, 25]);
    for k in 0..=255u8 {
        let result = wire::decode_replica_frame::<u8>(&bare_frame(k));
        let bad_kind = matches!(result, Err(WireError::BadKind { got }) if got == k);
        assert_eq!(
            bad_kind,
            !known.contains(&k),
            "replica frame kind {k}: result={result:?}"
        );
    }
}

#[test]
fn known_request_kinds_are_exactly_the_declared_constants() {
    let known = [
        kind::REQ_NN,
        kind::REQ_KNN,
        kind::REQ_RANGE,
        kind::REQ_INSERT,
        kind::REQ_BATCH,
        kind::REQ_SYNC,
        kind::REQ_DELETE,
    ];
    assert_eq!(known, [0, 1, 2, 3, 4, 5, 6]);
    for k in 0..=255u8 {
        let result = decode_request_frame::<u8>(&bare_frame(k));
        let bad_kind = matches!(result, Err(WireError::BadKind { got }) if got == k);
        assert_eq!(
            bad_kind,
            !known.contains(&k),
            "request kind {k}: result={result:?}"
        );
    }
}

#[test]
fn request_round_trip_still_works_for_every_kind() {
    use cned_serve::session::Request;
    let requests: Vec<Request<u8>> = vec![
        Request::Nn {
            query: vec![1, 2, 3],
        },
        Request::Knn {
            query: vec![4, 5],
            k: 2,
        },
        Request::Range {
            query: vec![6],
            radius: 0.25,
        },
        Request::Insert { item: vec![7, 8] },
        Request::Delete { index: 9 },
    ];
    let mut buf = Vec::new();
    for request in &requests {
        wire::encode_request(RequestId(9), request, &mut buf);
        let (id, decoded) =
            decode_request_frame::<u8>(&buf).expect("encoded request frame decodes");
        assert_eq!(id, RequestId(9));
        assert!(matches!(decoded, WireRequest::One(_)));
    }
}
