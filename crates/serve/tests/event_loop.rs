//! Event-loop server integration tests: high-concurrency loopback
//! bit-identity against in-process answers, the in-band connection-cap
//! rejection frame, bounded-admission (`Overloaded`) semantics over
//! the wire, outbox backpressure, idle timeouts, client read
//! deadlines, and draining shutdown — the behavioural contract of the
//! readiness-based `Server`.
//!
//! `CNED_BENCH_FAST=1` shrinks per-connection work (CI smoke) without
//! lowering the 256-connection concurrency floor.

use cned_core::contextual::exact::Contextual;
use cned_core::levenshtein::Levenshtein;
use cned_core::metric::Distance;
use cned_core::normalized::yujian_bo::YujianBo;
use cned_search::{MetricIndex, Neighbour, QueryOptions, SearchError};
use cned_serve::wire;
use cned_serve::{
    Client, ClientConfig, ClientError, Request, RequestId, ResponseBody, Server, ServerConfig,
    SessionConfig, ShardConfig, ShardedIndex,
};
use std::net::SocketAddr;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn fast() -> bool {
    std::env::var("CNED_BENCH_FAST").is_ok()
}

/// Deterministic pseudo-random word corpus (xorshift).
fn corpus(n: usize, len: usize, alphabet: u8, seed: u64) -> Vec<Vec<u8>> {
    let mut state = seed | 1;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|_| {
            let l = 1 + (rng() % len as u64) as usize;
            (0..l)
                .map(|_| b'a' + (rng() % alphabet as u64) as u8)
                .collect()
        })
        .collect()
}

fn build(db: &[Vec<u8>], shards: usize, dist: &dyn Distance<u8>) -> ShardedIndex<u8> {
    ShardedIndex::try_build(
        db.to_vec(),
        ShardConfig {
            shards,
            pivots_per_shard: 4,
            compact_threshold: 8,
            ..ShardConfig::default()
        },
        dist,
    )
    .unwrap()
}

fn key(ns: &[Neighbour]) -> Vec<(usize, u64)> {
    ns.iter().map(|n| (n.index, n.distance.to_bits())).collect()
}

/// Connect with retries: 256 simultaneous SYNs can overflow the
/// listener backlog on a 1-core box; refused attempts just try again.
fn connect_retry(addr: SocketAddr) -> Client<u8> {
    let mut delay = Duration::from_millis(1);
    for _ in 0..200 {
        match Client::connect(addr) {
            Ok(client) => return client,
            Err(_) => {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(50));
            }
        }
    }
    panic!("could not connect to the loopback server");
}

#[test]
fn bit_identity_holds_across_256_concurrent_connections_and_metrics() {
    let conns = 256usize;
    let queries_per_conn = if fast() { 1 } else { 3 };
    let db = corpus(30, 6, 3, 2027);
    let queries = Arc::new(corpus(8, 6, 3, 20271));
    let metrics: [(&str, Arc<dyn Distance<u8>>); 3] = [
        ("d_E", Arc::new(Levenshtein)),
        ("d_YB", Arc::new(YujianBo)),
        ("d_C", Arc::new(Contextual)),
    ];
    for (name, dist) in metrics {
        // In-process twin: the bit-identity oracle.
        let twin = build(&db, 2, &*dist);
        let expected: Arc<Vec<_>> = Arc::new(
            queries
                .iter()
                .map(|q| {
                    (
                        MetricIndex::nn(&twin, q, &*dist, &QueryOptions::new()).unwrap(),
                        MetricIndex::knn(&twin, q, &*dist, &QueryOptions::new().k(3)).unwrap(),
                    )
                })
                .collect(),
        );

        let server = Server::bind_with(
            "127.0.0.1:0",
            build(&db, 2, &*dist),
            Arc::clone(&dist),
            ServerConfig::new().session(SessionConfig::new().queue_depth(1 << 16)),
        )
        .expect("bind loopback");
        let addr = server.local_addr();
        let barrier = Arc::new(Barrier::new(conns));

        let workers: Vec<_> = (0..conns)
            .map(|c| {
                let expected = Arc::clone(&expected);
                let queries = Arc::clone(&queries);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut client = connect_retry(addr);
                    // Hold every socket open at once: the server
                    // really is driving 256 live connections.
                    barrier.wait();
                    let qs: Vec<Vec<u8>> = (0..queries_per_conn)
                        .map(|i| queries[(c + i) % queries.len()].clone())
                        .collect();
                    // One batch frame per call instead of N singles.
                    let nn = client.nn_batch(&qs).unwrap();
                    let knn = client.knn_batch(&qs, 3).unwrap();
                    for (i, ((got_nn, nn_stats), (got_knn, knn_stats))) in
                        nn.into_iter().zip(knn).enumerate()
                    {
                        let (e_nn, e_knn) = &expected[(c + i) % expected.len()];
                        assert_eq!(
                            got_nn.map(|n| (n.index, n.distance.to_bits())),
                            e_nn.0.map(|n| (n.index, n.distance.to_bits())),
                            "conn {c} query {i}"
                        );
                        assert_eq!(nn_stats, e_nn.1, "conn {c} query {i}");
                        assert_eq!(key(&got_knn), key(&e_knn.0), "conn {c} query {i}");
                        assert_eq!(knn_stats, e_knn.1, "conn {c} query {i}");
                    }
                })
            })
            .collect();
        for w in workers {
            w.join()
                .unwrap_or_else(|_| panic!("{name}: a connection worker panicked"));
        }
        server.shutdown();
    }
}

#[test]
fn connection_cap_rejection_is_typed_and_in_band() {
    let db = corpus(16, 5, 3, 2029);
    let server = Server::bind_with(
        "127.0.0.1:0",
        build(&db, 1, &Levenshtein),
        Arc::new(Levenshtein),
        ServerConfig::new().max_connections(2),
    )
    .unwrap();
    let addr = server.local_addr();

    let mut a: Client<u8> = Client::connect(addr).unwrap();
    let mut b: Client<u8> = Client::connect(addr).unwrap();
    assert_eq!(a.nn(&db[0]).unwrap().0.unwrap().distance, 0.0);
    assert_eq!(b.nn(&db[1]).unwrap().0.unwrap().distance, 0.0);

    // The third connection is answered with a typed control frame —
    // CONTROL_ID + Failed { Overloaded } — not a silent close.
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    let mut buf = Vec::new();
    wire::read_frame(&mut raw, &mut buf)
        .unwrap()
        .expect("a rejection frame, not EOF");
    let rejection = wire::decode_response(&buf).unwrap();
    assert_eq!(rejection.id, RequestId(wire::CONTROL_ID));
    assert!(matches!(
        rejection.body,
        ResponseBody::Failed {
            error: SearchError::Overloaded { depth: 2 }
        }
    ));
    drop(raw);

    // Through the typed client the rejection surfaces as an error
    // (either the routed Overloaded or a fast write failure,
    // depending on which side of the race the submit lands).
    let mut c: Client<u8> = Client::connect(addr).unwrap();
    assert!(c.nn(&db[2]).is_err());
    drop(c);

    // The admitted connections never noticed.
    assert_eq!(a.nn(&db[3]).unwrap().0.unwrap().distance, 0.0);
    assert_eq!(b.nn(&db[3]).unwrap().0.unwrap().distance, 0.0);

    // Closing a connection frees its slot (the reaper decrements the
    // shared count within a sweep or two).
    drop(a);
    let mut readmitted = false;
    for _ in 0..200 {
        let mut d: Client<u8> = Client::connect(addr).unwrap();
        if d.nn(&db[0]).is_ok() {
            readmitted = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(readmitted, "closing a connection must free a slot");
    server.shutdown();
}

#[test]
fn session_overload_answers_in_band_and_keeps_the_connection() {
    let db = corpus(12, 5, 3, 2031);
    // queue_depth 0: every submission is refused — deterministically
    // exercising the in-band backpressure path.
    let server = Server::bind_with(
        "127.0.0.1:0",
        build(&db, 1, &Levenshtein),
        Arc::new(Levenshtein),
        ServerConfig::new().session(SessionConfig::new().queue_depth(0)),
    )
    .unwrap();
    let mut client: Client<u8> = Client::connect(server.local_addr()).unwrap();

    // Three calls in a row: each gets a typed answer, so the
    // connection survived every refusal.
    for _ in 0..3 {
        match client.nn(&db[0]) {
            Err(ClientError::Search(SearchError::Overloaded { depth: 0 })) => {}
            other => panic!("expected in-band Overloaded, got {other:?}"),
        }
    }
    // A batch fails all-or-nothing as ONE Failed frame under the
    // batch id.
    match client.call_batch(&[
        Request::Nn {
            query: db[0].clone(),
        },
        Request::Nn {
            query: db[1].clone(),
        },
    ]) {
        Err(ClientError::Search(SearchError::Overloaded { depth: 0 })) => {}
        other => panic!("expected whole-batch Overloaded, got {other:?}"),
    }
    drop(client);
    server.shutdown();
}

#[test]
fn outbox_backpressure_still_answers_everything() {
    let db = corpus(24, 6, 3, 2033);
    // A tiny outbox forces the read-pause path: the server stops
    // reading this connection whenever 4 frames are unanswered, and
    // resumes as responses drain. Nothing may be lost or reordered.
    let server = Server::bind_with(
        "127.0.0.1:0",
        build(&db, 2, &Levenshtein),
        Arc::new(Levenshtein),
        ServerConfig::new().outbox_depth(4),
    )
    .unwrap();
    let twin = build(&db, 2, &Levenshtein);
    let mut client: Client<u8> = Client::connect(server.local_addr()).unwrap();

    let mut tickets = Vec::new();
    for i in 0..64 {
        tickets.push(
            client
                .submit(Request::Nn {
                    query: db[i % db.len()].clone(),
                })
                .unwrap(),
        );
    }
    client.flush().unwrap();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let response = ticket.wait();
        assert_eq!(response.id, RequestId(i as u64));
        let expected =
            MetricIndex::nn(&twin, &db[i % db.len()], &Levenshtein, &QueryOptions::new()).unwrap();
        let ResponseBody::Nn { neighbour, stats } = response.body else {
            panic!("expected Nn, got {:?}", response.body);
        };
        assert_eq!(
            neighbour.map(|n| (n.index, n.distance.to_bits())),
            expected.0.map(|n| (n.index, n.distance.to_bits()))
        );
        assert_eq!(stats, expected.1);
    }
    drop(client);
    server.shutdown();
}

#[test]
fn draining_shutdown_answers_every_accepted_request() {
    let db = corpus(24, 6, 3, 2039);
    let server = Server::bind(
        "127.0.0.1:0",
        build(&db, 2, &Levenshtein),
        Arc::new(Levenshtein),
    )
    .unwrap();
    let mut client: Client<u8> = Client::connect(server.local_addr()).unwrap();
    let probe = b"zzzz".to_vec();

    let mut tickets = Vec::new();
    for i in 0..10 {
        tickets.push(
            client
                .submit(Request::Nn {
                    query: db[i].clone(),
                })
                .unwrap(),
        );
    }
    let t_insert = client
        .submit(Request::Insert {
            item: probe.clone(),
        })
        .unwrap();
    let t_batch = client
        .submit_batch(&[
            Request::Nn {
                query: probe.clone(),
            },
            Request::Knn {
                query: probe.clone(),
                k: 2,
            },
        ])
        .unwrap();
    client.flush().unwrap();

    // Responses are written per connection in submission order, so
    // the batch's arrival proves everything before it was accepted.
    let bodies = t_batch.wait().unwrap();
    assert_eq!(bodies.len(), 2);
    let ResponseBody::Nn {
        neighbour: Some(nb),
        ..
    } = &bodies[0]
    else {
        panic!("expected Nn, got {:?}", bodies[0]);
    };
    assert_eq!(
        (nb.index, nb.distance),
        (db.len(), 0.0),
        "the batch runs after the insert barrier"
    );

    let index = server.shutdown();
    assert_eq!(
        MetricIndex::len(&index),
        db.len() + 1,
        "the insert drained into the index"
    );
    // Every earlier ticket has its real answer — no Shutdown stubs.
    assert_eq!(
        t_insert.wait().body,
        ResponseBody::Inserted { index: db.len() }
    );
    for ticket in tickets {
        let response = ticket.wait();
        assert!(
            matches!(response.body, ResponseBody::Nn { .. }),
            "draining shutdown dropped a request: {:?}",
            response.body
        );
    }
}

#[test]
fn idle_connections_are_reaped_but_active_ones_survive() {
    let db = corpus(12, 5, 3, 2041);
    let server = Server::bind_with(
        "127.0.0.1:0",
        build(&db, 1, &Levenshtein),
        Arc::new(Levenshtein),
        ServerConfig::new().idle_timeout(Duration::from_millis(200)),
    )
    .unwrap();
    let addr = server.local_addr();
    let mut client: Client<u8> = Client::connect(addr).unwrap();

    // Activity inside the window resets the idle clock: the
    // connection survives well past one timeout's worth of wall time.
    for _ in 0..4 {
        std::thread::sleep(Duration::from_millis(100));
        client.nn(&db[0]).unwrap();
    }
    // Go quiet past the timeout: the server reaps the connection.
    std::thread::sleep(Duration::from_millis(800));
    assert!(
        client.nn(&db[0]).is_err(),
        "an idle connection must be closed"
    );
    drop(client);
    // The server itself is healthy for fresh connections.
    let mut fresh: Client<u8> = Client::connect(addr).unwrap();
    assert_eq!(fresh.nn(&db[1]).unwrap().0.unwrap().distance, 0.0);
    drop(fresh);
    server.shutdown();
}

#[test]
fn a_silent_server_trips_the_read_deadline() {
    // A listener that accepts (the OS completes the handshake into
    // the backlog) but never answers: before the read deadline, this
    // hung `wait` forever.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mut client: Client<u8> = Client::connect_with(
        addr,
        ClientConfig::new().read_deadline(Duration::from_millis(200)),
    )
    .unwrap();
    let start = Instant::now();
    match client.nn(b"abc") {
        Err(ClientError::Search(SearchError::DeadlineExceeded)) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "the deadline must fire promptly, not at some OS default"
    );
    drop(listener);
}

#[test]
fn config_defaults_are_the_documented_values() {
    let c = ClientConfig::default();
    assert_eq!(c.connect_timeout, Duration::from_secs(5));
    assert_eq!(c.read_deadline, Duration::from_secs(30));
    let c = ClientConfig::new()
        .connect_timeout(Duration::from_millis(1))
        .read_deadline(Duration::from_millis(2));
    assert_eq!(c.connect_timeout, Duration::from_millis(1));
    assert_eq!(c.read_deadline, Duration::from_millis(2));

    let s = ServerConfig::default();
    assert_eq!(s.event_loop_threads, 2);
    assert_eq!(s.max_connections, 1024);
    assert_eq!(s.idle_timeout, Duration::from_secs(60));
    assert_eq!(s.outbox_depth, 64);
}
