//! Integration tests for the sharded serving layer: agreement with
//! the single-index linear-scan oracle across metrics, shard counts
//! and thread counts; deterministic tie-breaking on duplicate-heavy
//! corpora; insert/compaction semantics; and the thread-count
//! determinism sweep guarding the pipeline against
//! scheduling-dependent results.

use cned_core::contextual::exact::Contextual;
use cned_core::levenshtein::Levenshtein;
use cned_core::metric::Distance;
use cned_core::normalized::yujian_bo::YujianBo;
use cned_search::linear::{linear_knn, linear_nn};
use cned_search::parallel::set_thread_override;
use cned_search::pivots::select_pivots_max_sum;
use cned_search::Laesa;
use cned_serve::{QueryPipeline, Request, Response, ShardConfig, ShardedIndex};
use std::sync::Mutex;

/// The thread override is process-global; tests that touch it
/// serialise here.
static THREADS_LOCK: Mutex<()> = Mutex::new(());

/// Deterministic pseudo-random word corpus (xorshift).
fn corpus(n: usize, len: usize, alphabet: u8, seed: u64) -> Vec<Vec<u8>> {
    let mut state = seed | 1;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|_| {
            let l = 1 + (rng() % len as u64) as usize;
            (0..l)
                .map(|_| b'a' + (rng() % alphabet as u64) as u8)
                .collect()
        })
        .collect()
}

fn config(shards: usize) -> ShardConfig {
    ShardConfig {
        shards,
        pivots_per_shard: 4,
        compact_threshold: 8,
    }
}

#[test]
fn agrees_with_linear_scan_across_metrics_shards_and_threads() {
    let _guard = THREADS_LOCK.lock().unwrap();
    let db = corpus(42, 7, 3, 97);
    let queries = corpus(6, 7, 3, 971);
    let metrics: [&dyn Distance<u8>; 3] = [&Levenshtein, &YujianBo, &Contextual];
    for dist in metrics {
        for shards in [1usize, 2, 5] {
            for threads in [1usize, 4] {
                set_thread_override(Some(threads));
                let index = ShardedIndex::build(db.clone(), config(shards), dist);
                for q in &queries {
                    let (l_nn, l_stats) = linear_nn(&db, q, dist).unwrap();
                    let (s_nn, s_stats) = index.nn(q, dist).unwrap();
                    let label = format!(
                        "metric {} shards {shards} threads {threads} query {q:?}",
                        dist.name()
                    );
                    assert_eq!(s_nn.index, l_nn.index, "{label}");
                    assert_eq!(s_nn.distance.to_bits(), l_nn.distance.to_bits(), "{label}");
                    assert!(
                        s_stats.total().distance_computations <= l_stats.distance_computations + 1,
                        "{label}: sharded should not exceed exhaustive"
                    );
                    let (l_knn, _) = linear_knn(&db, q, dist, 5);
                    let (s_knn, _) = index.knn(q, dist, 5);
                    let l: Vec<(usize, u64)> = l_knn
                        .iter()
                        .map(|n| (n.index, n.distance.to_bits()))
                        .collect();
                    let s: Vec<(usize, u64)> = s_knn
                        .iter()
                        .map(|n| (n.index, n.distance.to_bits()))
                        .collect();
                    assert_eq!(s, l, "{label}");
                }
            }
        }
        set_thread_override(None);
    }
}

#[test]
fn duplicate_strings_tie_break_serial_batch_sharded() {
    // Corpus seeded with duplicate strings: equal distances are
    // guaranteed, so this pins the ascending-database-index tie-break
    // across the serial, batch and sharded paths.
    let _guard = THREADS_LOCK.lock().unwrap();
    let mut db = corpus(40, 5, 2, 13);
    let dups: Vec<Vec<u8>> = db.iter().take(12).cloned().collect();
    db.extend(dups);
    let queries = corpus(10, 5, 2, 131);
    let pivots = select_pivots_max_sum(&db, 5, 0, &Levenshtein);
    let laesa = Laesa::build(db.clone(), pivots, &Levenshtein);
    let sharded = ShardedIndex::build(db.clone(), config(3), &Levenshtein);
    set_thread_override(Some(3));
    let batch = sharded.nn_batch(&queries, &Levenshtein).unwrap();
    set_thread_override(None);
    for (q, (b_nn, _)) in queries.iter().zip(&batch) {
        let (serial, _) = linear_nn(&db, q, &Levenshtein).unwrap();
        let (single, _) = laesa.nn(q, &Levenshtein).unwrap();
        let (shard_nn, _) = sharded.nn(q, &Levenshtein).unwrap();
        assert_eq!(serial.index, single.index, "query {q:?}");
        assert_eq!(serial.index, shard_nn.index, "query {q:?}");
        assert_eq!(serial.index, b_nn.index, "query {q:?}");
        assert_eq!(serial.distance.to_bits(), shard_nn.distance.to_bits());
        let (l_knn, _) = linear_knn(&db, q, &Levenshtein, 6);
        let (s_knn, _) = sharded.knn(q, &Levenshtein, 6);
        let (a_knn, _) = laesa.knn(q, &Levenshtein, 6);
        let key = |ns: &[cned_search::Neighbour]| -> Vec<(usize, u64)> {
            ns.iter().map(|n| (n.index, n.distance.to_bits())).collect()
        };
        assert_eq!(key(&s_knn), key(&l_knn), "query {q:?}");
        assert_eq!(key(&a_knn), key(&l_knn), "query {q:?}");
    }
}

#[test]
fn thread_count_determinism_sweep() {
    // nn_batch / knn_batch / pipeline answers must be bit-identical —
    // neighbours, distances, and computation counts — for any worker
    // count. Guards the pipeline against scheduling-dependent pruning.
    let _guard = THREADS_LOCK.lock().unwrap();
    let db = corpus(70, 8, 3, 201);
    let queries = corpus(13, 8, 3, 2011);
    let index = ShardedIndex::build(db.clone(), config(3), &Levenshtein);
    type NnKey = Vec<(usize, u64, u64)>;
    type KnnKey = Vec<(Vec<(usize, u64)>, u64)>;
    let mut nn_runs: Vec<NnKey> = Vec::new();
    let mut knn_runs: Vec<KnnKey> = Vec::new();
    let mut pipeline_runs: Vec<Vec<Response>> = Vec::new();
    for threads in [1usize, 2, 7] {
        set_thread_override(Some(threads));
        let nn: NnKey = index
            .nn_batch(&queries, &Levenshtein)
            .unwrap()
            .iter()
            .map(|(nb, st)| {
                (
                    nb.index,
                    nb.distance.to_bits(),
                    st.total().distance_computations,
                )
            })
            .collect();
        let knn: KnnKey = index
            .knn_batch(&queries, &Levenshtein, 4)
            .iter()
            .map(|(ns, st)| {
                (
                    ns.iter().map(|n| (n.index, n.distance.to_bits())).collect(),
                    st.total().distance_computations,
                )
            })
            .collect();
        let mut pipeline =
            QueryPipeline::new(ShardedIndex::build(db.clone(), config(3), &Levenshtein));
        let requests: Vec<Request<u8>> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| {
                if i % 2 == 0 {
                    Request::Nn { query: q.clone() }
                } else {
                    Request::Knn {
                        query: q.clone(),
                        k: 3,
                    }
                }
            })
            .collect();
        pipeline_runs.push(pipeline.run(&requests, &Levenshtein));
        nn_runs.push(nn);
        knn_runs.push(knn);
    }
    set_thread_override(None);
    assert_eq!(nn_runs[0], nn_runs[1], "nn_batch: 1 vs 2 threads");
    assert_eq!(nn_runs[0], nn_runs[2], "nn_batch: 1 vs 7 threads");
    assert_eq!(knn_runs[0], knn_runs[1], "knn_batch: 1 vs 2 threads");
    assert_eq!(knn_runs[0], knn_runs[2], "knn_batch: 1 vs 7 threads");
    assert_eq!(pipeline_runs[0], pipeline_runs[1], "pipeline: 1 vs 2");
    assert_eq!(pipeline_runs[0], pipeline_runs[2], "pipeline: 1 vs 7");
}

#[test]
fn single_shard_matches_plain_laesa_exactly() {
    let db = corpus(50, 7, 3, 301);
    let queries = corpus(8, 7, 3, 3011);
    let cfg = ShardConfig {
        shards: 1,
        pivots_per_shard: 6,
        compact_threshold: 8,
    };
    let sharded = ShardedIndex::build(db.clone(), cfg, &Levenshtein);
    let pivots = select_pivots_max_sum(&db, 6, 0, &Levenshtein);
    let plain = Laesa::build(db, pivots, &Levenshtein);
    for q in &queries {
        let (s_nn, s_stats) = sharded.nn(q, &Levenshtein).unwrap();
        let (p_nn, p_stats) = plain.nn(q, &Levenshtein).unwrap();
        assert_eq!(s_nn.index, p_nn.index);
        assert_eq!(s_nn.distance.to_bits(), p_nn.distance.to_bits());
        assert_eq!(s_stats.total(), p_stats, "query {q:?}");
    }
}

#[test]
fn inserts_are_visible_and_compaction_preserves_answers() {
    let db = corpus(30, 6, 3, 77);
    let cfg = ShardConfig {
        shards: 2,
        pivots_per_shard: 4,
        compact_threshold: 5,
    };
    let mut index = ShardedIndex::build(db.clone(), cfg, &Levenshtein);
    assert_eq!(index.num_shards(), 2);
    let mut all = db.clone();
    // Insert items one by one; each must be findable immediately (in
    // the delta shard) and survive compaction with a stable global
    // index.
    let extra = corpus(12, 6, 3, 771);
    for (i, item) in extra.iter().enumerate() {
        let global = index.insert(item.clone(), &Levenshtein);
        assert_eq!(global, db.len() + i);
        all.push(item.clone());
        let (nn, _) = index.nn(item, &Levenshtein).unwrap();
        assert_eq!(nn.distance, 0.0, "item {item:?} must be found at d=0");
        assert_eq!(index.item(global), &item[..]);
    }
    // 12 inserts at threshold 5 → two compactions happened, 2 items
    // still pending in the delta shard.
    assert_eq!(index.num_shards(), 4);
    assert_eq!(index.delta_len(), 2);
    // The full index must agree with a linear scan over everything.
    for q in corpus(10, 6, 3, 7711) {
        let (l_nn, _) = linear_nn(&all, &q, &Levenshtein).unwrap();
        let (s_nn, _) = index.nn(&q, &Levenshtein).unwrap();
        assert_eq!(s_nn.index, l_nn.index, "query {q:?}");
        assert_eq!(s_nn.distance.to_bits(), l_nn.distance.to_bits());
        let (l_knn, _) = linear_knn(&all, &q, &Levenshtein, 5);
        let (s_knn, _) = index.knn(&q, &Levenshtein, 5);
        let l: Vec<(usize, u64)> = l_knn
            .iter()
            .map(|n| (n.index, n.distance.to_bits()))
            .collect();
        let s: Vec<(usize, u64)> = s_knn
            .iter()
            .map(|n| (n.index, n.distance.to_bits()))
            .collect();
        assert_eq!(s, l, "query {q:?}");
    }
    // Forced compaction flushes the tail and changes nothing.
    index.compact(&Levenshtein);
    assert_eq!(index.delta_len(), 0);
    assert_eq!(index.num_shards(), 5);
    for q in corpus(5, 6, 3, 77111) {
        let (l_nn, _) = linear_nn(&all, &q, &Levenshtein).unwrap();
        let (s_nn, _) = index.nn(&q, &Levenshtein).unwrap();
        assert_eq!(
            (s_nn.index, s_nn.distance.to_bits()),
            (l_nn.index, l_nn.distance.to_bits())
        );
    }
}

#[test]
fn pipeline_inserts_are_barriers() {
    let db = corpus(20, 6, 3, 55);
    let probe = b"zzzzzz".to_vec();
    // The probe is far from the alphabet {a,b,c} corpus, so its
    // nearest neighbour changes the moment an exact copy is inserted.
    let mut pipeline = QueryPipeline::new(ShardedIndex::build(db.clone(), config(2), &Levenshtein));
    let responses = pipeline.run(
        &[
            Request::Nn {
                query: probe.clone(),
            },
            Request::Insert {
                item: probe.clone(),
            },
            Request::Nn {
                query: probe.clone(),
            },
            Request::Knn {
                query: probe.clone(),
                k: 2,
            },
        ],
        &Levenshtein,
    );
    assert_eq!(responses.len(), 4);
    let Response::Nn {
        neighbour: Some(before),
        ..
    } = &responses[0]
    else {
        panic!("expected an Nn response, got {:?}", responses[0]);
    };
    assert!(before.distance > 0.0, "no exact copy before the insert");
    assert_eq!(
        responses[1],
        Response::Inserted { index: db.len() },
        "insert lands right after the seed database"
    );
    let Response::Nn {
        neighbour: Some(after),
        ..
    } = &responses[2]
    else {
        panic!("expected an Nn response, got {:?}", responses[2]);
    };
    assert_eq!(after.index, db.len(), "the inserted copy is the new NN");
    assert_eq!(after.distance, 0.0);
    let Response::Knn { neighbours, .. } = &responses[3] else {
        panic!("expected a Knn response, got {:?}", responses[3]);
    };
    assert_eq!(neighbours[0].index, db.len());
    assert_eq!(neighbours[0].distance, 0.0);
}

#[test]
fn empty_index_behaves() {
    let index: ShardedIndex<u8> =
        ShardedIndex::build(Vec::new(), ShardConfig::default(), &Levenshtein);
    assert!(index.is_empty());
    assert!(index.nn(b"abc", &Levenshtein).is_none());
    assert!(index.nn_batch(&[b"abc".to_vec()], &Levenshtein).is_none());
    let (knn, _) = index.knn(b"abc", &Levenshtein, 3);
    assert!(knn.is_empty());
    let mut pipeline = QueryPipeline::new(index);
    let responses = pipeline.run(
        &[
            Request::Nn {
                query: b"abc".to_vec(),
            },
            Request::Insert {
                item: b"abc".to_vec(),
            },
            Request::Nn {
                query: b"abc".to_vec(),
            },
        ],
        &Levenshtein,
    );
    assert_eq!(
        responses[0],
        Response::Nn {
            neighbour: None,
            stats: cned_search::SearchStats::default()
        }
    );
    let Response::Nn {
        neighbour: Some(nb),
        ..
    } = &responses[2]
    else {
        panic!("the inserted item must be servable, got {:?}", responses[2]);
    };
    assert_eq!((nb.index, nb.distance), (0, 0.0));
}
