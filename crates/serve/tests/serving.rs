//! Integration tests for the sharded serving layer, driven through
//! the unified [`MetricIndex`] trait: agreement with the exhaustive
//! [`LinearIndex`] oracle across metrics, shard counts and thread
//! counts (NN, k-NN **and range**); deterministic tie-breaking on
//! duplicate-heavy corpora; insert/compaction semantics; the
//! thread-count determinism sweep; and the pipeline's in-order
//! mixed-request protocol, including [`Request::Range`] and typed
//! [`Response::Failed`] errors.

use cned_core::contextual::exact::Contextual;
use cned_core::levenshtein::Levenshtein;
use cned_core::metric::Distance;
use cned_core::normalized::yujian_bo::YujianBo;
use cned_search::parallel::set_thread_override;
use cned_search::pivots::select_pivots_max_sum;
use cned_search::{
    Laesa, LinearIndex, MetricIndex, Neighbour, QueryOptions, SearchError, SearchStats,
};
use cned_serve::{QueryPipeline, Request, Response, ResponseBody, ShardConfig, ShardedIndex};
use std::sync::Mutex;

/// The thread override is process-global; tests that touch it
/// serialise here.
static THREADS_LOCK: Mutex<()> = Mutex::new(());

/// Deterministic pseudo-random word corpus (xorshift).
fn corpus(n: usize, len: usize, alphabet: u8, seed: u64) -> Vec<Vec<u8>> {
    let mut state = seed | 1;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|_| {
            let l = 1 + (rng() % len as u64) as usize;
            (0..l)
                .map(|_| b'a' + (rng() % alphabet as u64) as u8)
                .collect()
        })
        .collect()
}

fn config(shards: usize) -> ShardConfig {
    ShardConfig {
        shards,
        pivots_per_shard: 4,
        compact_threshold: 8,
        ..ShardConfig::default()
    }
}

fn nn_of(idx: &dyn MetricIndex<u8>, q: &[u8], dist: &dyn Distance<u8>) -> (Neighbour, SearchStats) {
    let (found, stats) = idx
        .nn(q, dist, &QueryOptions::new())
        .expect("non-empty index");
    (found.expect("infinite radius always finds"), stats)
}

fn knn_of(
    idx: &dyn MetricIndex<u8>,
    q: &[u8],
    dist: &dyn Distance<u8>,
    k: usize,
) -> Vec<Neighbour> {
    idx.knn(q, dist, &QueryOptions::new().k(k))
        .expect("non-empty index")
        .0
}

fn key(ns: &[Neighbour]) -> Vec<(usize, u64)> {
    ns.iter().map(|n| (n.index, n.distance.to_bits())).collect()
}

#[test]
fn agrees_with_linear_scan_across_metrics_shards_and_threads() {
    let _guard = THREADS_LOCK.lock().unwrap();
    let db = corpus(42, 7, 3, 97);
    let queries = corpus(6, 7, 3, 971);
    let oracle = LinearIndex::new(db.clone());
    let metrics: [&dyn Distance<u8>; 3] = [&Levenshtein, &YujianBo, &Contextual];
    for dist in metrics {
        for shards in [1usize, 2, 5] {
            for threads in [1usize, 4] {
                set_thread_override(Some(threads));
                let index = ShardedIndex::try_build(db.clone(), config(shards), dist).unwrap();
                for q in &queries {
                    let (l_nn, l_stats) = nn_of(&oracle, q, dist);
                    let (s_nn, s_stats) = nn_of(&index, q, dist);
                    let label = format!(
                        "metric {} shards {shards} threads {threads} query {q:?}",
                        dist.name()
                    );
                    assert_eq!(s_nn.index, l_nn.index, "{label}");
                    assert_eq!(s_nn.distance.to_bits(), l_nn.distance.to_bits(), "{label}");
                    assert!(
                        s_stats.distance_computations <= l_stats.distance_computations + 1,
                        "{label}: sharded should not exceed exhaustive"
                    );
                    assert_eq!(
                        key(&knn_of(&index, q, dist, 5)),
                        key(&knn_of(&oracle, q, dist, 5)),
                        "{label}"
                    );
                    // Range agreement: radius at the true NN distance
                    // (boundary tie included) and slightly above.
                    for radius in [l_nn.distance, l_nn.distance + 0.25] {
                        let opts = QueryOptions::new().radius(radius);
                        let (l_range, _) = oracle.range(q, dist, &opts).unwrap();
                        let (s_range, _) = index.range(q, dist, &opts).unwrap();
                        assert_eq!(key(&s_range), key(&l_range), "{label} radius {radius}");
                        assert!(
                            l_range.iter().any(|n| n.index == l_nn.index),
                            "{label}: the NN itself sits on the radius boundary"
                        );
                    }
                }
            }
        }
        set_thread_override(None);
    }
}

#[test]
fn duplicate_strings_tie_break_serial_batch_sharded() {
    // Corpus seeded with duplicate strings: equal distances are
    // guaranteed, so this pins the ascending-database-index tie-break
    // across the serial, batch and sharded paths.
    let _guard = THREADS_LOCK.lock().unwrap();
    let mut db = corpus(40, 5, 2, 13);
    let dups: Vec<Vec<u8>> = db.iter().take(12).cloned().collect();
    db.extend(dups);
    let queries = corpus(10, 5, 2, 131);
    let pivots = select_pivots_max_sum(&db, 5, 0, &Levenshtein);
    let laesa = Laesa::try_build(db.clone(), pivots, &Levenshtein).unwrap();
    let sharded = ShardedIndex::try_build(db.clone(), config(3), &Levenshtein).unwrap();
    let oracle = LinearIndex::new(db.clone());
    set_thread_override(Some(3));
    let batch =
        MetricIndex::nn_batch(&sharded, &queries, &Levenshtein, &QueryOptions::new()).unwrap();
    set_thread_override(None);
    for (q, (b_nn, _)) in queries.iter().zip(&batch) {
        let b_nn = b_nn.expect("non-empty index");
        let (serial, _) = nn_of(&oracle, q, &Levenshtein);
        let (single, _) = nn_of(&laesa, q, &Levenshtein);
        let (shard_nn, _) = nn_of(&sharded, q, &Levenshtein);
        assert_eq!(serial.index, single.index, "query {q:?}");
        assert_eq!(serial.index, shard_nn.index, "query {q:?}");
        assert_eq!(serial.index, b_nn.index, "query {q:?}");
        assert_eq!(serial.distance.to_bits(), shard_nn.distance.to_bits());
        assert_eq!(
            key(&knn_of(&sharded, q, &Levenshtein, 6)),
            key(&knn_of(&oracle, q, &Levenshtein, 6)),
            "query {q:?}"
        );
        assert_eq!(
            key(&knn_of(&laesa, q, &Levenshtein, 6)),
            key(&knn_of(&oracle, q, &Levenshtein, 6)),
            "query {q:?}"
        );
    }
}

#[test]
fn thread_count_determinism_sweep() {
    // nn_batch / knn_batch / pipeline answers must be bit-identical —
    // neighbours, distances, and computation counts — for any worker
    // count. Guards the pipeline against scheduling-dependent pruning.
    let _guard = THREADS_LOCK.lock().unwrap();
    let db = corpus(70, 8, 3, 201);
    let queries = corpus(13, 8, 3, 2011);
    let index = ShardedIndex::try_build(db.clone(), config(3), &Levenshtein).unwrap();
    type NnKey = Vec<(usize, u64, u64)>;
    type KnnKey = Vec<(Vec<(usize, u64)>, u64)>;
    let mut nn_runs: Vec<NnKey> = Vec::new();
    let mut knn_runs: Vec<KnnKey> = Vec::new();
    let mut pipeline_runs: Vec<Vec<Response>> = Vec::new();
    for threads in [1usize, 2, 7] {
        set_thread_override(Some(threads));
        let nn: NnKey = MetricIndex::nn_batch(&index, &queries, &Levenshtein, &QueryOptions::new())
            .unwrap()
            .iter()
            .map(|(nb, st)| {
                let nb = nb.expect("non-empty index");
                (nb.index, nb.distance.to_bits(), st.distance_computations)
            })
            .collect();
        let knn: KnnKey =
            MetricIndex::knn_batch(&index, &queries, &Levenshtein, &QueryOptions::new().k(4))
                .unwrap()
                .iter()
                .map(|(ns, st)| (key(ns), st.distance_computations))
                .collect();
        let mut pipeline = QueryPipeline::new(
            ShardedIndex::try_build(db.clone(), config(3), &Levenshtein).unwrap(),
        );
        let requests: Vec<Request<u8>> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| match i % 3 {
                0 => Request::Nn { query: q.clone() },
                1 => Request::Knn {
                    query: q.clone(),
                    k: 3,
                },
                _ => Request::Range {
                    query: q.clone(),
                    radius: 2.0,
                },
            })
            .collect();
        pipeline_runs.push(pipeline.run(&requests, &Levenshtein));
        nn_runs.push(nn);
        knn_runs.push(knn);
    }
    set_thread_override(None);
    assert_eq!(nn_runs[0], nn_runs[1], "nn_batch: 1 vs 2 threads");
    assert_eq!(nn_runs[0], nn_runs[2], "nn_batch: 1 vs 7 threads");
    assert_eq!(knn_runs[0], knn_runs[1], "knn_batch: 1 vs 2 threads");
    assert_eq!(knn_runs[0], knn_runs[2], "knn_batch: 1 vs 7 threads");
    assert_eq!(pipeline_runs[0], pipeline_runs[1], "pipeline: 1 vs 2");
    assert_eq!(pipeline_runs[0], pipeline_runs[2], "pipeline: 1 vs 7");
}

#[test]
fn per_call_thread_override_matches_global_results() {
    // QueryOptions::threads caps one batch without touching the
    // process default, and cannot change results.
    let db = corpus(50, 7, 3, 211);
    let queries = corpus(9, 7, 3, 2111);
    let index = ShardedIndex::try_build(db, config(2), &Levenshtein).unwrap();
    let base = MetricIndex::nn_batch(&index, &queries, &Levenshtein, &QueryOptions::new()).unwrap();
    for threads in [1usize, 2, 5] {
        let with = MetricIndex::nn_batch(
            &index,
            &queries,
            &Levenshtein,
            &QueryOptions::new().threads(threads),
        )
        .unwrap();
        for ((a, ast), (b, bst)) in base.iter().zip(&with) {
            let (a, b) = (a.unwrap(), b.unwrap());
            assert_eq!(
                (a.index, a.distance.to_bits()),
                (b.index, b.distance.to_bits())
            );
            assert_eq!(ast, bst, "threads {threads}");
        }
    }
}

#[test]
fn single_shard_matches_plain_laesa_exactly() {
    let db = corpus(50, 7, 3, 301);
    let queries = corpus(8, 7, 3, 3011);
    let cfg = ShardConfig {
        shards: 1,
        pivots_per_shard: 6,
        compact_threshold: 8,
        ..ShardConfig::default()
    };
    let sharded = ShardedIndex::try_build(db.clone(), cfg, &Levenshtein).unwrap();
    let pivots = select_pivots_max_sum(&db, 6, 0, &Levenshtein);
    let plain = Laesa::try_build(db, pivots, &Levenshtein).unwrap();
    for q in &queries {
        let (s_nn, s_stats) = nn_of(&sharded, q, &Levenshtein);
        let (p_nn, p_stats) = nn_of(&plain, q, &Levenshtein);
        assert_eq!(s_nn.index, p_nn.index);
        assert_eq!(s_nn.distance.to_bits(), p_nn.distance.to_bits());
        assert_eq!(s_stats, p_stats, "query {q:?}");
        // Range through one shard is plain LAESA range.
        let opts = QueryOptions::new().radius(2.0);
        let (s_range, _) = sharded.range(q, &Levenshtein, &opts).unwrap();
        let (p_range, _) = MetricIndex::range(&plain, q, &Levenshtein, &opts).unwrap();
        assert_eq!(key(&s_range), key(&p_range), "query {q:?}");
    }
}

#[test]
fn inserts_are_visible_and_compaction_preserves_answers() {
    let db = corpus(30, 6, 3, 77);
    let cfg = ShardConfig {
        shards: 2,
        pivots_per_shard: 4,
        compact_threshold: 5,
        // Pin the historical append-only layout: this test counts
        // shards per compaction; rebalancing has its own tests.
        min_fill_percent: 0,
    };
    let mut index = ShardedIndex::try_build(db.clone(), cfg, &Levenshtein).unwrap();
    assert_eq!(index.num_shards(), 2);
    let mut all = db.clone();
    // Insert items one by one; each must be findable immediately (in
    // the delta shard) and survive compaction with a stable global
    // index.
    let extra = corpus(12, 6, 3, 771);
    for (i, item) in extra.iter().enumerate() {
        let global = index.insert(item.clone(), &Levenshtein);
        assert_eq!(global, db.len() + i);
        all.push(item.clone());
        let (nn, _) = nn_of(&index, item, &Levenshtein);
        assert_eq!(nn.distance, 0.0, "item {item:?} must be found at d=0");
        assert_eq!(index.item(global), &item[..]);
    }
    // 12 inserts at threshold 5 → two compactions happened, 2 items
    // still pending in the delta shard.
    assert_eq!(index.num_shards(), 4);
    assert_eq!(index.delta_len(), 2);
    // The full index must agree with a linear scan over everything —
    // including range queries spanning indexed shards and the delta.
    let oracle = LinearIndex::new(all.clone());
    for q in corpus(10, 6, 3, 7711) {
        let (l_nn, _) = nn_of(&oracle, &q, &Levenshtein);
        let (s_nn, _) = nn_of(&index, &q, &Levenshtein);
        assert_eq!(s_nn.index, l_nn.index, "query {q:?}");
        assert_eq!(s_nn.distance.to_bits(), l_nn.distance.to_bits());
        assert_eq!(
            key(&knn_of(&index, &q, &Levenshtein, 5)),
            key(&knn_of(&oracle, &q, &Levenshtein, 5)),
            "query {q:?}"
        );
        let opts = QueryOptions::new().radius(2.0);
        let (l_range, _) = oracle.range(&q, &Levenshtein, &opts).unwrap();
        let (s_range, _) = index.range(&q, &Levenshtein, &opts).unwrap();
        assert_eq!(key(&s_range), key(&l_range), "query {q:?}");
    }
    // Forced compaction flushes the tail and changes nothing.
    index.compact(&Levenshtein);
    assert_eq!(index.delta_len(), 0);
    assert_eq!(index.num_shards(), 5);
    for q in corpus(5, 6, 3, 77111) {
        let (l_nn, _) = nn_of(&oracle, &q, &Levenshtein);
        let (s_nn, _) = nn_of(&index, &q, &Levenshtein);
        assert_eq!(
            (s_nn.index, s_nn.distance.to_bits()),
            (l_nn.index, l_nn.distance.to_bits())
        );
    }
}

#[test]
fn pipeline_inserts_are_barriers() {
    let db = corpus(20, 6, 3, 55);
    let probe = b"zzzzzz".to_vec();
    // The probe is far from the alphabet {a,b,c} corpus, so its
    // nearest neighbour changes the moment an exact copy is inserted.
    let mut pipeline =
        QueryPipeline::new(ShardedIndex::try_build(db.clone(), config(2), &Levenshtein).unwrap());
    let responses = pipeline.run(
        &[
            Request::Nn {
                query: probe.clone(),
            },
            Request::Range {
                query: probe.clone(),
                radius: 0.0,
            },
            Request::Insert {
                item: probe.clone(),
            },
            Request::Nn {
                query: probe.clone(),
            },
            Request::Knn {
                query: probe.clone(),
                k: 2,
            },
            Request::Range {
                query: probe.clone(),
                radius: 0.0,
            },
        ],
        &Levenshtein,
    );
    assert_eq!(responses.len(), 6);
    let ResponseBody::Nn {
        neighbour: Some(before),
        ..
    } = &responses[0].body
    else {
        panic!("expected an Nn response, got {:?}", responses[0]);
    };
    assert!(before.distance > 0.0, "no exact copy before the insert");
    let ResponseBody::Range { neighbours, .. } = &responses[1].body else {
        panic!("expected a Range response, got {:?}", responses[1]);
    };
    assert!(neighbours.is_empty(), "no exact copy before the insert");
    assert_eq!(
        responses[2].body,
        ResponseBody::Inserted { index: db.len() },
        "insert lands right after the seed database"
    );
    let ResponseBody::Nn {
        neighbour: Some(after),
        ..
    } = &responses[3].body
    else {
        panic!("expected an Nn response, got {:?}", responses[3]);
    };
    assert_eq!(after.index, db.len(), "the inserted copy is the new NN");
    assert_eq!(after.distance, 0.0);
    let ResponseBody::Knn { neighbours, .. } = &responses[4].body else {
        panic!("expected a Knn response, got {:?}", responses[4]);
    };
    assert_eq!(neighbours[0].index, db.len());
    assert_eq!(neighbours[0].distance, 0.0);
    let ResponseBody::Range { neighbours, .. } = &responses[5].body else {
        panic!("expected a Range response, got {:?}", responses[5]);
    };
    assert_eq!(key(neighbours), vec![(db.len(), 0.0f64.to_bits())]);
}

#[test]
fn pipeline_range_agrees_with_linear_oracle_in_order() {
    // Mixed queue with inserts between range queries: every range
    // answer must equal the linear-scan filter over the index state it
    // was answered at.
    let db = corpus(40, 6, 3, 57);
    let queries = corpus(12, 6, 3, 571);
    let mut requests: Vec<Request<u8>> = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        if i % 4 == 2 {
            requests.push(Request::Insert { item: q.clone() });
        }
        requests.push(Request::Range {
            query: q.clone(),
            radius: 1.0 + (i % 3) as f64,
        });
    }
    let mut pipeline =
        QueryPipeline::new(ShardedIndex::try_build(db.clone(), config(3), &Levenshtein).unwrap());
    let responses = pipeline.run(&requests, &Levenshtein);
    let mut oracle_db = db.clone();
    for (req, resp) in requests.iter().zip(&responses) {
        let resp = &resp.body;
        match (req, resp) {
            (Request::Insert { item }, ResponseBody::Inserted { .. }) => {
                oracle_db.push(item.clone());
            }
            (Request::Range { query, radius }, ResponseBody::Range { neighbours, .. }) => {
                let oracle = LinearIndex::new(oracle_db.clone());
                let (expected, _) = oracle
                    .range(query, &Levenshtein, &QueryOptions::new().radius(*radius))
                    .unwrap();
                assert_eq!(key(neighbours), key(&expected), "query {query:?}");
            }
            _ => panic!("response kind does not match request kind"),
        }
    }
}

#[test]
fn pipeline_is_generic_over_the_trait() {
    // The same pipeline code serves a plain LinearIndex — the trait is
    // the contract, ShardedIndex merely the default backend.
    let db = corpus(25, 6, 3, 59);
    let probe = db[7].clone();
    let mut pipeline: QueryPipeline<u8, LinearIndex<u8>> =
        QueryPipeline::new(LinearIndex::new(db.clone()));
    let responses = pipeline.run(
        &[
            Request::Nn {
                query: probe.clone(),
            },
            Request::Insert {
                item: b"zzzz".to_vec(),
            },
            Request::Nn {
                query: b"zzzz".to_vec(),
            },
        ],
        &Levenshtein,
    );
    let ResponseBody::Nn {
        neighbour: Some(nb),
        ..
    } = &responses[0].body
    else {
        panic!("expected Nn, got {:?}", responses[0]);
    };
    assert_eq!((nb.index, nb.distance), (7, 0.0));
    assert_eq!(
        responses[1].body,
        ResponseBody::Inserted { index: db.len() }
    );
    let ResponseBody::Nn {
        neighbour: Some(nb),
        ..
    } = &responses[2].body
    else {
        panic!("expected Nn, got {:?}", responses[2]);
    };
    assert_eq!((nb.index, nb.distance), (db.len(), 0.0));
}

#[test]
fn sharded_honours_the_pivot_budget_per_shard() {
    // pivot_budget caps every shard's pivot table: results stay
    // identical (it is a computation knob, not a correctness knob),
    // and budget 0 degenerates each shard to a bounded exhaustive
    // scan — exactly n evaluations in total.
    let db = corpus(45, 7, 3, 67);
    let queries = corpus(8, 7, 3, 671);
    let index = ShardedIndex::try_build(db.clone(), config(3), &Levenshtein).unwrap();
    for q in &queries {
        let (full, full_stats) = nn_of(&index, q, &Levenshtein);
        let (zero, zero_stats) = MetricIndex::nn(
            &index,
            q,
            &Levenshtein,
            &QueryOptions::new().pivot_budget(0),
        )
        .unwrap();
        let zero = zero.unwrap();
        assert_eq!(
            (zero.index, zero.distance.to_bits()),
            (full.index, full.distance.to_bits()),
            "query {q:?}"
        );
        assert_eq!(
            zero_stats.distance_computations,
            db.len() as u64,
            "no pivots -> every element computed once, query {q:?}"
        );
        assert!(
            full_stats.distance_computations < zero_stats.distance_computations,
            "the full pivot budget must prune, query {q:?}"
        );
        // Intermediate budgets stay correct for knn and range too.
        let opts = QueryOptions::new().pivot_budget(1).k(4);
        let (knn_b, _) = MetricIndex::knn(&index, q, &Levenshtein, &opts).unwrap();
        assert_eq!(key(&knn_b), key(&knn_of(&index, q, &Levenshtein, 4)));
        let r_opts = QueryOptions::new().pivot_budget(1).radius(2.0);
        let (range_b, _) = MetricIndex::range(&index, q, &Levenshtein, &r_opts).unwrap();
        let (range_full, _) =
            MetricIndex::range(&index, q, &Levenshtein, &QueryOptions::new().radius(2.0)).unwrap();
        assert_eq!(key(&range_b), key(&range_full), "query {q:?}");
    }
}

#[test]
fn invalid_radius_fails_even_on_an_empty_pipeline() {
    // Error reporting must not depend on index state: a malformed
    // radius answers Failed whether or not anything has been inserted
    // yet.
    let empty: ShardedIndex<u8> =
        ShardedIndex::try_build(Vec::new(), ShardConfig::default(), &Levenshtein).unwrap();
    let mut pipeline = QueryPipeline::new(empty);
    let requests = [
        Request::Range {
            query: b"abc".to_vec(),
            radius: f64::NAN,
        },
        Request::Insert {
            item: b"abc".to_vec(),
        },
        Request::Range {
            query: b"abc".to_vec(),
            radius: -1.0,
        },
    ];
    let responses = pipeline.run(&requests, &Levenshtein);
    for i in [0usize, 2] {
        assert!(
            matches!(
                &responses[i].body,
                ResponseBody::Failed {
                    error: SearchError::InvalidRadius { .. }
                }
            ),
            "slot {i}: got {:?}",
            responses[i]
        );
    }
}

#[test]
fn pipeline_surfaces_typed_errors_in_order() {
    let db = corpus(20, 6, 3, 61);
    let mut pipeline =
        QueryPipeline::new(ShardedIndex::try_build(db.clone(), config(2), &Levenshtein).unwrap());
    let responses = pipeline.run(
        &[
            Request::Range {
                query: db[0].clone(),
                radius: f64::NAN,
            },
            Request::Nn {
                query: db[0].clone(),
            },
        ],
        &Levenshtein,
    );
    assert!(
        matches!(
            &responses[0].body,
            ResponseBody::Failed {
                error: SearchError::InvalidRadius { .. }
            }
        ),
        "got {:?}",
        responses[0]
    );
    // The defective request does not poison its neighbours.
    let ResponseBody::Nn {
        neighbour: Some(nb),
        ..
    } = &responses[1].body
    else {
        panic!("expected Nn, got {:?}", responses[1]);
    };
    assert_eq!(nb.distance, 0.0);
}

#[test]
fn empty_index_behaves() {
    let index: ShardedIndex<u8> =
        ShardedIndex::try_build(Vec::new(), ShardConfig::default(), &Levenshtein).unwrap();
    assert!(index.is_empty());
    // Typed errors through the trait surface…
    let opts = QueryOptions::new();
    assert_eq!(
        MetricIndex::nn(&index, b"abc", &Levenshtein, &opts).unwrap_err(),
        SearchError::EmptyDatabase
    );
    assert_eq!(
        MetricIndex::knn(&index, b"abc", &Levenshtein, &opts).unwrap_err(),
        SearchError::EmptyDatabase
    );
    assert_eq!(
        MetricIndex::range(&index, b"abc", &Levenshtein, &opts).unwrap_err(),
        SearchError::EmptyDatabase
    );
    // …but the pipeline treats an empty index as a normal serving
    // state: empty answers, then the insert makes it servable.
    let mut pipeline = QueryPipeline::new(index);
    let responses = pipeline.run(
        &[
            Request::Nn {
                query: b"abc".to_vec(),
            },
            Request::Insert {
                item: b"abc".to_vec(),
            },
            Request::Nn {
                query: b"abc".to_vec(),
            },
        ],
        &Levenshtein,
    );
    assert_eq!(
        responses[0].body,
        ResponseBody::Nn {
            neighbour: None,
            stats: SearchStats::default()
        }
    );
    let ResponseBody::Nn {
        neighbour: Some(nb),
        ..
    } = &responses[2].body
    else {
        panic!("the inserted item must be servable, got {:?}", responses[2]);
    };
    assert_eq!((nb.index, nb.distance), (0, 0.0));
}

#[test]
fn legacy_inherent_paths_match_the_trait_paths() {
    // The deprecated forwarders stay pinned to the trait results —
    // bit-identical neighbours, distances and computation counts —
    // until they are removed.
    #![allow(deprecated)]
    let db = corpus(45, 7, 3, 63);
    let queries = corpus(8, 7, 3, 631);
    let index = ShardedIndex::try_build(db, config(3), &Levenshtein).unwrap();
    for q in &queries {
        let (legacy, legacy_stats) = index.nn(q, &Levenshtein).unwrap();
        let (new, new_stats) = nn_of(&index, q, &Levenshtein);
        assert_eq!(
            (legacy.index, legacy.distance.to_bits()),
            (new.index, new.distance.to_bits())
        );
        assert_eq!(legacy_stats.total(), new_stats);
        let (legacy_knn, _) = index.knn(q, &Levenshtein, 4);
        assert_eq!(key(&legacy_knn), key(&knn_of(&index, q, &Levenshtein, 4)));
    }
}

// ---------------------------------------------------------------------------
// Session/ticket API

use cned_serve::{RequestId, ServeSession, SessionConfig};
use std::sync::Arc;

/// Levenshtein slowed to `delay` per comparison — lets tests hold the
/// scheduler busy deterministically.
#[derive(Debug, Clone, Copy)]
struct SlowLevenshtein(std::time::Duration);

impl Distance<u8> for SlowLevenshtein {
    fn distance(&self, a: &[u8], b: &[u8]) -> f64 {
        std::thread::sleep(self.0);
        Distance::<u8>::distance(&Levenshtein, a, b)
    }
    fn name(&self) -> &'static str {
        "d_E(slow)"
    }
    fn is_metric(&self) -> bool {
        true
    }
}

#[test]
fn session_tickets_resolve_out_of_order_and_carry_ids() {
    let db = corpus(40, 6, 3, 301);
    let queries = corpus(8, 6, 3, 3011);
    // In-process twin of the served index: answers AND computation
    // counts must agree bit-for-bit with what the session serves.
    let twin = ShardedIndex::try_build(db.clone(), config(3), &Levenshtein).unwrap();
    let index = ShardedIndex::try_build(db, config(3), &Levenshtein).unwrap();
    let session = ServeSession::spawn(index, Arc::new(Levenshtein));
    let tickets: Vec<_> = queries
        .iter()
        .map(|q| {
            session
                .submit(Request::Nn { query: q.clone() })
                .expect("under the default depth")
        })
        .collect();
    // Ids are sequential in submission order.
    for (i, t) in tickets.iter().enumerate() {
        assert_eq!(t.id(), RequestId(i as u64));
    }
    // Collect in reverse submission order: correlation is by id.
    for (ticket, q) in tickets.into_iter().rev().zip(queries.iter().rev()) {
        let id = ticket.id();
        let response = ticket.wait();
        assert_eq!(response.id, id, "response tagged with its request id");
        let ResponseBody::Nn {
            neighbour: Some(nb),
            stats,
        } = response.body
        else {
            panic!("expected an Nn body for {q:?}");
        };
        let (l_nn, l_stats) = nn_of(&twin, q, &Levenshtein);
        assert_eq!(
            (nb.index, nb.distance.to_bits()),
            (l_nn.index, l_nn.distance.to_bits())
        );
        assert_eq!(stats, l_stats, "bit-identical computation counts");
    }
    session.shutdown();
}

#[test]
fn session_try_recv_polls_without_blocking() {
    let db = corpus(20, 6, 3, 303);
    let probe = db[3].clone();
    let index = LinearIndex::new(db);
    // Slow enough that the first poll happens while in flight.
    let session = ServeSession::spawn(
        index,
        Arc::new(SlowLevenshtein(std::time::Duration::from_millis(2))),
    );
    let ticket = session
        .submit(Request::Nn {
            query: probe.clone(),
        })
        .unwrap();
    // Poll until it resolves; the first polls typically see None.
    let response = loop {
        if let Some(r) = ticket.try_recv() {
            break r;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    };
    let ResponseBody::Nn {
        neighbour: Some(nb),
        ..
    } = response.body
    else {
        panic!("expected an Nn body");
    };
    assert_eq!(nb.distance, 0.0);
    session.shutdown();
}

#[test]
fn session_overload_returns_typed_backpressure_and_never_grows() {
    let db = corpus(30, 6, 3, 307);
    let queries = corpus(5, 6, 3, 3071);
    let index = LinearIndex::new(db);
    // ~2 ms per comparison x 30 items ≈ 60 ms per query: the scheduler
    // stays busy on the first query while the test floods the queue.
    let session = ServeSession::spawn_with(
        index,
        Arc::new(SlowLevenshtein(std::time::Duration::from_millis(2))),
        SessionConfig::new().queue_depth(2),
    );
    assert_eq!(session.queue_depth(), 2);
    let t0 = session
        .submit(Request::Nn {
            query: queries[0].clone(),
        })
        .expect("first request admitted");
    // Let the scheduler pop it so the queue is empty while it works.
    std::thread::sleep(std::time::Duration::from_millis(20));
    let t1 = session
        .submit(Request::Nn {
            query: queries[1].clone(),
        })
        .expect("queued 1/2");
    let t2 = session
        .submit(Request::Knn {
            query: queries[2].clone(),
            k: 3,
        })
        .expect("queued 2/2");
    // The queue is at depth: admission refuses with a typed error and
    // the queue does not grow.
    let refused = session.submit(Request::Nn {
        query: queries[3].clone(),
    });
    assert_eq!(refused.unwrap_err(), SearchError::Overloaded { depth: 2 });
    assert!(session.pending() <= 2, "no unbounded queue growth");
    // Everything accepted still answers.
    for ticket in [t0, t1, t2] {
        match ticket.wait().body {
            ResponseBody::Nn { .. } | ResponseBody::Knn { .. } => {}
            other => panic!("accepted ticket must answer, got {other:?}"),
        }
    }
    session.shutdown();
}

#[test]
fn session_shutdown_drains_accepted_tickets() {
    let db = corpus(40, 6, 3, 311);
    let queries = corpus(10, 6, 3, 3111);
    let index = ShardedIndex::try_build(db.clone(), config(2), &Levenshtein).unwrap();
    let session = ServeSession::spawn(index, Arc::new(Levenshtein));
    let mut tickets = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        if i == 4 {
            tickets.push(session.submit(Request::Insert { item: q.clone() }).unwrap());
        }
        tickets.push(session.submit(Request::Nn { query: q.clone() }).unwrap());
    }
    // Shut down immediately: every accepted ticket must still resolve
    // to a real answer, none may be dropped.
    let index = session.shutdown();
    assert_eq!(MetricIndex::len(&index), db.len() + 1, "the insert landed");
    for ticket in tickets {
        match ticket.wait().body {
            ResponseBody::Nn { neighbour, .. } => assert!(neighbour.is_some()),
            ResponseBody::Inserted { index } => assert_eq!(index, db.len()),
            other => panic!("drained ticket must hold a real answer, got {other:?}"),
        }
    }
}

#[test]
fn session_refuses_submissions_after_shutdown_began() {
    // Dropping the session begins draining; a clone of nothing — use
    // the scoped path instead: begin_drain is internal, so drive it
    // through shutdown() ordering: after shutdown() the session is
    // consumed, which *is* the API-level guarantee. What remains
    // observable is Shutdown on a draining session via Drop — covered
    // by the wire tests (server drains). Here: a fresh session still
    // accepts, proving the error is not sticky across instances.
    let index = LinearIndex::new(corpus(10, 5, 2, 313));
    let session = ServeSession::spawn(index, Arc::new(Levenshtein));
    assert!(session
        .submit(Request::Nn {
            query: b"ab".to_vec()
        })
        .is_ok());
    session.shutdown();
}

#[test]
fn session_over_boxed_dyn_index_answers_and_rejects_inserts_typed() {
    // A session can own any `Box<dyn MetricIndex>`; backends without
    // insert support answer Insert with a typed failure instead of
    // refusing to compile.
    let db = corpus(30, 6, 3, 317);
    let pivots = select_pivots_max_sum(&db, 4, 0, &Levenshtein);
    let boxed: Box<dyn MetricIndex<u8>> =
        Box::new(Laesa::try_build(db.clone(), pivots, &Levenshtein).unwrap());
    let session = ServeSession::spawn(boxed, Arc::new(Levenshtein));
    let probe = db[5].clone();
    let t_nn = session
        .submit(Request::Nn {
            query: probe.clone(),
        })
        .unwrap();
    let t_ins = session.submit(Request::Insert { item: probe }).unwrap();
    let ResponseBody::Nn {
        neighbour: Some(nb),
        ..
    } = t_nn.wait().body
    else {
        panic!("expected an Nn body");
    };
    assert_eq!(nb.distance, 0.0);
    assert!(
        matches!(
            t_ins.wait().body,
            ResponseBody::Failed {
                error: SearchError::UnsupportedConfig { .. }
            }
        ),
        "LAESA does not insert; the failure is typed, not a panic"
    );
    session.shutdown();
}

#[test]
fn pipeline_run_ids_match_request_positions() {
    let db = corpus(25, 6, 3, 331);
    let mut pipeline =
        QueryPipeline::new(ShardedIndex::try_build(db.clone(), config(2), &Levenshtein).unwrap());
    let requests: Vec<Request<u8>> = db
        .iter()
        .take(6)
        .map(|q| Request::Nn { query: q.clone() })
        .collect();
    let responses = pipeline.run(&requests, &Levenshtein);
    for (i, response) in responses.iter().enumerate() {
        assert_eq!(response.id, RequestId(i as u64));
    }
}

// ---------------------------------------------------------------------------
// Shard rebalancing

#[test]
fn rebalancing_merges_small_shards_and_answers_stay_bit_identical() {
    let db = corpus(40, 6, 3, 401);
    let extra = corpus(24, 6, 3, 4011);
    let queries = corpus(12, 6, 3, 40111);
    let mk = |min_fill_percent: u8| -> ShardedIndex<u8> {
        let cfg = ShardConfig {
            shards: 2,
            pivots_per_shard: 4,
            compact_threshold: 4,
            min_fill_percent,
        };
        let mut index = ShardedIndex::try_build(db.clone(), cfg, &Levenshtein).unwrap();
        for item in &extra {
            index.insert(item.clone(), &Levenshtein);
        }
        index
    };
    let append_only = mk(0);
    let rebalanced = mk(50);
    // 24 inserts at threshold 4 → 6 tiny appended shards without
    // rebalancing; with it they merge towards the balanced target.
    assert!(
        rebalanced.num_shards() < append_only.num_shards(),
        "rebalancing must reduce the shard count: {} vs {}",
        rebalanced.num_shards(),
        append_only.num_shards()
    );
    // Results are bit-identical between the two layouts (and right,
    // per the linear oracle): the layout is a performance knob only.
    let mut all = db.clone();
    all.extend(extra.iter().cloned());
    let oracle = LinearIndex::new(all);
    for q in &queries {
        let (a_nn, _) = nn_of(&append_only, q, &Levenshtein);
        let (r_nn, _) = nn_of(&rebalanced, q, &Levenshtein);
        let (l_nn, _) = nn_of(&oracle, q, &Levenshtein);
        assert_eq!(
            (a_nn.index, a_nn.distance.to_bits()),
            (r_nn.index, r_nn.distance.to_bits()),
            "query {q:?}"
        );
        assert_eq!(
            (r_nn.index, r_nn.distance.to_bits()),
            (l_nn.index, l_nn.distance.to_bits())
        );
        assert_eq!(
            key(&knn_of(&rebalanced, q, &Levenshtein, 5)),
            key(&knn_of(&oracle, q, &Levenshtein, 5)),
            "query {q:?}"
        );
        let opts = QueryOptions::new().radius(2.0);
        let (r_range, _) = rebalanced.range(q, &Levenshtein, &opts).unwrap();
        let (l_range, _) = oracle.range(q, &Levenshtein, &opts).unwrap();
        assert_eq!(key(&r_range), key(&l_range), "query {q:?}");
    }
}

#[test]
fn explicit_rebalance_preserves_results_bit_identically() {
    // Build an append-only layout full of tiny shards, snapshot every
    // answer, force a rebalance, and demand the identical snapshot.
    let db = corpus(30, 6, 3, 403);
    let extra = corpus(20, 6, 3, 4031);
    let queries = corpus(10, 6, 3, 40311);
    let cfg = ShardConfig {
        shards: 2,
        pivots_per_shard: 4,
        compact_threshold: 4,
        min_fill_percent: 0, // append-only until the explicit call
    };
    let mut index = ShardedIndex::try_build(db.clone(), cfg, &Levenshtein).unwrap();
    for item in &extra {
        index.insert(item.clone(), &Levenshtein);
    }
    let shards_before = index.num_shards();
    type ResultKey = Vec<(Vec<(usize, u64)>, Vec<(usize, u64)>)>;
    let snapshot = |index: &ShardedIndex<u8>| -> ResultKey {
        queries
            .iter()
            .map(|q| {
                let (nns, _) =
                    MetricIndex::knn(index, q, &Levenshtein, &QueryOptions::new().k(6)).unwrap();
                let (hits, _) = index
                    .range(q, &Levenshtein, &QueryOptions::new().radius(2.0))
                    .unwrap();
                (key(&nns), key(&hits))
            })
            .collect()
    };
    let before = snapshot(&index);
    let merges = index.rebalance(80, &Levenshtein);
    assert!(merges > 0, "tiny shards must be merged");
    assert!(index.num_shards() < shards_before);
    assert_eq!(
        snapshot(&index),
        before,
        "bit-identical before/after rebalance"
    );
    // The rebalanced index still accepts inserts and stays correct.
    let probe = b"zzzzzz".to_vec();
    let at = index.insert(probe.clone(), &Levenshtein);
    assert_eq!(at, db.len() + extra.len());
    let (nn, _) = nn_of(&index, &probe, &Levenshtein);
    assert_eq!((nn.index, nn.distance), (at, 0.0));
}
