//! Wire-protocol tests: codec round-trips and malformed-input
//! hardening as property tests, plus loopback `Server`/`Client`
//! integration oracle-checked bit-identical against in-process
//! queries on `d_E`, `d_YB` and `d_C`, shards {1, 4}, and concurrent
//! client connections.

use cned_core::contextual::exact::Contextual;
use cned_core::levenshtein::Levenshtein;
use cned_core::metric::Distance;
use cned_core::normalized::yujian_bo::YujianBo;
use cned_search::{MetricIndex, Neighbour, QueryOptions, SearchError, SearchStats};
use cned_serve::wire::{self, WireError};
use cned_serve::{
    Client, Request, RequestId, Response, ResponseBody, Server, ShardConfig, ShardedIndex,
};
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Codec property tests

fn word() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..=255, 0..=24)
}

fn request() -> impl Strategy<Value = Request<u8>> {
    prop_oneof![
        word().prop_map(|query| Request::Nn { query }),
        (word(), 0usize..50).prop_map(|(query, k)| Request::Knn { query, k }),
        (word(), 0.0f64..10.0).prop_map(|(query, radius)| Request::Range { query, radius }),
        word().prop_map(|item| Request::Insert { item }),
    ]
}

fn neighbours() -> impl Strategy<Value = Vec<Neighbour>> {
    proptest::collection::vec(
        (0usize..100_000, 0.0f64..100.0)
            .prop_map(|(index, distance)| Neighbour { index, distance }),
        0..=12,
    )
}

fn stats() -> impl Strategy<Value = SearchStats> {
    (0u64..1_000_000).prop_map(|distance_computations| SearchStats {
        distance_computations,
    })
}

/// Every error variant except `UnsupportedConfig`, whose `&'static`
/// reason cannot round-trip a dynamic string (tested separately).
fn search_error() -> impl Strategy<Value = SearchError> {
    prop_oneof![
        (0usize..1).prop_map(|_| SearchError::EmptyDatabase),
        (0usize..500, 0usize..500)
            .prop_map(|(pivot, len)| SearchError::PivotOutOfRange { pivot, len }),
        (0usize..500).prop_map(|pivot| SearchError::DuplicatePivot { pivot }),
        (-5.0f64..5.0).prop_map(|radius| SearchError::InvalidRadius { radius }),
        (0usize..500, 0usize..500)
            .prop_map(|(labels, items)| SearchError::LabelCount { labels, items }),
        (0usize..100_000).prop_map(|depth| SearchError::Overloaded { depth }),
        (0usize..1).prop_map(|_| SearchError::Shutdown),
    ]
}

fn response_body() -> impl Strategy<Value = ResponseBody> {
    prop_oneof![
        (
            proptest::bool::weighted(0.5),
            (0usize..100_000, 0.0f64..100.0),
            stats()
        )
            .prop_map(|(some, (index, distance), stats)| ResponseBody::Nn {
                neighbour: some.then_some(Neighbour { index, distance }),
                stats,
            }),
        (neighbours(), stats())
            .prop_map(|(neighbours, stats)| ResponseBody::Knn { neighbours, stats }),
        (neighbours(), stats())
            .prop_map(|(neighbours, stats)| ResponseBody::Range { neighbours, stats }),
        (0usize..100_000).prop_map(|index| ResponseBody::Inserted { index }),
        search_error().prop_map(|error| ResponseBody::Failed { error }),
    ]
}

proptest! {
    #[test]
    fn every_request_variant_roundtrips(id in 0u64..u64::MAX, req in request()) {
        let mut payload = Vec::new();
        wire::encode_request(RequestId(id), &req, &mut payload);
        let (got_id, got) = wire::decode_request::<u8>(&payload)
            .map_err(|e| e.to_string())?;
        prop_assert_eq!(got_id, RequestId(id));
        prop_assert_eq!(got, req);
    }

    #[test]
    fn every_response_variant_roundtrips(id in 0u64..u64::MAX, body in response_body()) {
        let response = Response { id: RequestId(id), body };
        let mut payload = Vec::new();
        wire::encode_response(&response, &mut payload);
        let got = wire::decode_response(&payload).map_err(|e| e.to_string())?;
        prop_assert_eq!(got, response);
    }

    #[test]
    fn truncated_frames_are_typed_errors_not_panics(req in request(), body in response_body()) {
        let mut payload = Vec::new();
        wire::encode_request(RequestId(7), &req, &mut payload);
        for cut in 0..payload.len() {
            prop_assert!(
                wire::decode_request::<u8>(&payload[..cut]).is_err(),
                "request prefix of {} bytes must not decode", cut
            );
        }
        let response = Response { id: RequestId(7), body };
        wire::encode_response(&response, &mut payload);
        for cut in 0..payload.len() {
            prop_assert!(
                wire::decode_response(&payload[..cut]).is_err(),
                "response prefix of {} bytes must not decode", cut
            );
        }
    }

    #[test]
    fn garbage_bytes_never_panic_the_decoders(bytes in proptest::collection::vec(0u8..=255, 0..=64)) {
        // Any outcome is fine except a panic; decoding garbage usually
        // errors, and the rare syntactically-valid accident is allowed.
        let _ = wire::decode_request::<u8>(&bytes);
        let _ = wire::decode_response(&bytes);
        let mut fb = wire::FrameBuffer::new();
        fb.extend(&bytes);
        let _ = fb.next_frame();
    }

    #[test]
    fn batch_frames_reassemble_byte_by_byte_between_hostile_frames(
        id in 0u64..u64::MAX / 2,
        reqs in proptest::collection::vec(request(), 0..=5),
        bodies in proptest::collection::vec(response_body(), 0..=5),
        garbage in proptest::collection::vec(0u8..=255, 1..=32),
    ) {
        let mut garbage = garbage;
        // Force the garbage frame to be undecodable (a random first
        // byte could accidentally be the real version).
        if garbage[0] == wire::WIRE_VERSION {
            garbage[0] = wire::WIRE_VERSION + 1;
        }
        // A hostile stream: good batch frames interleaved with a
        // version-mismatch frame and a garbage frame. Framing is
        // version-agnostic, so the FrameBuffer must deliver all five
        // frames; the decode layer rejects the hostile ones without
        // poisoning their neighbours.
        let mut stream = Vec::new();
        let mut payload = Vec::new();
        wire::encode_batch_request(RequestId(id), &reqs, &mut payload);
        wire::write_frame_unflushed(&mut stream, &payload).unwrap();

        let mut bad_version = Vec::new();
        wire::encode_request::<u8>(
            RequestId(1),
            &Request::Nn { query: b"q".to_vec() },
            &mut bad_version,
        );
        bad_version[0] = wire::WIRE_VERSION + 1;
        wire::write_frame_unflushed(&mut stream, &bad_version).unwrap();

        wire::encode_batch_response(RequestId(id), &bodies, &mut payload);
        wire::write_frame_unflushed(&mut stream, &payload).unwrap();

        wire::write_frame_unflushed(&mut stream, &garbage).unwrap();

        wire::encode_batch_request(RequestId(id + 1), &reqs, &mut payload);
        wire::write_frame_unflushed(&mut stream, &payload).unwrap();

        // Feed ONE byte at a time: every frame boundary and every
        // intra-frame split point is exercised in a single pass.
        let mut fb = wire::FrameBuffer::new();
        let mut frames = Vec::new();
        for b in &stream {
            fb.extend(std::slice::from_ref(b));
            while let Some(frame) = fb.next_frame().map_err(|e| {
                e.to_string()
            })? {
                frames.push(frame);
            }
        }
        prop_assert_eq!(frames.len(), 5);
        prop_assert_eq!(fb.pending(), 0);

        let (got_id, got) = wire::decode_request_frame::<u8>(&frames[0])
            .map_err(|e| e.to_string())?;
        prop_assert_eq!(got_id, RequestId(id));
        prop_assert_eq!(&got, &wire::WireRequest::Batch(reqs.clone()));

        prop_assert_eq!(
            wire::decode_request_frame::<u8>(&frames[1]).unwrap_err(),
            WireError::BadVersion { got: wire::WIRE_VERSION + 1 }
        );

        let resp = wire::decode_response_frame(&frames[2])
            .map_err(|e| e.to_string())?;
        prop_assert_eq!(resp, wire::WireResponse::Batch(RequestId(id), bodies));

        prop_assert!(wire::decode_request_frame::<u8>(&frames[3]).is_err());
        prop_assert!(wire::decode_response_frame(&frames[3]).is_err());

        let (got_id, got) = wire::decode_request_frame::<u8>(&frames[4])
            .map_err(|e| e.to_string())?;
        prop_assert_eq!(got_id, RequestId(id + 1));
        prop_assert_eq!(got, wire::WireRequest::Batch(reqs));
    }

    #[test]
    fn oversize_length_prefixes_are_rejected_at_the_framing_layer(
        extra in 1u32..1024,
        junk in proptest::collection::vec(0u8..=255, 0..=16),
    ) {
        // A length prefix past MAX_FRAME must fail before any
        // allocation of that size — an allocation-bomb guard, not an
        // OOM.
        let mut fb = wire::FrameBuffer::new();
        fb.extend(&(wire::MAX_FRAME + extra).to_le_bytes());
        fb.extend(&junk);
        prop_assert!(matches!(
            fb.next_frame(),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn trailing_garbage_is_rejected(req in request(), extra in 1usize..16) {
        let mut payload = Vec::new();
        wire::encode_request(RequestId(3), &req, &mut payload);
        payload.extend(std::iter::repeat_n(0xAAu8, extra));
        prop_assert!(matches!(
            wire::decode_request::<u8>(&payload),
            Err(WireError::BadPayload { .. })
        ));
    }
}

#[test]
fn version_mismatch_is_a_typed_error() {
    let mut payload = Vec::new();
    wire::encode_request::<u8>(
        RequestId(1),
        &Request::Nn {
            query: b"q".to_vec(),
        },
        &mut payload,
    );
    payload[0] = wire::WIRE_VERSION + 1;
    assert_eq!(
        wire::decode_request::<u8>(&payload).unwrap_err(),
        WireError::BadVersion {
            got: wire::WIRE_VERSION + 1
        }
    );
}

#[test]
fn nan_radius_roundtrips_bit_exactly() {
    // A NaN radius is a *served* value (it answers Failed), so the
    // codec must carry it; PartialEq can't compare it, bits can.
    let mut payload = Vec::new();
    wire::encode_request::<u8>(
        RequestId(2),
        &Request::Range {
            query: b"q".to_vec(),
            radius: f64::NAN,
        },
        &mut payload,
    );
    let (_, got) = wire::decode_request::<u8>(&payload).unwrap();
    let Request::Range { radius, .. } = got else {
        panic!("expected Range");
    };
    assert_eq!(radius.to_bits(), f64::NAN.to_bits());
}

#[test]
fn unsupported_config_maps_to_its_code_with_canonical_reason() {
    let mut payload = Vec::new();
    let original = SearchError::UnsupportedConfig {
        reason: "sharding is only available for the LAESA backend",
    };
    wire::encode_response(
        &Response {
            id: RequestId(4),
            body: ResponseBody::Failed {
                error: original.clone(),
            },
        },
        &mut payload,
    );
    let got = wire::decode_response(&payload).unwrap();
    let ResponseBody::Failed { error } = got.body else {
        panic!("expected Failed");
    };
    // The variant (and wire code) survive; the human-readable reason
    // is canonicalised because the type holds a &'static str.
    assert_eq!(error.code(), original.code());
    assert!(matches!(error, SearchError::UnsupportedConfig { .. }));
}

// ---------------------------------------------------------------------------
// Loopback Server/Client integration

/// Deterministic pseudo-random word corpus (xorshift).
fn corpus(n: usize, len: usize, alphabet: u8, seed: u64) -> Vec<Vec<u8>> {
    let mut state = seed | 1;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|_| {
            let l = 1 + (rng() % len as u64) as usize;
            (0..l)
                .map(|_| b'a' + (rng() % alphabet as u64) as u8)
                .collect()
        })
        .collect()
}

fn key(ns: &[Neighbour]) -> Vec<(usize, u64)> {
    ns.iter().map(|n| (n.index, n.distance.to_bits())).collect()
}

fn build(db: &[Vec<u8>], shards: usize, dist: &dyn Distance<u8>) -> ShardedIndex<u8> {
    ShardedIndex::try_build(
        db.to_vec(),
        ShardConfig {
            shards,
            pivots_per_shard: 4,
            compact_threshold: 8,
            ..ShardConfig::default()
        },
        dist,
    )
    .unwrap()
}

/// One expected answer set per query, captured in-process.
struct Expected {
    nn: (Option<Neighbour>, SearchStats),
    knn: (Vec<Neighbour>, SearchStats),
    range: (Vec<Neighbour>, SearchStats),
}

#[test]
fn loopback_answers_are_bit_identical_across_metrics_shards_and_connections() {
    let db = corpus(36, 7, 3, 1009);
    let queries = corpus(6, 7, 3, 10091);
    let metrics: [(&str, Arc<dyn Distance<u8>>); 3] = [
        ("d_E", Arc::new(Levenshtein)),
        ("d_YB", Arc::new(YujianBo)),
        ("d_C", Arc::new(Contextual)),
    ];
    for (name, dist) in metrics {
        for shards in [1usize, 4] {
            // In-process twin: the oracle for answers AND stats.
            let twin = build(&db, shards, &*dist);
            let radius = 1.0;
            let expected: Vec<Expected> = queries
                .iter()
                .map(|q| Expected {
                    nn: MetricIndex::nn(&twin, q, &*dist, &QueryOptions::new()).unwrap(),
                    knn: MetricIndex::knn(&twin, q, &*dist, &QueryOptions::new().k(4)).unwrap(),
                    range: MetricIndex::range(
                        &twin,
                        q,
                        &*dist,
                        &QueryOptions::new().radius(radius),
                    )
                    .unwrap(),
                })
                .collect();
            let expected = Arc::new(expected);
            let queries = Arc::new(queries.clone());

            let served = build(&db, shards, &*dist);
            let server =
                Server::bind("127.0.0.1:0", served, Arc::clone(&dist)).expect("bind loopback");
            let addr = server.local_addr();

            // Two concurrent connections, each checking the full set.
            let workers: Vec<_> = (0..2)
                .map(|conn| {
                    let expected = Arc::clone(&expected);
                    let queries = Arc::clone(&queries);
                    std::thread::spawn(move || {
                        let mut client: Client<u8> =
                            Client::connect(addr).expect("loopback connect");
                        for (q, exp) in queries.iter().zip(expected.iter()) {
                            let label = format!("conn {conn} query {q:?}");
                            let (nn, nn_stats) = client.nn(q).unwrap();
                            let (e_nn, e_stats) = exp.nn;
                            assert_eq!(
                                nn.map(|n| (n.index, n.distance.to_bits())),
                                e_nn.map(|n| (n.index, n.distance.to_bits())),
                                "{label}"
                            );
                            assert_eq!(nn_stats, e_stats, "{label}");
                            let (knn, knn_stats) = client.knn(q, 4).unwrap();
                            assert_eq!(key(&knn), key(&exp.knn.0), "{label}");
                            assert_eq!(knn_stats, exp.knn.1, "{label}");
                            let (hits, range_stats) = client.range(q, 1.0).unwrap();
                            assert_eq!(key(&hits), key(&exp.range.0), "{label}");
                            assert_eq!(range_stats, exp.range.1, "{label}");
                        }
                    })
                })
                .collect();
            for w in workers {
                w.join()
                    .unwrap_or_else(|_| panic!("{name} shards {shards}: worker panicked"));
            }
            server.shutdown();
        }
    }
}

#[test]
fn pipelined_tickets_over_the_wire_with_insert_barrier() {
    let db = corpus(30, 6, 3, 1013);
    let index = build(&db, 2, &Levenshtein);
    let server = Server::bind("127.0.0.1:0", index, Arc::new(Levenshtein)).unwrap();
    let mut client: Client<u8> = Client::connect(server.local_addr()).unwrap();

    let probe = b"zzzzzz".to_vec();
    // Pipeline: NN (miss), insert barrier, NN (hit) — all in flight
    // before anything is collected; collect out of order.
    let t_before = client
        .submit(Request::Nn {
            query: probe.clone(),
        })
        .unwrap();
    let t_insert = client
        .submit(Request::Insert {
            item: probe.clone(),
        })
        .unwrap();
    let t_after = client
        .submit(Request::Nn {
            query: probe.clone(),
        })
        .unwrap();
    assert_eq!(t_before.id(), RequestId(0));
    assert_eq!(t_insert.id(), RequestId(1));
    assert_eq!(t_after.id(), RequestId(2));
    // One flush ships all three buffered frames in one syscall.
    client.flush().unwrap();

    // Collect the last first: ids, not arrival order, correlate.
    let after = t_after.wait();
    assert_eq!(after.id, RequestId(2));
    let ResponseBody::Nn {
        neighbour: Some(nb),
        ..
    } = after.body
    else {
        panic!("expected Nn");
    };
    assert_eq!(
        (nb.index, nb.distance),
        (db.len(), 0.0),
        "post-barrier NN is the insert"
    );
    let inserted = t_insert.wait();
    assert_eq!(inserted.body, ResponseBody::Inserted { index: db.len() });
    let before = t_before.wait();
    assert_eq!(before.id, RequestId(0));
    let ResponseBody::Nn {
        neighbour: Some(nb),
        ..
    } = before.body
    else {
        panic!("expected Nn");
    };
    assert!(nb.distance > 0.0, "pre-barrier NN must not see the insert");

    // Server-side errors travel typed: a NaN radius answers Failed.
    let failed = client
        .call(Request::Range {
            query: probe,
            radius: f64::NAN,
        })
        .unwrap();
    assert!(matches!(
        failed,
        ResponseBody::Failed {
            error: SearchError::InvalidRadius { .. }
        }
    ));
    drop(client);
    let index = server.shutdown();
    assert_eq!(
        MetricIndex::len(&index),
        db.len() + 1,
        "the insert drained into the index"
    );
}

#[test]
fn garbage_frames_close_the_connection_but_not_the_server() {
    use std::io::Write;
    let db = corpus(20, 6, 3, 1019);
    let index = build(&db, 2, &Levenshtein);
    let server = Server::bind("127.0.0.1:0", index, Arc::new(Levenshtein)).unwrap();
    let addr = server.local_addr();

    // A raw socket spewing garbage: the server must drop it...
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    let mut garbage = Vec::new();
    garbage.extend_from_slice(&8u32.to_le_bytes());
    garbage.extend_from_slice(&[0xFF; 8]); // bad version byte
    raw.write_all(&garbage).unwrap();
    let mut buf = Vec::new();
    match wire::read_frame(&mut raw, &mut buf) {
        Ok(None) | Err(_) => {} // connection closed without a response
        Ok(Some(())) => panic!("server must not answer a garbage frame"),
    }

    // ...while staying healthy for well-formed clients.
    let mut client: Client<u8> = Client::connect(addr).unwrap();
    let (nn, _) = client.nn(&db[0]).unwrap();
    assert_eq!(nn.unwrap().distance, 0.0);
    drop(client);
    server.shutdown();
}

#[test]
fn client_tickets_fail_typed_when_the_server_disappears() {
    let db = corpus(15, 5, 2, 1021);
    let index = build(&db, 1, &Levenshtein);
    let server = Server::bind("127.0.0.1:0", index, Arc::new(Levenshtein)).unwrap();
    let mut client: Client<u8> = Client::connect(server.local_addr()).unwrap();
    // Prove the connection works, then tear the server down.
    let (nn, _) = client.nn(&db[1]).unwrap();
    assert_eq!(nn.unwrap().distance, 0.0);
    server.shutdown();
    // Submissions (or their tickets) now fail with typed errors, not
    // hangs or panics.
    match client.submit(Request::Nn {
        query: db[2].clone(),
    }) {
        Err(_) => {} // write failed fast
        Ok(ticket) => {
            let response = ticket.wait();
            assert!(
                matches!(
                    response.body,
                    ResponseBody::Failed {
                        error: SearchError::Shutdown
                    }
                ),
                "got {response:?}"
            );
        }
    }
}
