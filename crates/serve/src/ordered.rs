//! Rank-ordered mutexes: the runtime half of the lock-order story.
//!
//! `cned-lint`'s lock pass proves the *static* acquisition graph of
//! this crate acyclic; [`OrderedMutex`] enforces the same discipline
//! dynamically in debug builds. Every lock carries a rank, and a
//! thread may only acquire a lock whose rank is **strictly greater**
//! than every rank it already holds — any interleaving the lint could
//! not see (trait objects, closures, future refactors) trips an
//! assertion in the debug-mode test suites instead of deadlocking in
//! production.
//!
//! In release builds the wrapper is a transparent
//! [`std::sync::Mutex`]: no thread-local bookkeeping, no extra
//! branches.
//!
//! The declared order (gaps left for future locks):
//!
//! | rank | lock                    |
//! |-----:|-------------------------|
//! | 10   | `SessionShared::state`  |
//! | 20   | client `Shared::fatal`  |
//! | 21   | client `Shared::pending`|
//! | 30   | store `StoreShared::subs` (cned-store) |
//! | 31   | store `StoreShared::files` (cned-store) |

use std::ops::{Deref, DerefMut};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Declared acquisition ranks, one per lock in the crate. Strictly
/// increasing along every permitted acquisition path.
pub mod rank {
    /// The session queue (`SessionShared::state`).
    pub const SESSION_STATE: u8 = 10;
    /// The client's connection-fatal flag (`Shared::fatal`).
    pub const CLIENT_FATAL: u8 = 20;
    /// The client's pending-response map (`Shared::pending`).
    pub const CLIENT_PENDING: u8 = 21;
    /// `cned-store`'s replica-subscriber list (`StoreShared::subs`).
    pub const STORE_SUBS: u8 = 30;
    /// `cned-store`'s on-disk file set (`StoreShared::files`).
    pub const STORE_FILES: u8 = 31;
}

#[cfg(debug_assertions)]
mod held {
    use std::cell::RefCell;

    thread_local! {
        /// Ranks this thread currently holds, in acquisition order.
        /// The ordering invariant keeps the stack strictly increasing,
        /// so the top is also the maximum.
        static HELD: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
    }

    pub(super) fn acquire(rank: u8, name: &str) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(&top) = held.last() {
                assert!(
                    top < rank,
                    "lock-order violation: acquiring `{name}` (rank {rank}) \
                     while holding a lock of rank {top}; ranks must be \
                     strictly increasing along every acquisition path"
                );
            }
            held.push(rank);
        });
    }

    pub(super) fn release(rank: u8) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            let pos = held
                .iter()
                .rposition(|&r| r == rank)
                .expect("releasing a rank this thread does not hold");
            held.remove(pos);
        });
    }
}

/// A [`Mutex`] with a declared acquisition rank (see module docs).
#[derive(Debug)]
pub struct OrderedMutex<T> {
    inner: Mutex<T>,
    #[cfg(debug_assertions)]
    rank: u8,
    #[cfg(debug_assertions)]
    name: &'static str,
}

impl<T> OrderedMutex<T> {
    /// Wrap `value` under `rank`/`name`. Both are compiled out in
    /// release builds.
    pub fn new(rank: u8, name: &'static str, value: T) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = (rank, name);
        OrderedMutex {
            inner: Mutex::new(value),
            #[cfg(debug_assertions)]
            rank,
            #[cfg(debug_assertions)]
            name,
        }
    }

    /// Acquire, asserting the rank order in debug builds. Poisoning is
    /// converted to a panic: every holder in this crate keeps its
    /// critical section panic-free, so a poisoned lock is itself a
    /// bug.
    pub fn lock(&self) -> OrderedGuard<'_, T> {
        #[cfg(debug_assertions)]
        held::acquire(self.rank, self.name);
        OrderedGuard {
            guard: Some(self.inner.lock().expect("ordered mutex never poisoned")),
            #[cfg(debug_assertions)]
            rank: self.rank,
        }
    }
}

/// Guard returned by [`OrderedMutex::lock`]; releases the rank on
/// drop.
#[derive(Debug)]
pub struct OrderedGuard<'a, T> {
    /// `None` only transiently inside [`OrderedGuard::wait`] and after
    /// drop bookkeeping.
    guard: Option<MutexGuard<'a, T>>,
    #[cfg(debug_assertions)]
    rank: u8,
}

impl<'a, T> OrderedGuard<'a, T> {
    /// Block on `cv`, releasing the lock while asleep (and its rank —
    /// another thread takes the lock in between) and reacquiring both
    /// on wake. The session scheduler parks here waiting for work.
    pub fn wait(mut self, cv: &Condvar) -> OrderedGuard<'a, T> {
        #[cfg(debug_assertions)]
        let rank = self.rank;
        #[cfg(debug_assertions)]
        held::release(rank);
        let inner = self.guard.take().expect("guard intact before wait");
        let inner = cv.wait(inner).expect("ordered mutex never poisoned");
        #[cfg(debug_assertions)]
        held::acquire(rank, "reacquire after condvar wait");
        OrderedGuard {
            guard: Some(inner),
            #[cfg(debug_assertions)]
            rank,
        }
    }
}

impl<T> Deref for OrderedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard intact")
    }
}

impl<T> DerefMut for OrderedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard intact")
    }
}

impl<T> Drop for OrderedGuard<'_, T> {
    fn drop(&mut self) {
        // Release the inner guard first, then the rank bookkeeping —
        // `wait` leaves `guard` empty and accounts for its own rank.
        if self.guard.take().is_some() {
            #[cfg(debug_assertions)]
            held::release(self.rank);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increasing_order_is_fine() {
        let a = OrderedMutex::new(1, "a", 0u32);
        let b = OrderedMutex::new(2, "b", 0u32);
        let ga = a.lock();
        let gb = b.lock();
        drop(gb);
        drop(ga);
        // Reacquisition after release is fine too.
        let gb = b.lock();
        drop(gb);
        let ga = a.lock();
        drop(ga);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "rank checks are debug-only")]
    fn decreasing_order_panics() {
        let result = std::thread::spawn(|| {
            let a = OrderedMutex::new(1, "a", 0u32);
            let b = OrderedMutex::new(2, "b", 0u32);
            let _gb = b.lock();
            let _ga = a.lock(); // rank 1 while holding rank 2
        })
        .join();
        assert!(result.is_err(), "expected a lock-order panic");
    }

    #[test]
    fn condvar_wait_keeps_bookkeeping_balanced() {
        use std::sync::{Arc, Condvar};
        let lock = Arc::new(OrderedMutex::new(1, "w", false));
        let cv = Arc::new(Condvar::new());
        let (l2, c2) = (Arc::clone(&lock), Arc::clone(&cv));
        let waiter = std::thread::spawn(move || {
            let mut g = l2.lock();
            while !*g {
                g = g.wait(&c2);
            }
        });
        loop {
            let mut g = lock.lock();
            *g = true;
            cv.notify_all();
            drop(g);
            if waiter.is_finished() {
                break;
            }
            std::thread::yield_now();
        }
        waiter.join().unwrap();
        // The waiter thread exited cleanly: wait() repushed and the
        // final drop released — no unbalanced-rank panic.
    }
}
