//! [`ShardedIndex`] — the database partitioned into contiguous LAESA
//! shards, queried with cross-shard bound propagation (see the crate
//! docs for the invariant), plus a linearly-scanned delta shard for
//! incremental inserts.
//!
//! Global result indices are positions in the concatenated database
//! (shard 0's items, then shard 1's, …, then the delta shard), which
//! for an index built by [`ShardedIndex::build`] is exactly the input
//! order — so results are interchangeable with a single-index or
//! linear-scan run over the same data.

use cned_core::metric::{Distance, PreparedQuery};
use cned_core::Symbol;
use cned_search::laesa::Laesa;
use cned_search::linear::{knn_scan_into, nn_scan_into, range_scan_into};
use cned_search::pivots::select_pivots_max_sum;
use cned_search::{
    par_map, InsertableIndex, MetricIndex, Neighbour, QueryOptions, SearchError, SearchStats,
    TombstoneSet,
};

/// Shape of a [`ShardedIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of LAESA shards the initial database is split into
    /// (clamped to the database size; at least 1).
    pub shards: usize,
    /// Max-sum pivots per shard (clamped to each shard's size).
    pub pivots_per_shard: usize,
    /// Delta-shard size that triggers compaction: once this many
    /// inserts accumulate, they are rebuilt into a fresh LAESA shard.
    pub compact_threshold: usize,
    /// Rebalancing floor, as a percentage of the size-balanced shard
    /// size (`indexed items / shards`). After each compaction, runs of
    /// **two or more consecutive** shards each smaller than
    /// `target * min_fill_percent / 100` are merged back into
    /// target-sized shards (see [`ShardedIndex::rebalance`]). `0`
    /// disables rebalancing, reproducing the old append-only layout.
    pub min_fill_percent: u8,
}

impl Default for ShardConfig {
    fn default() -> ShardConfig {
        ShardConfig {
            shards: 4,
            pivots_per_shard: 16,
            compact_threshold: 64,
            min_fill_percent: 50,
        }
    }
}

struct Shard<S: Symbol> {
    /// Global index of this shard's first element.
    offset: usize,
    index: Laesa<S>,
}

/// Per-query statistics of a sharded search: one [`SearchStats`] per
/// shard (in shard order) plus the delta-shard scan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardedStats {
    /// Statistics per LAESA shard, in shard order.
    pub per_shard: Vec<SearchStats>,
    /// Statistics of the linear delta-shard scan.
    pub delta: SearchStats,
}

impl ShardedStats {
    /// Totals across all shards and the delta scan.
    pub fn total(&self) -> SearchStats {
        self.per_shard.iter().fold(self.delta, |acc, s| acc + *s)
    }
}

/// A database partitioned into `k` LAESA shards plus a delta shard.
pub struct ShardedIndex<S: Symbol> {
    shards: Vec<Shard<S>>,
    /// Items inserted since the last compaction; global indices
    /// `indexed_len..indexed_len + delta.len()`, scanned linearly.
    delta: Vec<Vec<S>>,
    /// Number of items living in LAESA shards.
    indexed_len: usize,
    config: ShardConfig,
    preprocessing_computations: u64,
    /// Logically deleted global indices. Compaction and rebalancing
    /// never renumber global indices (shards merge contiguously), so
    /// the set survives both untouched; physical removal is an
    /// explicit vacuum/rebuild at the facade.
    tombstones: TombstoneSet,
}

impl<S: Symbol> ShardedIndex<S> {
    /// Partition `db` into `config.shards` contiguous chunks and build
    /// one LAESA index per chunk, **in parallel** across shards (via
    /// [`cned_search::parallel`]; each shard's pivot selection and row
    /// computation run inside its worker).
    pub fn try_build<D: Distance<S> + ?Sized>(
        mut db: Vec<Vec<S>>,
        config: ShardConfig,
        dist: &D,
    ) -> Result<ShardedIndex<S>, SearchError> {
        let n = db.len();
        let k = config.shards.max(1).min(n.max(1));
        // Near-equal contiguous chunks: the first `n % k` shards take
        // one extra item, so offsets are a pure function of (n, k).
        let base = n / k;
        let extra = n % k;
        let mut bounds = Vec::with_capacity(k + 1);
        let mut at = 0;
        bounds.push(0);
        for s in 0..k {
            at += base + usize::from(s < extra);
            bounds.push(at);
        }
        // Split the owned database into per-shard chunks by moving the
        // strings (split_off from the back) — building must not double
        // the database's memory footprint. Each slot hands its chunk
        // to exactly one worker.
        let mut chunks: Vec<std::sync::Mutex<Option<Vec<Vec<S>>>>> = Vec::with_capacity(k);
        for s in (0..k).rev() {
            chunks.push(std::sync::Mutex::new(Some(db.split_off(bounds[s]))));
        }
        chunks.reverse();
        let shards: Vec<Shard<S>> = par_map(k, |s| {
            let chunk = chunks[s]
                .lock()
                .expect("chunk mutex never poisoned")
                .take()
                .expect("each chunk consumed exactly once");
            let pivots = if chunk.is_empty() {
                Vec::new()
            } else {
                select_pivots_max_sum(&chunk, config.pivots_per_shard, 0, dist)
            };
            Shard {
                offset: bounds[s],
                index: Laesa::try_build(chunk, pivots, dist)
                    .expect("max-sum pivot selection yields valid, distinct indices"),
            }
        });
        let preprocessing_computations = shards
            .iter()
            .map(|s| s.index.preprocessing_computations())
            .sum();
        Ok(ShardedIndex {
            shards,
            delta: Vec::new(),
            indexed_len: n,
            config,
            preprocessing_computations,
            tombstones: TombstoneSet::new(),
        })
    }

    /// Panicking variant of [`ShardedIndex::try_build`] (the internal
    /// pivot selection cannot actually produce invalid pivots, so this
    /// never panics in practice).
    #[deprecated(since = "0.2.0", note = "use `ShardedIndex::try_build`")]
    pub fn build<D: Distance<S> + ?Sized>(
        db: Vec<Vec<S>>,
        config: ShardConfig,
        dist: &D,
    ) -> ShardedIndex<S> {
        match ShardedIndex::try_build(db, config, dist) {
            Ok(index) => index,
            Err(e) => panic!("{e}"),
        }
    }

    /// Total items (indexed shards + delta).
    pub fn len(&self) -> usize {
        self.indexed_len + self.delta.len()
    }

    /// Whether the index holds no items at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of LAESA shards (compaction appends new ones).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Items currently awaiting compaction in the delta shard.
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    /// Distance computations spent building/compacting shards
    /// (pivot rows only; pivot *selection* is accounted by the
    /// caller's pivot strategy, as in [`Laesa`]).
    pub fn preprocessing_computations(&self) -> u64 {
        self.preprocessing_computations
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> ShardConfig {
        self.config
    }

    /// Snapshot view of the indexed shards: `(global offset, LAESA
    /// index)` per shard, in layout order. Together with
    /// [`ShardedIndex::delta_items`] this is the complete structural
    /// state — `cned-store` serialises it and feeds it back through
    /// [`ShardedIndex::from_parts`], so a restored index is
    /// structurally identical (same shard boundaries, same pivot
    /// tables, same delta) and therefore answers every query with
    /// bit-identical results *and statistics*.
    pub fn shard_views(&self) -> impl Iterator<Item = (usize, &Laesa<S>)> {
        self.shards.iter().map(|s| (s.offset, &s.index))
    }

    /// Items currently in the (linearly scanned) delta shard, in
    /// insertion order.
    pub fn delta_items(&self) -> &[Vec<S>] {
        &self.delta
    }

    /// Reassemble an index from previously exported state — the
    /// snapshot-restore path, skipping every pivot-table build.
    ///
    /// `shards` are `(offset, index)` pairs that must tile
    /// `0..indexed_len` contiguously in order (offset 0 first, each
    /// shard starting where the previous ended); `delta` items occupy
    /// the global indices after them. Violations are typed
    /// [`SearchError::Persistence`] errors, not panics — this is
    /// reachable from file decoding.
    pub fn from_parts(
        shards: Vec<(usize, Laesa<S>)>,
        delta: Vec<Vec<S>>,
        config: ShardConfig,
        preprocessing: u64,
    ) -> Result<ShardedIndex<S>, SearchError> {
        let mut at = 0usize;
        for (offset, index) in &shards {
            if *offset != at {
                return Err(SearchError::Persistence {
                    reason: format!(
                        "shard offset {offset} does not tile the layout (expected {at})"
                    ),
                });
            }
            at += index.database().len();
        }
        Ok(ShardedIndex {
            shards: shards
                .into_iter()
                .map(|(offset, index)| Shard { offset, index })
                .collect(),
            delta,
            indexed_len: at,
            config,
            preprocessing_computations: preprocessing,
            tombstones: TombstoneSet::new(),
        })
    }

    /// The tombstone set of logically deleted global indices (for
    /// snapshot encoding).
    pub fn tombstones(&self) -> &TombstoneSet {
        &self.tombstones
    }

    /// Restore a tombstone set (snapshot decode / replica sync).
    pub fn set_tombstones(&mut self, tombstones: TombstoneSet) {
        self.tombstones = tombstones;
    }

    /// The item at global index `i` (panics when out of range).
    pub fn item(&self, i: usize) -> &[S] {
        if i >= self.indexed_len {
            return &self.delta[i - self.indexed_len];
        }
        let shard = self
            .shards
            .iter()
            .rfind(|s| s.offset <= i)
            .expect("global index within an indexed shard");
        &shard.index.database()[i - shard.offset]
    }

    /// Append `item` to the delta shard, returning its global index.
    /// Once [`ShardConfig::compact_threshold`] inserts accumulate they
    /// are compacted into a fresh LAESA shard (see
    /// [`ShardedIndex::compact`]).
    pub fn insert<D: Distance<S> + ?Sized>(&mut self, item: Vec<S>, dist: &D) -> usize {
        let global = self.len();
        self.delta.push(item);
        if self.delta.len() >= self.config.compact_threshold {
            self.compact(dist);
        }
        global
    }

    /// Rebuild the delta shard into a proper LAESA shard now (no-op on
    /// an empty delta). Global indices are unchanged: the new shard
    /// covers exactly the range the delta items already occupied.
    /// Afterwards the layout is rebalanced at the configured
    /// [`ShardConfig::min_fill_percent`] floor (see
    /// [`ShardedIndex::rebalance`]).
    pub fn compact<D: Distance<S> + ?Sized>(&mut self, dist: &D) {
        if self.delta.is_empty() {
            return;
        }
        let items = std::mem::take(&mut self.delta);
        let offset = self.indexed_len;
        let pivots = select_pivots_max_sum(&items, self.config.pivots_per_shard, 0, dist);
        let index = Laesa::try_build(items, pivots, dist)
            .expect("max-sum pivot selection yields valid, distinct indices");
        self.indexed_len += index.database().len();
        self.preprocessing_computations += index.preprocessing_computations();
        self.shards.push(Shard { offset, index });
        self.rebalance(self.config.min_fill_percent, dist);
    }

    /// Merge undersized shards back into the size-balanced layout.
    ///
    /// Compaction only ever *appends* shards of `compact_threshold`
    /// items, so a long-lived index under steady inserts accumulates
    /// many small shards — each costing its full pivot set per query,
    /// which erodes exactly the pivots-vs-computations trade the
    /// shard count was chosen for. This pass restores the intended
    /// layout: with `target = indexed items / configured shards`,
    /// every maximal run of **two or more consecutive** shards each
    /// smaller than `target * min_fill_percent / 100` is rebuilt into
    /// shards of ~`target` items (fresh max-sum pivots per merged
    /// shard).
    ///
    /// Only *consecutive* shards merge because global result indices
    /// are positions in the concatenated database: each shard covers a
    /// contiguous index range, and merging neighbours preserves every
    /// global index — which is why query results (neighbours and
    /// distances) are bit-identical before and after a rebalance for a
    /// metric distance; only per-query computation counts change with
    /// the new pivot tables. The tests pin that equivalence.
    ///
    /// Merges are **geometric** (LSM-style): a group below the target
    /// is only rebuilt when merging at least doubles its largest
    /// member, so under steady inserts every item is rebuilt
    /// `O(log(target / compact_threshold))` times rather than once per
    /// compaction — maintenance stays amortised-logarithmic instead of
    /// quadratic in the tail size.
    ///
    /// Returns the number of merged shards built. Called automatically
    /// by [`ShardedIndex::compact`] with the configured floor; callers
    /// can invoke it directly with any floor (e.g. a maintenance job
    /// forcing a stronger consolidation).
    pub fn rebalance<D: Distance<S> + ?Sized>(&mut self, min_fill_percent: u8, dist: &D) -> usize {
        if min_fill_percent == 0 || self.shards.len() <= 1 {
            return 0;
        }
        let target = (self.indexed_len / self.config.shards.max(1)).max(1);
        let floor = ((target as u64 * u64::from(min_fill_percent)) / 100) as usize;
        if floor == 0 {
            return 0;
        }
        let old = std::mem::take(&mut self.shards);
        let mut rebuilt: Vec<Shard<S>> = Vec::with_capacity(old.len());
        let mut run: Vec<Shard<S>> = Vec::new();
        let mut merges = 0usize;
        for shard in old {
            if shard.index.database().len() < floor {
                run.push(shard);
            } else {
                merges += self.flush_small_run(&mut run, &mut rebuilt, target, dist);
                rebuilt.push(shard);
            }
        }
        merges += self.flush_small_run(&mut run, &mut rebuilt, target, dist);
        self.shards = rebuilt;
        merges
    }

    /// Merge a run of consecutive undersized shards into ~`target`-
    /// sized shards, appending to `out`; a run of fewer than two
    /// shards is passed through untouched.
    fn flush_small_run<D: Distance<S> + ?Sized>(
        &mut self,
        run: &mut Vec<Shard<S>>,
        out: &mut Vec<Shard<S>>,
        target: usize,
        dist: &D,
    ) -> usize {
        if run.len() < 2 {
            out.append(run);
            return 0;
        }
        let mut merges = 0usize;
        let mut pending = std::mem::take(run).into_iter().peekable();
        while let Some(first) = pending.next() {
            let offset = first.offset;
            let mut size = first.index.database().len();
            let mut largest = size;
            let mut group = vec![first];
            while size < target {
                let Some(next) = pending.next() else { break };
                let len = next.index.database().len();
                size += len;
                largest = largest.max(len);
                group.push(next);
            }
            // A lone tail (or a shard already at the target) is not
            // worth a rebuild; neither is a merge that would not at
            // least double its largest member — the geometric guard
            // that keeps steady-insert maintenance amortised
            // logarithmic (a partially-filled merged tail is left
            // alone until enough new shards accumulate around it).
            if group.len() == 1 || (size < target && size < largest * 2) {
                out.extend(group);
                continue;
            }
            let mut items = Vec::with_capacity(size);
            for shard in group {
                items.extend(shard.index.into_database());
            }
            let pivots = select_pivots_max_sum(&items, self.config.pivots_per_shard, 0, dist);
            let index = Laesa::try_build(items, pivots, dist)
                .expect("max-sum pivot selection yields valid, distinct indices");
            self.preprocessing_computations += index.preprocessing_computations();
            merges += 1;
            out.push(Shard { offset, index });
        }
        merges
    }

    /// Nearest neighbour of `query` across all shards; `None` on an
    /// empty index. See [`ShardedIndex::nn_prepared`].
    #[deprecated(
        since = "0.2.0",
        note = "use `MetricIndex::nn` with `QueryOptions` (or the `cned::Database` facade)"
    )]
    pub fn nn<D: Distance<S> + ?Sized>(
        &self,
        query: &[S],
        dist: &D,
    ) -> Option<(Neighbour, ShardedStats)> {
        let prepared = dist.prepare(query);
        self.nn_prepared(&*prepared)
    }

    /// Nearest neighbour of an already-prepared query.
    ///
    /// Fans across shards in shard order, handing each shard the best
    /// distance found so far as its pruning radius (the cross-shard
    /// bound-propagation invariant — see the crate docs), then scans
    /// the delta shard under the same running bound. Ties resolve to
    /// the smallest global index: within a shard by the canonical
    /// LAESA tie-break, across shards by the merge below (an equal-
    /// distance find in a later shard never displaces an earlier one).
    pub fn nn_prepared(
        &self,
        prepared: &dyn PreparedQuery<S>,
    ) -> Option<(Neighbour, ShardedStats)> {
        let (found, stats) = self.nn_core(prepared, f64::INFINITY, usize::MAX);
        found.map(|b| (b, stats))
    }

    fn nn_core(
        &self,
        prepared: &dyn PreparedQuery<S>,
        radius: f64,
        pivot_limit: usize,
    ) -> (Option<Neighbour>, ShardedStats) {
        let mut stats = ShardedStats::default();
        // The search radius doubles as a virtual incumbent seeding the
        // first shard's pruning; usize::MAX loses every index
        // tie-break.
        let mut best = Neighbour {
            index: usize::MAX,
            distance: radius,
        };
        for shard in &self.shards {
            let (found, shard_stats) =
                shard
                    .index
                    .nn_prepared_limited(prepared, best.distance, pivot_limit);
            stats.per_shard.push(shard_stats);
            if let Some(local) = found {
                let candidate = Neighbour {
                    index: shard.offset + local.index,
                    distance: local.distance,
                };
                if candidate.better_than(&best) {
                    best = candidate;
                }
            }
        }
        // Lane-batched linear sweep over the delta shard, seeded with
        // the cross-shard incumbent.
        nn_scan_into(&self.delta, prepared, self.indexed_len, &mut best);
        stats.delta.distance_computations += self.delta.len() as u64;
        ((best.index != usize::MAX).then_some(best), stats)
    }

    /// The `k` nearest neighbours of `query` across all shards, in the
    /// canonical (distance, ascending global index) order. See
    /// [`ShardedIndex::knn_prepared`].
    #[deprecated(
        since = "0.2.0",
        note = "use `MetricIndex::knn` with `QueryOptions` (or the `cned::Database` facade)"
    )]
    pub fn knn<D: Distance<S> + ?Sized>(
        &self,
        query: &[S],
        dist: &D,
        k: usize,
    ) -> (Vec<Neighbour>, ShardedStats) {
        let prepared = dist.prepare(query);
        self.knn_prepared(&*prepared, k)
    }

    /// k-NN counterpart of [`ShardedIndex::nn_prepared`]: each shard
    /// is queried with the running global k-th-best distance as its
    /// radius, and per-shard results merge under the canonical
    /// ordering.
    pub fn knn_prepared(
        &self,
        prepared: &dyn PreparedQuery<S>,
        k: usize,
    ) -> (Vec<Neighbour>, ShardedStats) {
        self.knn_core(prepared, k, f64::INFINITY, usize::MAX)
    }

    fn knn_core(
        &self,
        prepared: &dyn PreparedQuery<S>,
        k: usize,
        radius: f64,
        pivot_limit: usize,
    ) -> (Vec<Neighbour>, ShardedStats) {
        let mut stats = ShardedStats::default();
        if k == 0 {
            return (Vec::new(), stats);
        }
        let mut best: Vec<Neighbour> = Vec::with_capacity(k + 1);
        let kth = |best: &Vec<Neighbour>| -> f64 {
            if best.len() < k {
                radius
            } else {
                best[k - 1].distance
            }
        };
        for shard in &self.shards {
            let (locals, shard_stats) =
                shard
                    .index
                    .knn_prepared_limited(prepared, k, kth(&best), pivot_limit);
            stats.per_shard.push(shard_stats);
            for local in locals {
                let candidate = Neighbour {
                    index: shard.offset + local.index,
                    distance: local.distance,
                };
                let pos = best
                    .binary_search_by(|nb| nb.ordering(&candidate))
                    .unwrap_or_else(|e| e);
                best.insert(pos, candidate);
                best.truncate(k);
            }
        }
        // Lane-batched linear sweep over the delta shard; the running
        // k-th-best (or the radius while underfull) is the budget.
        knn_scan_into(
            &self.delta,
            prepared,
            k,
            radius,
            self.indexed_len,
            &mut best,
        );
        stats.delta.distance_computations += self.delta.len() as u64;
        (best, stats)
    }

    /// Every element **within `radius`** (inclusive) of an
    /// already-prepared query across all shards and the delta shard,
    /// in canonical (distance, ascending global index) order.
    ///
    /// Range search has a fixed radius, so there is no cross-shard
    /// bound to propagate: each shard answers independently with
    /// triangle-inequality pruning against the same budget, and the
    /// per-shard hit lists merge by the canonical ordering.
    pub fn range_prepared(
        &self,
        prepared: &dyn PreparedQuery<S>,
        radius: f64,
    ) -> (Vec<Neighbour>, ShardedStats) {
        self.range_core(prepared, radius, usize::MAX)
    }

    fn range_core(
        &self,
        prepared: &dyn PreparedQuery<S>,
        radius: f64,
        pivot_limit: usize,
    ) -> (Vec<Neighbour>, ShardedStats) {
        let mut stats = ShardedStats::default();
        let mut hits: Vec<Neighbour> = Vec::new();
        for shard in &self.shards {
            let (locals, shard_stats) =
                shard
                    .index
                    .range_prepared_limited(prepared, radius, pivot_limit);
            stats.per_shard.push(shard_stats);
            hits.extend(locals.into_iter().map(|local| Neighbour {
                index: shard.offset + local.index,
                distance: local.distance,
            }));
        }
        // Lane-batched fixed-radius sweep over the delta shard.
        range_scan_into(&self.delta, prepared, radius, self.indexed_len, &mut hits);
        stats.delta.distance_computations += self.delta.len() as u64;
        hits.sort_by(|a, b| a.ordering(b));
        (hits, stats)
    }

    /// `nn` for a batch of queries, parallelised across queries (each
    /// worker's query is prepared once and reused across every shard).
    /// Returns `None` on an empty index.
    #[deprecated(
        since = "0.2.0",
        note = "use `MetricIndex::nn_batch` with `QueryOptions` (or the `cned::Database` facade)"
    )]
    pub fn nn_batch<D: Distance<S> + ?Sized>(
        &self,
        queries: &[Vec<S>],
        dist: &D,
    ) -> Option<Vec<(Neighbour, ShardedStats)>> {
        if self.is_empty() {
            return None;
        }
        Some(par_map(queries.len(), |q| {
            let prepared = dist.prepare(&queries[q]);
            let (found, stats) = self.nn_core(&*prepared, f64::INFINITY, usize::MAX);
            (found.expect("index checked non-empty"), stats)
        }))
    }

    /// `knn` for a batch of queries, parallelised across queries.
    #[deprecated(
        since = "0.2.0",
        note = "use `MetricIndex::knn_batch` with `QueryOptions` (or the `cned::Database` facade)"
    )]
    pub fn knn_batch<D: Distance<S> + ?Sized>(
        &self,
        queries: &[Vec<S>],
        dist: &D,
        k: usize,
    ) -> Vec<(Vec<Neighbour>, ShardedStats)> {
        par_map(queries.len(), |q| {
            let prepared = dist.prepare(&queries[q]);
            self.knn_core(&*prepared, k, f64::INFINITY, usize::MAX)
        })
    }
}

impl<S: Symbol> MetricIndex<S> for ShardedIndex<S> {
    fn len(&self) -> usize {
        self.indexed_len + self.delta.len()
    }

    fn backend_name(&self) -> &'static str {
        "sharded"
    }

    fn item(&self, i: usize) -> Option<&[S]> {
        if i >= self.len() {
            return None;
        }
        Some(ShardedIndex::item(self, i))
    }

    fn nn(
        &self,
        query: &[S],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<(Option<Neighbour>, SearchStats), SearchError> {
        if self.is_empty() {
            return Err(SearchError::EmptyDatabase);
        }
        let radius = opts.checked_radius()?;
        let limit = opts.pivot_budget.unwrap_or(usize::MAX);
        let prepared = dist.prepare(query);
        if self.tombstones.is_empty() {
            let (found, stats) = self.nn_core(&*prepared, radius, limit);
            let stats = stats.total();
            opts.record(stats);
            return Ok((found, stats));
        }
        // Over-fetch: at most T of the top 1+T answers can be dead,
        // so the first survivor is the true live NN.
        let want = 1 + self.tombstones.count();
        let (hits, stats) = self.knn_core(&*prepared, want, radius, limit);
        let found = self.tombstones.first_live(&hits);
        let stats = stats.total();
        opts.record(stats);
        Ok((found, stats))
    }

    fn knn(
        &self,
        query: &[S],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<(Vec<Neighbour>, SearchStats), SearchError> {
        if self.is_empty() {
            return Err(SearchError::EmptyDatabase);
        }
        let radius = opts.checked_radius()?;
        let limit = opts.pivot_budget.unwrap_or(usize::MAX);
        let prepared = dist.prepare(query);
        let want = if self.tombstones.is_empty() {
            opts.k
        } else {
            opts.k.saturating_add(self.tombstones.count())
        };
        let (mut best, stats) = self.knn_core(&*prepared, want, radius, limit);
        self.tombstones.retain_live(&mut best);
        best.truncate(opts.k);
        let stats = stats.total();
        opts.record(stats);
        Ok((best, stats))
    }

    fn range(
        &self,
        query: &[S],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<(Vec<Neighbour>, SearchStats), SearchError> {
        if self.is_empty() {
            return Err(SearchError::EmptyDatabase);
        }
        let radius = opts.checked_radius()?;
        let limit = opts.pivot_budget.unwrap_or(usize::MAX);
        let prepared = dist.prepare(query);
        let (mut hits, stats) = self.range_core(&*prepared, radius, limit);
        self.tombstones.retain_live(&mut hits);
        let stats = stats.total();
        opts.record(stats);
        Ok((hits, stats))
    }

    fn delete(&mut self, index: usize) -> Result<bool, SearchError> {
        if index >= self.len() {
            return Ok(false);
        }
        Ok(self.tombstones.insert(index))
    }

    fn deleted(&self) -> usize {
        self.tombstones.count()
    }

    fn is_deleted(&self, i: usize) -> bool {
        self.tombstones.contains(i)
    }

    fn as_insertable(&mut self) -> Option<&mut dyn InsertableIndex<S>> {
        Some(self)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

impl<S: Symbol> InsertableIndex<S> for ShardedIndex<S> {
    fn insert(&mut self, item: Vec<S>, dist: &dyn Distance<S>) -> Result<usize, SearchError> {
        Ok(ShardedIndex::insert(self, item, dist))
    }
}
