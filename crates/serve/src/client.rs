//! [`Client`] — a pipelined TCP client for the [`crate::wire`]
//! protocol, reusing the session's [`Ticket`] API.
//!
//! [`Client::submit`] assigns a request id, buffers the frame, and
//! returns a [`Ticket`] immediately — submit as many as you like
//! before collecting anything (pipelining), then [`Client::flush`]
//! once and `try_recv`/`wait` each ticket exactly as you would
//! against an in-process [`crate::ServeSession`]. Buffered submission
//! is the point: a run of pipelined requests leaves in **one**
//! syscall instead of one flushed write per frame. A background
//! reader thread routes every incoming response frame to its ticket
//! by id, so out-of-order collection costs nothing.
//!
//! [`Client::submit_batch`] goes further and packs many requests into
//! a **single** batch frame (one frame header, one id), which the
//! server admits in one decision and answers as one parallel chunk —
//! the highest-throughput path. [`Client::nn_batch`] /
//! [`Client::knn_batch`] are the typed conveniences over it.
//!
//! The blocking conveniences ([`Client::nn`], [`Client::knn`],
//! [`Client::range`], [`Client::insert`]) flush for you and unpack
//! the response body, surfacing a server-side [`SearchError`]
//! (including `Overloaded` backpressure) as [`ClientError::Search`].
//!
//! ## Deadlines
//!
//! [`ClientConfig`] carries a **connect timeout** (a dead address
//! fails fast instead of hanging in the OS default) and a **read
//! deadline**: with responses outstanding, if the socket goes quiet —
//! not one byte — for longer than the deadline, the connection is
//! torn down and every pending ticket resolves to
//! `Failed { DeadlineExceeded }`. Before this, a crashed server hung
//! [`Ticket::wait`] forever. The deadline is *quiet time*, not
//! per-request elapsed time: a server streaming other responses keeps
//! the connection alive. An idle connection with nothing pending is
//! never torn down by the client.
//!
//! ## Connection-cap rejection
//!
//! A server past [`crate::ServerConfig::max_connections`] answers the
//! connection itself with a `Failed { Overloaded }` frame tagged
//! [`wire::CONTROL_ID`] and closes. The reader treats that id as
//! connection-fatal: every pending ticket resolves to the carried
//! error, and later submissions fail — a typed signal, not a mystery
//! disconnect.

use crate::ordered::{rank, OrderedMutex};
use crate::session::{Request, RequestId, Response, ResponseBody, Ticket};
use crate::wire::{self, WireError, WireResponse, WireSymbol};
use cned_search::{Neighbour, SearchError, SearchStats};
use std::collections::HashMap;
use std::io::{BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything a client call can fail with.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// Transport or protocol failure (connection lost, malformed
    /// frame, version mismatch).
    Wire(WireError),
    /// The server answered with a typed error ([`ResponseBody::Failed`]),
    /// e.g. backpressure ([`SearchError::Overloaded`]) or an invalid
    /// radius — or the client's read deadline fired
    /// ([`SearchError::DeadlineExceeded`]).
    Search(SearchError),
    /// The server answered with a body of the wrong kind for the
    /// request (protocol confusion; treat the connection as broken).
    UnexpectedResponse,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Search(e) => write!(f, "server error: {e}"),
            ClientError::UnexpectedResponse => {
                write!(f, "response kind does not match the request")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Wire(e)
    }
}

/// Knobs of a [`Client`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Fail [`Client::connect_with`] if the TCP handshake takes
    /// longer than this.
    pub connect_timeout: Duration,
    /// With responses outstanding, tear the connection down after
    /// this much *quiet time* (no bytes from the server); pending
    /// tickets resolve to `Failed { DeadlineExceeded }`.
    pub read_deadline: Duration,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_deadline: Duration::from_secs(30),
        }
    }
}

impl ClientConfig {
    /// Default knobs (5 s connect timeout, 30 s read deadline).
    pub fn new() -> ClientConfig {
        ClientConfig::default()
    }

    /// Set the connect timeout.
    pub fn connect_timeout(mut self, timeout: Duration) -> ClientConfig {
        self.connect_timeout = timeout;
        self
    }

    /// Set the read deadline.
    pub fn read_deadline(mut self, deadline: Duration) -> ClientConfig {
        self.read_deadline = deadline;
        self
    }
}

/// Where a routed response goes: a single ticket or a batch ticket.
enum PendingTx {
    One(mpsc::Sender<Response>),
    Batch(mpsc::Sender<Result<Vec<ResponseBody>, SearchError>>),
}

impl PendingTx {
    /// Resolve with `error` (used when the connection dies with the
    /// entry still pending).
    fn fail(self, id: u64, error: SearchError) {
        match self {
            PendingTx::One(tx) => {
                let _ = tx.send(Response {
                    id: RequestId(id),
                    body: ResponseBody::Failed { error },
                });
            }
            PendingTx::Batch(tx) => {
                let _ = tx.send(Err(error));
            }
        }
    }
}

/// Reader/submitter shared state.
struct Shared {
    /// Client request id → where its answer goes.
    pending: OrderedMutex<HashMap<u64, PendingTx>>,
    /// `Some(error)` once the connection is unusable; set by the
    /// reader before it drains `pending`, checked by submit paths so
    /// a dead connection can never leave a ticket unanswerable.
    fatal: OrderedMutex<Option<SearchError>>,
}

impl Shared {
    /// Record the fatal error (first one wins) and fail everything
    /// pending with it.
    fn fail_all(&self, error: SearchError) {
        {
            let mut fatal = self.fatal.lock();
            fatal.get_or_insert(error.clone());
        }
        let mut map = self.pending.lock();
        // lint:allow(map-iteration) — order-independent: every pending
        // entry receives the same terminal error, and the map is left
        // empty regardless of drain order.
        for (id, tx) in map.drain() {
            tx.fail(id, error.clone());
        }
    }
}

/// A claim on the eventual answer to one [`Client::submit_batch`]
/// call: either every response body of the batch, **in request
/// order**, or one error covering the whole batch (all-or-nothing
/// admission, a lost connection, or the read deadline).
#[derive(Debug)]
pub struct BatchTicket {
    id: RequestId,
    rx: mpsc::Receiver<Result<Vec<ResponseBody>, SearchError>>,
}

impl BatchTicket {
    /// The batch frame's id.
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// The batch's bodies, if the response frame has arrived.
    pub fn try_recv(&self) -> Option<Result<Vec<ResponseBody>, SearchError>> {
        self.rx.try_recv().ok()
    }

    /// Block until the batch resolves. A lost connection surfaces as
    /// `Err(Shutdown)`.
    pub fn wait(self) -> Result<Vec<ResponseBody>, SearchError> {
        self.rx.recv().unwrap_or(Err(SearchError::Shutdown))
    }
}

/// A connection to a [`crate::Server`]; see the module docs.
pub struct Client<S: WireSymbol + 'static> {
    writer: BufWriter<TcpStream>,
    shared: Arc<Shared>,
    next_id: u64,
    reader: Option<JoinHandle<()>>,
    _symbols: std::marker::PhantomData<fn() -> S>,
}

impl<S: WireSymbol + 'static> Client<S> {
    /// Connect to a server with default [`ClientConfig`].
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client<S>> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// [`Client::connect`] with explicit knobs.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> std::io::Result<Client<S>> {
        // `TcpStream::connect_timeout` wants a resolved address; try
        // each candidate like `TcpStream::connect` does.
        let mut last_err = None;
        let mut stream = None;
        for candidate in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&candidate, config.connect_timeout) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let stream = match stream {
            Some(s) => s,
            None => {
                return Err(last_err.unwrap_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        "address resolved to nothing",
                    )
                }))
            }
        };
        let _ = stream.set_nodelay(true);
        let shared = Arc::new(Shared {
            pending: OrderedMutex::new(rank::CLIENT_PENDING, "client.pending", HashMap::new()),
            fatal: OrderedMutex::new(rank::CLIENT_FATAL, "client.fatal", None),
        });
        let reader = {
            let stream = stream.try_clone()?;
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("cned-serve-client-reader".into())
                .spawn(move || read_responses(stream, &shared, config.read_deadline))
                .expect("spawning the client reader thread")
        };
        Ok(Client {
            writer: BufWriter::new(stream),
            shared,
            next_id: 0,
            reader: Some(reader),
            _symbols: std::marker::PhantomData,
        })
    }

    /// The connection-fatal error, if any, as a [`WireError`].
    fn check_fatal(&self) -> Result<(), WireError> {
        let fatal = self.shared.fatal.lock();
        match &*fatal {
            Some(error) => Err(WireError::Io(format!("connection closed: {error}"))),
            None => Ok(()),
        }
    }

    fn fresh_id(&mut self) -> RequestId {
        let id = RequestId(self.next_id);
        // Skip the reserved control id (unreachable in practice — it
        // would take 2^64 - 1 submissions — but cheap to guarantee).
        self.next_id = if self.next_id + 1 == wire::CONTROL_ID {
            0
        } else {
            self.next_id + 1
        };
        id
    }

    /// Register `tx` under `id`, write `payload` **unflushed**, and
    /// verify the connection outlived the write.
    fn send_registered(
        &mut self,
        id: RequestId,
        tx: PendingTx,
        payload: &[u8],
    ) -> Result<(), WireError> {
        self.shared.pending.lock().insert(id.0, tx);
        let remove = |this: &Client<S>| {
            this.shared.pending.lock().remove(&id.0);
        };
        if let Err(e) = wire::write_frame_unflushed(&mut self.writer, payload) {
            remove(self);
            return Err(e);
        }
        // Checked *after* inserting: the reader records the fatal
        // error before draining, so either the drain saw this entry
        // (and failed it) or this check sees the error — a dead
        // connection can never leave the ticket unanswerable.
        if let Err(e) = self.check_fatal() {
            remove(self);
            return Err(e);
        }
        Ok(())
    }

    /// Buffer a request without waiting, returning the [`Ticket`] for
    /// its response — the pipelined entry point. Ids are assigned
    /// sequentially per connection. The frame sits in the write
    /// buffer until [`Client::flush`] (which the blocking
    /// conveniences call for you): submit a run of requests, flush
    /// once, and the whole run leaves in one syscall.
    pub fn submit(&mut self, request: Request<S>) -> Result<Ticket, WireError> {
        let id = self.fresh_id();
        let (tx, rx) = mpsc::channel();
        let mut payload = Vec::new();
        wire::encode_request(id, &request, &mut payload);
        self.send_registered(id, PendingTx::One(tx), &payload)?;
        Ok(Ticket::new(id, rx))
    }

    /// Pack `requests` into **one** batch frame (buffered, like
    /// [`Client::submit`]), returning a [`BatchTicket`] that resolves
    /// to every body in request order. The server admits the batch in
    /// one all-or-nothing decision and answers it as one parallel
    /// chunk.
    pub fn submit_batch(&mut self, requests: &[Request<S>]) -> Result<BatchTicket, WireError> {
        let id = self.fresh_id();
        let (tx, rx) = mpsc::channel();
        let mut payload = Vec::new();
        wire::encode_batch_request(id, requests, &mut payload);
        self.send_registered(id, PendingTx::Batch(tx), &payload)?;
        Ok(BatchTicket { id, rx })
    }

    /// Push every buffered frame into the socket — call after a run
    /// of [`Client::submit`]/[`Client::submit_batch`] before
    /// collecting tickets. (Forgetting it is not a hang: the read
    /// deadline still resolves the tickets, with
    /// `Failed { DeadlineExceeded }`.)
    pub fn flush(&mut self) -> Result<(), WireError> {
        self.writer.flush()?;
        self.check_fatal()
    }

    /// Submit-flush-and-wait, returning the raw body. A lost
    /// connection surfaces as `Failed { Shutdown }` (the ticket
    /// fallback), which the typed conveniences map to
    /// [`ClientError::Search`].
    pub fn call(&mut self, request: Request<S>) -> Result<ResponseBody, ClientError> {
        let ticket = self.submit(request)?;
        self.flush()?;
        Ok(ticket.wait().body)
    }

    /// Submit-flush-and-wait for a whole batch: one frame out, one
    /// frame back, bodies in request order.
    pub fn call_batch(
        &mut self,
        requests: &[Request<S>],
    ) -> Result<Vec<ResponseBody>, ClientError> {
        let ticket = self.submit_batch(requests)?;
        self.flush()?;
        ticket.wait().map_err(ClientError::Search)
    }

    /// Nearest neighbour of `query` on the server's index.
    pub fn nn(&mut self, query: &[S]) -> Result<(Option<Neighbour>, SearchStats), ClientError> {
        match self.call(Request::Nn {
            query: query.to_vec(),
        })? {
            ResponseBody::Nn { neighbour, stats } => Ok((neighbour, stats)),
            ResponseBody::Failed { error } => Err(ClientError::Search(error)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Nearest neighbour of every query in **one** wire frame;
    /// answers in query order. The first per-query failure fails the
    /// call (NN queries share their failure modes, so partial results
    /// would only hide it).
    pub fn nn_batch(
        &mut self,
        queries: &[Vec<S>],
    ) -> Result<Vec<(Option<Neighbour>, SearchStats)>, ClientError> {
        let requests: Vec<Request<S>> = queries
            .iter()
            .map(|query| Request::Nn {
                query: query.clone(),
            })
            .collect();
        self.call_batch(&requests)?
            .into_iter()
            .map(|body| match body {
                ResponseBody::Nn { neighbour, stats } => Ok((neighbour, stats)),
                ResponseBody::Failed { error } => Err(ClientError::Search(error)),
                _ => Err(ClientError::UnexpectedResponse),
            })
            .collect()
    }

    /// The `k` nearest neighbours of `query`.
    pub fn knn(
        &mut self,
        query: &[S],
        k: usize,
    ) -> Result<(Vec<Neighbour>, SearchStats), ClientError> {
        match self.call(Request::Knn {
            query: query.to_vec(),
            k,
        })? {
            ResponseBody::Knn { neighbours, stats } => Ok((neighbours, stats)),
            ResponseBody::Failed { error } => Err(ClientError::Search(error)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// The `k` nearest neighbours of every query in **one** wire
    /// frame; answers in query order.
    pub fn knn_batch(
        &mut self,
        queries: &[Vec<S>],
        k: usize,
    ) -> Result<Vec<(Vec<Neighbour>, SearchStats)>, ClientError> {
        let requests: Vec<Request<S>> = queries
            .iter()
            .map(|query| Request::Knn {
                query: query.clone(),
                k,
            })
            .collect();
        self.call_batch(&requests)?
            .into_iter()
            .map(|body| match body {
                ResponseBody::Knn { neighbours, stats } => Ok((neighbours, stats)),
                ResponseBody::Failed { error } => Err(ClientError::Search(error)),
                _ => Err(ClientError::UnexpectedResponse),
            })
            .collect()
    }

    /// Everything within `radius` of `query` (inclusive).
    pub fn range(
        &mut self,
        query: &[S],
        radius: f64,
    ) -> Result<(Vec<Neighbour>, SearchStats), ClientError> {
        match self.call(Request::Range {
            query: query.to_vec(),
            radius,
        })? {
            ResponseBody::Range { neighbours, stats } => Ok((neighbours, stats)),
            ResponseBody::Failed { error } => Err(ClientError::Search(error)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Insert `item`, returning its global index on the server.
    pub fn insert(&mut self, item: &[S]) -> Result<usize, ClientError> {
        match self.call(Request::Insert {
            item: item.to_vec(),
        })? {
            ResponseBody::Inserted { index } => Ok(index),
            ResponseBody::Failed { error } => Err(ClientError::Search(error)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Tombstone the item at global `index`. Returns whether it was
    /// alive (idempotent: a second delete, or an out-of-range index,
    /// answers `Ok(false)`, not an error).
    pub fn delete(&mut self, index: usize) -> Result<bool, ClientError> {
        match self.call(Request::Delete { index })? {
            ResponseBody::Deleted { existed } => Ok(existed),
            ResponseBody::Failed { error } => Err(ClientError::Search(error)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Close the connection. Outstanding tickets resolve to
    /// `Failed { Shutdown }` if their responses never arrived.
    pub fn close(self) {
        // Drop does the work.
    }
}

impl<S: WireSymbol + 'static> Drop for Client<S> {
    fn drop(&mut self) {
        let _ = self.writer.get_ref().shutdown(std::net::Shutdown::Both);
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

/// Route one decoded frame to its ticket. `Err(error)` means the
/// connection can no longer be trusted (the caller tears it down and
/// fails everything pending with the error).
fn route_frame(shared: &Shared, frame: WireResponse) -> Result<(), SearchError> {
    match frame {
        WireResponse::One(response) => {
            // A control-id response answers the *connection*, not a
            // request: the server rejected us (connection cap) or
            // could not ship a response — fatal either way.
            if response.id.0 == wire::CONTROL_ID {
                return Err(match response.body {
                    ResponseBody::Failed { error } => error,
                    _ => SearchError::Shutdown,
                });
            }
            let tx = shared.pending.lock().remove(&response.id.0);
            match tx {
                Some(PendingTx::One(tx)) => {
                    let _ = tx.send(response);
                }
                // A plain frame answering a batch id is the server's
                // whole-batch failure (all-or-nothing admission).
                Some(PendingTx::Batch(tx)) => match response.body {
                    ResponseBody::Failed { error } => {
                        let _ = tx.send(Err(error));
                    }
                    _ => return Err(SearchError::Shutdown), // confusion
                },
                // Unknown id: the ticket was discarded client-side.
                None => {}
            }
        }
        WireResponse::Batch(id, bodies) => {
            let tx = shared.pending.lock().remove(&id.0);
            match tx {
                Some(PendingTx::Batch(tx)) => {
                    let _ = tx.send(Ok(bodies));
                }
                Some(PendingTx::One(_)) => return Err(SearchError::Shutdown), // confusion
                None => {}
            }
        }
    }
    Ok(())
}

/// The reader thread: reassemble frames out of timed chunk reads,
/// route them by id, and enforce the read deadline. On any exit the
/// fatal error is recorded first, then everything pending fails with
/// it — no ticket ever blocks forever.
fn read_responses(mut stream: TcpStream, shared: &Shared, deadline: Duration) {
    // Short timed reads let the deadline fire between bytes; the
    // FrameBuffer tolerates frames split at any boundary, which a
    // blocking `read_frame` mid-frame would not.
    let tick = Duration::from_millis(50)
        .min(deadline / 2)
        .max(Duration::from_millis(1));
    let _ = stream.set_read_timeout(Some(tick));
    let mut frames = wire::FrameBuffer::new();
    let mut chunk = vec![0u8; 16 * 1024];
    let mut last_byte = Instant::now();
    let error = 'conn: loop {
        match stream.read(&mut chunk) {
            Ok(0) => break SearchError::Shutdown, // EOF
            Ok(n) => {
                last_byte = Instant::now();
                frames.extend(&chunk[..n]);
                loop {
                    match frames.next_frame() {
                        Ok(Some(payload)) => match wire::decode_response_frame(&payload) {
                            Ok(frame) => {
                                if let Err(error) = route_frame(shared, frame) {
                                    break 'conn error;
                                }
                            }
                            // Protocol confusion: stop trusting the
                            // stream.
                            Err(_) => break 'conn SearchError::Shutdown,
                        },
                        Ok(None) => break,
                        Err(_) => break 'conn SearchError::Shutdown,
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                let waiting = !shared.pending.lock().is_empty();
                if !waiting {
                    // Idle connections have no deadline; quiet time
                    // only counts while answers are owed.
                    last_byte = Instant::now();
                } else if last_byte.elapsed() >= deadline {
                    break SearchError::DeadlineExceeded;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break SearchError::Shutdown,
        }
    };
    shared.fail_all(error);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}
