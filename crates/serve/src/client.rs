//! [`Client`] — a pipelined TCP client for the [`crate::wire`]
//! protocol, reusing the session's [`Ticket`] API.
//!
//! [`Client::submit`] assigns a request id, writes the frame, and
//! returns a [`Ticket`] immediately — submit as many as you like
//! before collecting anything (pipelining), then `try_recv`/`wait`
//! each ticket exactly as you would against an in-process
//! [`crate::ServeSession`]. A background reader thread routes every
//! incoming response frame to its ticket by id, so out-of-order
//! collection costs nothing.
//!
//! The blocking conveniences ([`Client::nn`], [`Client::knn`],
//! [`Client::range`], [`Client::insert`]) are submit-then-wait
//! wrappers that unpack the response body and surface a server-side
//! [`SearchError`] (including `Overloaded` backpressure) as
//! [`ClientError::Search`].

use crate::session::{Request, RequestId, Response, ResponseBody, Ticket};
use crate::wire::{self, WireError, WireSymbol};
use cned_search::{Neighbour, SearchError, SearchStats};
use std::collections::HashMap;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// Everything a client call can fail with.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// Transport or protocol failure (connection lost, malformed
    /// frame, version mismatch).
    Wire(WireError),
    /// The server answered with a typed error ([`ResponseBody::Failed`]),
    /// e.g. backpressure ([`SearchError::Overloaded`]) or an invalid
    /// radius.
    Search(SearchError),
    /// The server answered with a body of the wrong kind for the
    /// request (protocol confusion; treat the connection as broken).
    UnexpectedResponse,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Search(e) => write!(f, "server error: {e}"),
            ClientError::UnexpectedResponse => {
                write!(f, "response kind does not match the request")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Wire(e)
    }
}

/// In-flight response routes: client request id → ticket channel.
type PendingMap = Arc<Mutex<HashMap<u64, mpsc::Sender<Response>>>>;

/// A connection to a [`crate::Server`]; see the module docs.
pub struct Client<S: WireSymbol + 'static> {
    stream: TcpStream,
    pending: PendingMap,
    /// Set by the reader thread just before it drains `pending` and
    /// exits; guards against a submit racing that drain and blocking
    /// on a ticket nothing will ever answer.
    closed: Arc<std::sync::atomic::AtomicBool>,
    next_id: u64,
    reader: Option<JoinHandle<()>>,
    _symbols: std::marker::PhantomData<fn() -> S>,
}

impl<S: WireSymbol + 'static> Client<S> {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client<S>> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let pending: PendingMap = Arc::new(Mutex::new(HashMap::new()));
        let closed = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let reader = {
            let stream = stream.try_clone()?;
            let pending = Arc::clone(&pending);
            let closed = Arc::clone(&closed);
            std::thread::Builder::new()
                .name("cned-serve-client-reader".into())
                .spawn(move || read_responses(stream, &pending, &closed))
                .expect("spawning the client reader thread")
        };
        Ok(Client {
            stream,
            pending,
            closed,
            next_id: 0,
            reader: Some(reader),
            _symbols: std::marker::PhantomData,
        })
    }

    /// Send a request without waiting, returning the [`Ticket`] for
    /// its response — the pipelined entry point. Ids are assigned
    /// sequentially per connection.
    pub fn submit(&mut self, request: Request<S>) -> Result<Ticket, WireError> {
        let id = RequestId(self.next_id);
        self.next_id += 1;
        let (tx, rx) = mpsc::channel();
        self.pending
            .lock()
            .expect("pending map never poisoned")
            .insert(id.0, tx);
        let remove_pending = |this: &Client<S>| {
            this.pending
                .lock()
                .expect("pending map never poisoned")
                .remove(&id.0);
        };
        let mut payload = Vec::new();
        wire::encode_request(id, &request, &mut payload);
        if let Err(e) = wire::write_frame(&mut self.stream, &payload) {
            remove_pending(self);
            return Err(e);
        }
        // Checked *after* inserting: the reader sets the flag before
        // draining, so either the drain saw this entry (and answered
        // it Shutdown) or this check sees the flag — a dead connection
        // can never leave the ticket unanswerable.
        if self.closed.load(std::sync::atomic::Ordering::Acquire) {
            remove_pending(self);
            return Err(WireError::Io("connection closed by the server".into()));
        }
        Ok(Ticket::new(id, rx))
    }

    /// Submit-and-wait, returning the raw body. A lost connection
    /// surfaces as `Failed { Shutdown }` (the ticket fallback), which
    /// the typed conveniences map to [`ClientError::Search`].
    pub fn call(&mut self, request: Request<S>) -> Result<ResponseBody, ClientError> {
        Ok(self.submit(request)?.wait().body)
    }

    /// Nearest neighbour of `query` on the server's index.
    pub fn nn(&mut self, query: &[S]) -> Result<(Option<Neighbour>, SearchStats), ClientError> {
        match self.call(Request::Nn {
            query: query.to_vec(),
        })? {
            ResponseBody::Nn { neighbour, stats } => Ok((neighbour, stats)),
            ResponseBody::Failed { error } => Err(ClientError::Search(error)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// The `k` nearest neighbours of `query`.
    pub fn knn(
        &mut self,
        query: &[S],
        k: usize,
    ) -> Result<(Vec<Neighbour>, SearchStats), ClientError> {
        match self.call(Request::Knn {
            query: query.to_vec(),
            k,
        })? {
            ResponseBody::Knn { neighbours, stats } => Ok((neighbours, stats)),
            ResponseBody::Failed { error } => Err(ClientError::Search(error)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Everything within `radius` of `query` (inclusive).
    pub fn range(
        &mut self,
        query: &[S],
        radius: f64,
    ) -> Result<(Vec<Neighbour>, SearchStats), ClientError> {
        match self.call(Request::Range {
            query: query.to_vec(),
            radius,
        })? {
            ResponseBody::Range { neighbours, stats } => Ok((neighbours, stats)),
            ResponseBody::Failed { error } => Err(ClientError::Search(error)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Insert `item`, returning its global index on the server.
    pub fn insert(&mut self, item: &[S]) -> Result<usize, ClientError> {
        match self.call(Request::Insert {
            item: item.to_vec(),
        })? {
            ResponseBody::Inserted { index } => Ok(index),
            ResponseBody::Failed { error } => Err(ClientError::Search(error)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Close the connection. Outstanding tickets resolve to
    /// `Failed { Shutdown }` if their responses never arrived.
    pub fn close(self) {
        // Drop does the work.
    }
}

impl<S: WireSymbol + 'static> Drop for Client<S> {
    fn drop(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

/// Route incoming response frames to their tickets by id; on
/// disconnect, mark the connection closed and fail whatever is still
/// pending so no ticket blocks forever.
fn read_responses(
    mut stream: TcpStream,
    pending: &PendingMap,
    closed: &std::sync::atomic::AtomicBool,
) {
    let mut buf = Vec::new();
    while let Ok(Some(())) = wire::read_frame(&mut stream, &mut buf) {
        match wire::decode_response(&buf) {
            Ok(response) => {
                let tx = pending
                    .lock()
                    .expect("pending map never poisoned")
                    .remove(&response.id.0);
                if let Some(tx) = tx {
                    let _ = tx.send(response);
                }
                // A response for an unknown id is dropped: the ticket
                // was discarded client-side.
            }
            Err(_) => break, // protocol confusion: stop trusting the stream
        }
    }
    // Fail fast for everything still in flight. The flag goes up
    // first: a submit that misses this drain will see it.
    closed.store(true, std::sync::atomic::Ordering::Release);
    let mut map = pending.lock().expect("pending map never poisoned");
    for (id, tx) in map.drain() {
        let _ = tx.send(Response {
            id: RequestId(id),
            body: ResponseBody::Failed {
                error: SearchError::Shutdown,
            },
        });
    }
}
