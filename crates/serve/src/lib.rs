//! # cned-serve — the sharded concurrent serving layer
//!
//! Scales the paper's pivot-based search (LAESA — Micó, Oncina &
//! Vidal 1994) past one index, one request, and one process:
//!
//! * [`sharded`] — [`ShardedIndex`]: the database partitioned into
//!   `k` contiguous LAESA shards (built in parallel), queried with
//!   **cross-shard bound propagation**, plus a small unindexed *delta
//!   shard* absorbing incremental inserts until compaction, with
//!   automatic **rebalancing** of undersized shards back into the
//!   size-balanced layout;
//! * [`session`] — [`ServeSession`]: the serving front-end. A
//!   non-blocking submit/[`Ticket`] handle over an index-owning
//!   scheduler thread, with bounded admission (typed
//!   [`cned_search::SearchError::Overloaded`] backpressure),
//!   per-request ids on every [`Response`], and graceful draining
//!   [`ServeSession::shutdown`];
//! * [`pipeline`] — [`QueryPipeline`]: the batch entry point, a thin
//!   wrapper running a whole request queue through a scoped session;
//! * [`wire`] — the network protocol: versioned length-prefixed
//!   binary frames (std-only, no serde/tokio) covering NN / k-NN /
//!   range / insert, **batch frames** packing many requests (and
//!   their answers) under one id, plus typed error codes mapping
//!   [`cned_search::SearchError`] both ways;
//! * [`server`] / [`client`] — [`Server`]: a readiness-based
//!   **event-loop** `std::net` front-end — a fixed pool of sweep
//!   threads drives every non-blocking connection (per-connection
//!   [`wire::FrameBuffer`] reassembly, bounded outbox backpressure,
//!   an in-band connection-cap rejection frame, idle timeouts,
//!   draining shutdown) and shares one session across all
//!   connections; [`Client`]: a pipelined client with buffered
//!   (explicitly flushed) submission, connect/read deadlines
//!   ([`ClientConfig`]), and batch calls ([`Client::nn_batch`] /
//!   [`Client::knn_batch`]) whose submissions return the same
//!   [`Ticket`] type the in-process session hands out.
//!
//! Everything plugs into the unified query API: [`ShardedIndex`]
//! implements [`cned_search::MetricIndex`] (NN / k-NN / **range** /
//! batches, all through [`cned_search::QueryOptions`] with typed
//! errors) and [`cned_search::InsertableIndex`], and sessions,
//! pipelines and servers are generic over any [`cned_search::MetricIndex`]
//! — `ShardedIndex` is merely the default (non-insertable backends
//! answer `Insert` requests with a typed failure).
//!
//! ## The cross-shard bound-propagation invariant
//!
//! A query fans across shards **in shard order**, and the pruning
//! radius handed to shard `s` is always the *exact* best distance
//! (for k-NN: the k-th best) found over shards `0..s` — so shard 2
//! starts its elimination with shard 1's best already in hand, the
//! way a single LAESA run reuses its own running best. This is sound
//! for the same reason bounded evaluation is sound inside one index:
//! a radius can only **reject** candidates, never answer for them.
//! Candidates whose true distance exceeds the radius cannot enter the
//! global result (something at least as close already exists in an
//! earlier shard), and candidates within the radius are still
//! evaluated and admitted, including exact ties (`d <= radius`), so
//! the final merge — under the canonical (distance, ascending
//! database index) ordering shared with `cned-search` — returns
//! exactly the single-index answer. Chávez et al. 2001's cost model
//! says distance evaluations dominate metric search, which is why the
//! propagated bound is worth the serialisation it imposes *within*
//! one query: it converts later shards' candidate evaluations into
//! cheap gate rejections, and throughput parallelism comes from
//! running many queries' chains concurrently instead.
//!
//! ## Why pivot distances stay exact
//!
//! Within every shard, distances from the query to the shard's
//! *pivots* are computed exactly even when they exceed the current
//! radius. A pivot's exact value feeds the triangle-inequality lower
//! bounds `G[u] = max_p |d(q,p) − d(p,u)|` of every candidate in the
//! shard; truncating it at the radius would corrupt those bounds and
//! make elimination unsound. Only *candidate* evaluations — whose
//! values merely compete against the running best — are bounded.
//! The per-query cost of a shard is therefore at least its pivot
//! count, which is the capacity knob: more shards with fewer pivots
//! each lowers build cost and tail latency, fewer shards with more
//! pivots minimises total distance computations.

// No unsafe here, enforced at compile time (and by cned-lint).
#![forbid(unsafe_code)]

pub mod client;
pub mod ordered;
pub mod pipeline;
pub mod server;
pub mod session;
pub mod sharded;
pub mod wire;

pub use client::{BatchTicket, Client, ClientConfig, ClientError};
pub use ordered::{OrderedGuard, OrderedMutex};
pub use pipeline::QueryPipeline;
pub use server::{ReplOp, ReplicaHub, Server, ServerConfig};
pub use session::{
    Request, RequestId, Response, ResponseBody, ServeSession, SessionConfig, SessionHandle, Ticket,
};
pub use sharded::{ShardConfig, ShardedIndex, ShardedStats};
pub use wire::{WireError, WireSymbol, BATCH_VERSION, CONTROL_ID, MAX_FRAME, WIRE_VERSION};
