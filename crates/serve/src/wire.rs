//! The network wire protocol: length-prefixed binary frames carrying
//! the session request/response vocabulary.
//!
//! Hand-rolled on `std` only (the deployment targets include offline
//! containers — no serde, no tokio): every integer is little-endian,
//! every `f64` travels as its IEEE-754 bit pattern (so distances
//! round-trip **bit-exactly**, which is what lets the loopback
//! integration tests demand bit-identical answers), and every frame
//! is independently decodable.
//!
//! ## Framing
//!
//! ```text
//! +----------------+---------+------+---------------+--------------+
//! | length: u32 LE | version | kind | id: u64 LE    | body…        |
//! +----------------+---------+------+---------------+--------------+
//!                   <-------------- length bytes ---------------->
//! ```
//!
//! * `length` counts everything after itself and must not exceed
//!   [`MAX_FRAME`] — oversized frames are a typed
//!   [`WireError::Oversized`], never an allocation bomb.
//! * `version` is [`WIRE_VERSION`]; a mismatch is
//!   [`WireError::BadVersion`] so incompatible peers fail loudly at
//!   the first frame.
//! * `kind` identifies the message ([`kind`] module); request and
//!   response kinds live in disjoint ranges so a stream cannot be
//!   mis-decoded as its mirror.
//! * `id` is the request id assigned by the submitting side and
//!   echoed verbatim in the matching response — correlation is by id,
//!   not arrival order.
//!
//! Strings are `u32` symbol count followed by fixed-width symbols
//! ([`WireSymbol`]); [`cned_search::SearchError`] travels as its
//! stable [`SearchError::code`] plus the variant's witness values.
//!
//! ## Batch frames
//!
//! A [`kind::REQ_BATCH`] frame packs many requests under **one** id:
//! `[BATCH_VERSION, count: u32 LE, (kind, body)…]`. The server
//! answers it with one [`kind::RESP_BATCH`] frame carrying the
//! response bodies in request order — correlation *inside* a batch is
//! positional, correlation *between* frames stays by id. One frame
//! per batch means one length prefix, one syscall per direction and
//! one session submission for work the scheduler's parallel query
//! chunks are fastest at.
//! Malformed input of any shape — truncated, oversized, trailing
//! garbage, unknown codes — decodes to a typed [`WireError`] instead
//! of panicking; the property suite drives this with arbitrary bytes.

use crate::session::{Request, RequestId, Response, ResponseBody};
use cned_core::Symbol;
use cned_search::{Neighbour, SearchError, SearchStats};

/// Protocol version carried in every frame.
///
/// History: v1 = the base request/response + batch protocol (PR 5/7);
/// v2 added the replication frames ([`kind::REQ_SYNC`],
/// [`kind::RESP_SYNC`], [`kind::RESP_REPL_INSERT`]) and the
/// `Persistence` error code; v3 added tombstoned deletes
/// ([`kind::REQ_DELETE`], [`kind::RESP_DELETED`],
/// [`kind::RESP_REPL_DELETE`]).
pub const WIRE_VERSION: u8 = 3;

/// Version byte of the **batch** frame body ([`kind::REQ_BATCH`] /
/// [`kind::RESP_BATCH`]). Batch frames were added after the base
/// protocol shipped; they carry their own sub-version so the batch
/// encoding can evolve without bumping [`WIRE_VERSION`] for peers
/// that never send batches. Unknown sub-versions are a typed
/// [`WireError::BadPayload`].
pub const BATCH_VERSION: u8 = 1;

/// Request-id value reserved for **connection-level** control
/// responses that answer no submitted request: a server past its
/// connection cap rejects the connection with a
/// `Failed { Overloaded }` response tagged with this id before
/// closing. Clients must treat a response carrying this id as fatal
/// to the connection, never route it to a ticket.
pub const CONTROL_ID: u64 = u64::MAX;

/// Maximum frame payload size (length-prefix value) either side
/// accepts: 16 MiB — far above any realistic request, far below an
/// allocation bomb.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Message kind bytes. Requests and responses use disjoint ranges.
pub mod kind {
    /// [`super::Request::Nn`].
    pub const REQ_NN: u8 = 0;
    /// [`super::Request::Knn`].
    pub const REQ_KNN: u8 = 1;
    /// [`super::Request::Range`].
    pub const REQ_RANGE: u8 = 2;
    /// [`super::Request::Insert`].
    pub const REQ_INSERT: u8 = 3;
    /// A batch of requests in one frame (one id, positional
    /// correlation within the batch; answered by one
    /// [`RESP_BATCH`] frame).
    pub const REQ_BATCH: u8 = 4;
    /// Replica registration: "stream me everything after my first
    /// `have` items". Answered by one or more [`RESP_SYNC`] frames
    /// (the catch-up payload, chunked), after which the connection
    /// stays open and receives one [`RESP_REPL_INSERT`] frame per
    /// accepted insert.
    pub const REQ_SYNC: u8 = 5;
    /// [`super::Request::Delete`]: tombstone one item by its global
    /// index. Body is the index as `u64 LE`; answered by a
    /// [`RESP_DELETED`] frame (idempotent: deleting a missing or
    /// already-deleted index answers `existed = 0`, not an error).
    pub const REQ_DELETE: u8 = 6;
    /// [`super::ResponseBody::Nn`].
    pub const RESP_NN: u8 = 16;
    /// [`super::ResponseBody::Knn`].
    pub const RESP_KNN: u8 = 17;
    /// [`super::ResponseBody::Range`].
    pub const RESP_RANGE: u8 = 18;
    /// [`super::ResponseBody::Inserted`].
    pub const RESP_INSERTED: u8 = 19;
    /// [`super::ResponseBody::Failed`].
    pub const RESP_FAILED: u8 = 20;
    /// The answer to a [`REQ_BATCH`] frame: the batch's response
    /// bodies in request order under the batch frame's id.
    pub const RESP_BATCH: u8 = 21;
    /// One chunk of a replica catch-up payload (under the
    /// [`REQ_SYNC`] frame's id): `[mode, done, len: u32 LE, bytes]`,
    /// where `mode` is [`super::SYNC_SNAPSHOT`] or
    /// [`super::SYNC_ITEMS`] and `done = 1` marks the final chunk.
    pub const RESP_SYNC: u8 = 22;
    /// One accepted insert streamed to a registered replica (under
    /// the [`REQ_SYNC`] frame's id): `[seq: u64 LE, item]`, `seq`
    /// being the item's global index. Replicas dedupe by `seq`, so
    /// overlap with the catch-up payload is harmless.
    pub const RESP_REPL_INSERT: u8 = 23;
    /// [`super::ResponseBody::Deleted`]: the answer to a
    /// [`REQ_DELETE`] frame. Body is one byte — `1` if the item was
    /// alive and is now tombstoned, `0` if it was already deleted or
    /// the index was out of range.
    pub const RESP_DELETED: u8 = 24;
    /// One accepted delete streamed to a registered replica (under
    /// the [`REQ_SYNC`] frame's id): `[index: u64 LE]`, the
    /// tombstoned item's global index. Deletes are idempotent, so
    /// overlap with a catch-up payload that already folded the
    /// tombstone in is harmless.
    pub const RESP_REPL_DELETE: u8 = 25;
}

/// [`kind::RESP_SYNC`] mode: the chunk bytes are part of a whole
/// snapshot file (`cned-store` format) — sent when the replica is too
/// far behind for a log tail.
pub const SYNC_SNAPSHOT: u8 = 0;

/// [`kind::RESP_SYNC`] mode: the chunk bytes are a run of
/// `[seq: u64 LE, item]` records — the primary's log tail past the
/// replica's `have` mark.
pub const SYNC_ITEMS: u8 = 1;

/// Everything that can go wrong encoding, decoding or transporting a
/// frame. All variants are values — no decode path panics on
/// untrusted input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Transport-level failure (socket read/write); carries the
    /// `std::io::Error` rendering.
    Io(String),
    /// The input ended before the announced structure was complete.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// A length prefix exceeded [`MAX_FRAME`].
    Oversized {
        /// The announced payload length.
        len: u32,
        /// The acceptance limit it broke.
        max: u32,
    },
    /// The frame's version byte is not [`WIRE_VERSION`].
    BadVersion {
        /// The version byte received.
        got: u8,
    },
    /// The kind byte names no message this side decodes.
    BadKind {
        /// The kind byte received.
        got: u8,
    },
    /// A structurally invalid body (unknown error code, trailing
    /// bytes, …).
    BadPayload {
        /// What was wrong.
        detail: &'static str,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "transport error: {e}"),
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} more bytes, got {got}")
            }
            WireError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes announced, limit {max}")
            }
            WireError::BadVersion { got } => {
                write!(
                    f,
                    "protocol version mismatch: got {got}, speak {WIRE_VERSION}"
                )
            }
            WireError::BadKind { got } => write!(f, "unknown message kind {got}"),
            WireError::BadPayload { detail } => write!(f, "malformed payload: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e.to_string())
    }
}

/// A symbol type that can cross the wire: fixed-width little-endian
/// encoding. Implemented for the unsigned integer widths the datasets
/// use (`u8` chain codes and dictionary bytes, `u32` codepoints, …).
pub trait WireSymbol: Symbol + std::hash::Hash {
    /// Encoded width in bytes.
    const WIDTH: usize;

    /// Append this symbol's encoding to `out`.
    fn put(self, out: &mut Vec<u8>);

    /// Decode one symbol from exactly [`WireSymbol::WIDTH`] bytes.
    fn get(bytes: &[u8]) -> Self;
}

macro_rules! wire_symbol_uint {
    ($($t:ty),+) => {$(
        impl WireSymbol for $t {
            const WIDTH: usize = std::mem::size_of::<$t>();

            fn put(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            fn get(bytes: &[u8]) -> $t {
                // Unreachable from network input: the only callers
                // iterate `chunks_exact(S::WIDTH)` over a slice whose
                // length was bounds-checked first, so every chunk has
                // exactly WIDTH bytes.
                <$t>::from_le_bytes(bytes.try_into().expect("caller slices WIDTH bytes"))
            }
        }
    )+};
}

wire_symbol_uint!(u8, u16, u32, u64);

// ---------------------------------------------------------------------------
// Primitive writers / a bounds-checked reader.

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Cursor over a payload; every read is bounds-checked into
/// [`WireError::Truncated`].
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let got = self.bytes.len() - self.at;
        if got < n {
            return Err(WireError::Truncated { needed: n, got });
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    // The fixed-width readers destructure with slice patterns rather
    // than `try_into().expect(..)`: every byte of this path is
    // untrusted network input, so even "impossible" panics are kept
    // out of it by construction.

    fn u32(&mut self) -> Result<u32, WireError> {
        match *self.take(4)? {
            [a, b, c, d] => Ok(u32::from_le_bytes([a, b, c, d])),
            _ => Err(WireError::Truncated { needed: 4, got: 0 }),
        }
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        match *self.take(8)? {
            [a, b, c, d, e, f, g, h] => Ok(u64::from_le_bytes([a, b, c, d, e, f, g, h])),
            _ => Err(WireError::Truncated { needed: 8, got: 0 }),
        }
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn usize(&mut self) -> Result<usize, WireError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| WireError::BadPayload {
            detail: "64-bit value exceeds this platform's usize",
        })
    }

    fn finish(self) -> Result<(), WireError> {
        if self.at != self.bytes.len() {
            return Err(WireError::BadPayload {
                detail: "trailing bytes after the announced structure",
            });
        }
        Ok(())
    }
}

fn put_string<S: WireSymbol>(out: &mut Vec<u8>, s: &[S]) {
    put_u32(out, s.len() as u32);
    for &sym in s {
        sym.put(out);
    }
}

fn get_string<S: WireSymbol>(r: &mut Reader<'_>) -> Result<Vec<S>, WireError> {
    let n = r.u32()? as usize;
    // The symbols must actually fit in the remaining payload; checking
    // before allocating keeps a lying header from reserving gigabytes.
    let bytes = r.take(n.saturating_mul(S::WIDTH))?;
    Ok(bytes.chunks_exact(S::WIDTH).map(S::get).collect())
}

fn put_neighbour(out: &mut Vec<u8>, n: &Neighbour) {
    put_u64(out, n.index as u64);
    put_f64(out, n.distance);
}

fn get_neighbour(r: &mut Reader<'_>) -> Result<Neighbour, WireError> {
    let index = r.usize()?;
    let distance = r.f64()?;
    Ok(Neighbour { index, distance })
}

fn put_neighbours(out: &mut Vec<u8>, ns: &[Neighbour]) {
    put_u32(out, ns.len() as u32);
    for n in ns {
        put_neighbour(out, n);
    }
}

fn get_neighbours(r: &mut Reader<'_>) -> Result<Vec<Neighbour>, WireError> {
    let n = r.u32()? as usize;
    // 16 bytes per neighbour; validate against the remaining payload
    // before allocating.
    let needed = n.saturating_mul(16);
    if (r.bytes.len() - r.at) < needed {
        return Err(WireError::Truncated {
            needed,
            got: r.bytes.len() - r.at,
        });
    }
    (0..n).map(|_| get_neighbour(r)).collect()
}

fn put_stats(out: &mut Vec<u8>, stats: &SearchStats) {
    put_u64(out, stats.distance_computations);
}

fn get_stats(r: &mut Reader<'_>) -> Result<SearchStats, WireError> {
    Ok(SearchStats {
        distance_computations: r.u64()?,
    })
}

fn put_error(out: &mut Vec<u8>, error: &SearchError) {
    out.push(error.code());
    match error {
        SearchError::EmptyDatabase | SearchError::Shutdown | SearchError::DeadlineExceeded => {}
        SearchError::PivotOutOfRange { pivot, len } => {
            put_u64(out, *pivot as u64);
            put_u64(out, *len as u64);
        }
        SearchError::DuplicatePivot { pivot } => put_u64(out, *pivot as u64),
        SearchError::InvalidRadius { radius } => put_f64(out, *radius),
        SearchError::LabelCount { labels, items } => {
            put_u64(out, *labels as u64);
            put_u64(out, *items as u64);
        }
        SearchError::UnsupportedConfig { reason } => {
            let bytes = reason.as_bytes();
            put_u32(out, bytes.len() as u32);
            out.extend_from_slice(bytes);
        }
        SearchError::Overloaded { depth } => put_u64(out, *depth as u64),
        SearchError::Persistence { reason } => {
            let bytes = reason.as_bytes();
            put_u32(out, bytes.len() as u32);
            out.extend_from_slice(bytes);
        }
        // SearchError is #[non_exhaustive]; a variant added without a
        // wire code must fail loudly in tests, not ship silently.
        // (Encode-side only: this is never reachable from network
        // input, which flows through `get_error`.)
        other => unreachable!("unmapped SearchError variant {other:?}"),
    }
}

fn get_error(r: &mut Reader<'_>) -> Result<SearchError, WireError> {
    let code = r.u8()?;
    Ok(match code {
        1 => SearchError::EmptyDatabase,
        2 => SearchError::PivotOutOfRange {
            pivot: r.usize()?,
            len: r.usize()?,
        },
        3 => SearchError::DuplicatePivot { pivot: r.usize()? },
        4 => SearchError::InvalidRadius { radius: r.f64()? },
        5 => SearchError::LabelCount {
            labels: r.usize()?,
            items: r.usize()?,
        },
        6 => {
            // The reason string crosses the wire for logging, but
            // `SearchError::UnsupportedConfig` holds a `&'static str`:
            // remote reasons map to one canonical static. The code and
            // variant are preserved exactly; only this human-readable
            // detail is canonicalised.
            let len = r.u32()? as usize;
            let _reason = r.take(len)?;
            SearchError::UnsupportedConfig {
                reason: "unsupported configuration (reported by the remote server)",
            }
        }
        7 => SearchError::Overloaded { depth: r.usize()? },
        8 => SearchError::Shutdown,
        9 => SearchError::DeadlineExceeded,
        10 => {
            // Unlike `UnsupportedConfig`, the variant holds an owned
            // `String`, so the remote reason round-trips exactly
            // (lossily re-encoded if it was not valid UTF-8).
            let len = r.u32()? as usize;
            let reason = String::from_utf8_lossy(r.take(len)?).into_owned();
            SearchError::Persistence { reason }
        }
        _ => {
            return Err(WireError::BadPayload {
                detail: "unknown error code",
            })
        }
    })
}

// ---------------------------------------------------------------------------
// Message codec.

fn begin(out: &mut Vec<u8>, kind: u8, id: RequestId) {
    out.push(WIRE_VERSION);
    out.push(kind);
    put_u64(out, id.0);
}

/// The kind byte of one request (shared by the single-frame and the
/// batch encodings).
fn request_kind<S: Symbol>(request: &Request<S>) -> u8 {
    match request {
        Request::Nn { .. } => kind::REQ_NN,
        Request::Knn { .. } => kind::REQ_KNN,
        Request::Range { .. } => kind::REQ_RANGE,
        Request::Insert { .. } => kind::REQ_INSERT,
        Request::Delete { .. } => kind::REQ_DELETE,
    }
}

/// Append one request's body (everything after the kind byte).
fn put_request_body<S: WireSymbol>(out: &mut Vec<u8>, request: &Request<S>) {
    match request {
        Request::Nn { query } => put_string(out, query),
        Request::Knn { query, k } => {
            put_u64(out, *k as u64);
            put_string(out, query);
        }
        Request::Range { query, radius } => {
            put_f64(out, *radius);
            put_string(out, query);
        }
        Request::Insert { item } => put_string(out, item),
        Request::Delete { index } => put_u64(out, *index as u64),
    }
}

/// Decode one request's body for a known kind byte.
fn get_request_body<S: WireSymbol>(k: u8, r: &mut Reader<'_>) -> Result<Request<S>, WireError> {
    Ok(match k {
        kind::REQ_NN => Request::Nn {
            query: get_string(r)?,
        },
        kind::REQ_KNN => {
            let k = r.usize()?;
            Request::Knn {
                query: get_string(r)?,
                k,
            }
        }
        kind::REQ_RANGE => {
            let radius = r.f64()?;
            Request::Range {
                query: get_string(r)?,
                radius,
            }
        }
        kind::REQ_INSERT => Request::Insert {
            item: get_string(r)?,
        },
        kind::REQ_DELETE => Request::Delete { index: r.usize()? },
        got => return Err(WireError::BadKind { got }),
    })
}

/// Encode a request tagged with `id` into a frame payload (no length
/// prefix — [`write_frame`] adds it).
pub fn encode_request<S: WireSymbol>(id: RequestId, request: &Request<S>, out: &mut Vec<u8>) {
    out.clear();
    begin(out, request_kind(request), id);
    put_request_body(out, request);
}

/// Encode a **batch** of requests into one frame payload under one
/// id. The answering [`kind::RESP_BATCH`] frame carries the response
/// bodies in the same order — correlation inside a batch is
/// positional, correlation between frames stays by id.
pub fn encode_batch_request<S: WireSymbol>(
    id: RequestId,
    requests: &[Request<S>],
    out: &mut Vec<u8>,
) {
    out.clear();
    begin(out, kind::REQ_BATCH, id);
    out.push(BATCH_VERSION);
    put_u32(out, requests.len() as u32);
    for request in requests {
        out.push(request_kind(request));
        put_request_body(out, request);
    }
}

/// A decoded request frame: one request, a whole batch, or a replica
/// registration.
#[derive(Debug, Clone, PartialEq)]
pub enum WireRequest<S: Symbol> {
    /// A single-request frame.
    One(Request<S>),
    /// A [`kind::REQ_BATCH`] frame: the requests in wire order.
    Batch(Vec<Request<S>>),
    /// A [`kind::REQ_SYNC`] frame: a replica registering for the
    /// catch-up payload past its first `have` items plus the live
    /// insert stream. Connection-level (like [`CONTROL_ID`] traffic),
    /// so it is not a [`Request`] and never enters a session queue.
    Sync {
        /// Items the replica already holds durably.
        have: u64,
    },
}

/// Decode a frame payload as a request. Response kinds (and anything
/// else) are typed errors. Batch frames ([`kind::REQ_BATCH`]) are a
/// [`WireError::BadKind`] here — servers that accept batches use
/// [`decode_request_frame`].
pub fn decode_request<S: WireSymbol>(payload: &[u8]) -> Result<(RequestId, Request<S>), WireError> {
    match decode_request_frame(payload)? {
        (id, WireRequest::One(request)) => Ok((id, request)),
        (_, WireRequest::Batch(_)) => Err(WireError::BadKind {
            got: kind::REQ_BATCH,
        }),
        (_, WireRequest::Sync { .. }) => Err(WireError::BadKind {
            got: kind::REQ_SYNC,
        }),
    }
}

/// Decode a frame payload as either a single request or a batch.
pub fn decode_request_frame<S: WireSymbol>(
    payload: &[u8],
) -> Result<(RequestId, WireRequest<S>), WireError> {
    let mut r = Reader::new(payload);
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion { got: version });
    }
    let k = r.u8()?;
    let id = RequestId(r.u64()?);
    let request = match k {
        kind::REQ_BATCH => {
            let n = get_batch_header(&mut r)?;
            let mut batch = Vec::with_capacity(n);
            for _ in 0..n {
                let k = r.u8()?;
                batch.push(get_request_body(k, &mut r)?);
            }
            WireRequest::Batch(batch)
        }
        kind::REQ_SYNC => WireRequest::Sync { have: r.u64()? },
        k => WireRequest::One(get_request_body(k, &mut r)?),
    };
    r.finish()?;
    Ok((id, request))
}

/// Read and validate a batch body's sub-version and element count.
/// The count is checked against the remaining payload (every element
/// needs at least its kind byte) before any allocation, so a lying
/// count cannot reserve gigabytes.
fn get_batch_header(r: &mut Reader<'_>) -> Result<usize, WireError> {
    let sub = r.u8()?;
    if sub != BATCH_VERSION {
        return Err(WireError::BadPayload {
            detail: "unknown batch sub-version",
        });
    }
    let n = r.u32()? as usize;
    let remaining = r.bytes.len() - r.at;
    if n > remaining {
        return Err(WireError::Truncated {
            needed: n,
            got: remaining,
        });
    }
    Ok(n)
}

/// The kind byte of one response body (shared by the single-frame and
/// the batch encodings).
fn response_kind(body: &ResponseBody) -> u8 {
    match body {
        ResponseBody::Nn { .. } => kind::RESP_NN,
        ResponseBody::Knn { .. } => kind::RESP_KNN,
        ResponseBody::Range { .. } => kind::RESP_RANGE,
        ResponseBody::Inserted { .. } => kind::RESP_INSERTED,
        ResponseBody::Deleted { .. } => kind::RESP_DELETED,
        ResponseBody::Failed { .. } => kind::RESP_FAILED,
    }
}

/// Append one response body (everything after the kind byte).
fn put_response_body(out: &mut Vec<u8>, body: &ResponseBody) {
    match body {
        ResponseBody::Nn { neighbour, stats } => {
            match neighbour {
                Some(n) => {
                    out.push(1);
                    put_neighbour(out, n);
                }
                None => out.push(0),
            }
            put_stats(out, stats);
        }
        ResponseBody::Knn { neighbours, stats } | ResponseBody::Range { neighbours, stats } => {
            put_neighbours(out, neighbours);
            put_stats(out, stats);
        }
        ResponseBody::Inserted { index } => put_u64(out, *index as u64),
        ResponseBody::Deleted { existed } => out.push(u8::from(*existed)),
        ResponseBody::Failed { error } => put_error(out, error),
    }
}

/// Decode one response body for a known kind byte.
fn get_response_body(k: u8, r: &mut Reader<'_>) -> Result<ResponseBody, WireError> {
    Ok(match k {
        kind::RESP_NN => {
            let neighbour = match r.u8()? {
                0 => None,
                1 => Some(get_neighbour(r)?),
                _ => {
                    return Err(WireError::BadPayload {
                        detail: "neighbour presence flag must be 0 or 1",
                    })
                }
            };
            ResponseBody::Nn {
                neighbour,
                stats: get_stats(r)?,
            }
        }
        kind::RESP_KNN => ResponseBody::Knn {
            neighbours: get_neighbours(r)?,
            stats: get_stats(r)?,
        },
        kind::RESP_RANGE => ResponseBody::Range {
            neighbours: get_neighbours(r)?,
            stats: get_stats(r)?,
        },
        kind::RESP_INSERTED => ResponseBody::Inserted { index: r.usize()? },
        kind::RESP_DELETED => ResponseBody::Deleted {
            existed: match r.u8()? {
                0 => false,
                1 => true,
                _ => {
                    return Err(WireError::BadPayload {
                        detail: "deleted flag must be 0 or 1",
                    })
                }
            },
        },
        kind::RESP_FAILED => ResponseBody::Failed {
            error: get_error(r)?,
        },
        got => return Err(WireError::BadKind { got }),
    })
}

/// Encode a response (id + body) into a frame payload.
pub fn encode_response(response: &Response, out: &mut Vec<u8>) {
    out.clear();
    begin(out, response_kind(&response.body), response.id);
    put_response_body(out, &response.body);
}

/// Encode the answer to a batch frame: the batch's response bodies in
/// request order, under the batch frame's id.
pub fn encode_batch_response(id: RequestId, bodies: &[ResponseBody], out: &mut Vec<u8>) {
    out.clear();
    begin(out, kind::RESP_BATCH, id);
    out.push(BATCH_VERSION);
    put_u32(out, bodies.len() as u32);
    for body in bodies {
        out.push(response_kind(body));
        put_response_body(out, body);
    }
}

/// A decoded response frame: one response or a whole batch's bodies.
#[derive(Debug, Clone, PartialEq)]
pub enum WireResponse {
    /// A single-response frame.
    One(Response),
    /// A [`kind::RESP_BATCH`] frame: the batch frame's id plus its
    /// response bodies in request order.
    Batch(RequestId, Vec<ResponseBody>),
}

/// Decode a frame payload as a response. Request kinds (and anything
/// else) are typed errors. Batch frames are a [`WireError::BadKind`]
/// here — clients that send batches use [`decode_response_frame`].
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    match decode_response_frame(payload)? {
        WireResponse::One(response) => Ok(response),
        WireResponse::Batch(..) => Err(WireError::BadKind {
            got: kind::RESP_BATCH,
        }),
    }
}

/// Decode a frame payload as either a single response or a batch.
pub fn decode_response_frame(payload: &[u8]) -> Result<WireResponse, WireError> {
    let mut r = Reader::new(payload);
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion { got: version });
    }
    let k = r.u8()?;
    let id = RequestId(r.u64()?);
    let response = match k {
        kind::RESP_BATCH => {
            let n = get_batch_header(&mut r)?;
            let mut bodies = Vec::with_capacity(n);
            for _ in 0..n {
                let k = r.u8()?;
                bodies.push(get_response_body(k, &mut r)?);
            }
            WireResponse::Batch(id, bodies)
        }
        k => WireResponse::One(Response {
            id,
            body: get_response_body(k, &mut r)?,
        }),
    };
    r.finish()?;
    Ok(response)
}

// ---------------------------------------------------------------------------
// Replication frames (protocol v2).
//
// A replica speaks three frames beyond the base protocol: it sends one
// [`kind::REQ_SYNC`], then reads [`kind::RESP_SYNC`] chunks until
// `done`, then reads [`kind::RESP_REPL_INSERT`] frames forever. All of
// them reuse the standard frame header, so they interleave freely with
// ordinary traffic on the event-loop server.

/// Encode a replica registration: "I hold `have` items durably".
pub fn encode_sync_request(id: RequestId, have: u64, out: &mut Vec<u8>) {
    out.clear();
    begin(out, kind::REQ_SYNC, id);
    put_u64(out, have);
}

/// Encode one chunk of a catch-up payload under the sync request's
/// `id`. `mode` is [`SYNC_SNAPSHOT`] or [`SYNC_ITEMS`]; `done` marks
/// the final chunk of the payload.
pub fn encode_sync_chunk(id: RequestId, mode: u8, done: bool, chunk: &[u8], out: &mut Vec<u8>) {
    out.clear();
    begin(out, kind::RESP_SYNC, id);
    out.push(mode);
    out.push(u8::from(done));
    put_u32(out, chunk.len() as u32);
    out.extend_from_slice(chunk);
}

/// Encode one streamed accepted insert (`seq` = the item's global
/// index) under the sync request's `id`.
pub fn encode_repl_insert<S: WireSymbol>(id: RequestId, seq: u64, item: &[S], out: &mut Vec<u8>) {
    out.clear();
    begin(out, kind::RESP_REPL_INSERT, id);
    put_u64(out, seq);
    put_string(out, item);
}

/// Encode one streamed accepted delete (`index` = the tombstoned
/// item's global index) under the sync request's `id`.
pub fn encode_repl_delete(id: RequestId, index: u64, out: &mut Vec<u8>) {
    out.clear();
    begin(out, kind::RESP_REPL_DELETE, id);
    put_u64(out, index);
}

/// A frame as seen by a replica's catch-up connection.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplicaFrame<S: Symbol> {
    /// One [`kind::RESP_SYNC`] chunk of the catch-up payload.
    SyncChunk {
        /// The sync request's id, echoed back.
        id: RequestId,
        /// [`SYNC_SNAPSHOT`] or [`SYNC_ITEMS`].
        mode: u8,
        /// Whether this is the payload's final chunk.
        done: bool,
        /// The chunk bytes.
        chunk: Vec<u8>,
    },
    /// One streamed accepted insert.
    Insert {
        /// The item's global index on the primary.
        seq: u64,
        /// The item itself.
        item: Vec<S>,
    },
    /// One streamed accepted delete.
    Delete {
        /// The tombstoned item's global index on the primary.
        index: u64,
    },
    /// An ordinary response frame (e.g. a [`CONTROL_ID`]-tagged
    /// rejection, or a typed `Failed` answering the sync request on a
    /// server without replication support).
    Response(Response),
}

/// Decode a frame payload from a replica's point of view: sync chunks,
/// streamed inserts, and ordinary responses are all valid.
pub fn decode_replica_frame<S: WireSymbol>(payload: &[u8]) -> Result<ReplicaFrame<S>, WireError> {
    let mut r = Reader::new(payload);
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion { got: version });
    }
    let k = r.u8()?;
    let id = RequestId(r.u64()?);
    let frame = match k {
        kind::RESP_SYNC => {
            let mode = r.u8()?;
            if mode != SYNC_SNAPSHOT && mode != SYNC_ITEMS {
                return Err(WireError::BadPayload {
                    detail: "unknown sync chunk mode",
                });
            }
            let done = match r.u8()? {
                0 => false,
                1 => true,
                _ => {
                    return Err(WireError::BadPayload {
                        detail: "sync done flag must be 0 or 1",
                    })
                }
            };
            let len = r.u32()? as usize;
            let chunk = r.take(len)?.to_vec();
            ReplicaFrame::SyncChunk {
                id,
                mode,
                done,
                chunk,
            }
        }
        kind::RESP_REPL_INSERT => {
            let seq = r.u64()?;
            let item = get_string(&mut r)?;
            ReplicaFrame::Insert { seq, item }
        }
        kind::RESP_REPL_DELETE => ReplicaFrame::Delete { index: r.u64()? },
        k => ReplicaFrame::Response(Response {
            id,
            body: get_response_body(k, &mut r)?,
        }),
    };
    r.finish()?;
    Ok(frame)
}

// ---------------------------------------------------------------------------
// Framing.

/// Write one frame (length prefix + payload) **without flushing** —
/// hand this a `BufWriter` (or any buffering writer) and the frame
/// coalesces with its neighbours into one syscall at the explicit
/// flush. This is how both the event-loop server's write sweep and
/// the pipelined [`crate::Client`] pack many frames per `write(2)`.
pub fn write_frame_unflushed(w: &mut impl std::io::Write, payload: &[u8]) -> Result<(), WireError> {
    let len = u32::try_from(payload.len()).map_err(|_| WireError::Oversized {
        len: u32::MAX,
        max: MAX_FRAME,
    })?;
    if len > MAX_FRAME {
        return Err(WireError::Oversized {
            len,
            max: MAX_FRAME,
        });
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Write one frame (length prefix + payload) and flush — the
/// single-frame convenience over [`write_frame_unflushed`].
pub fn write_frame(w: &mut impl std::io::Write, payload: &[u8]) -> Result<(), WireError> {
    write_frame_unflushed(w, payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame with blocking reads. `Ok(None)` is a clean EOF at a
/// frame boundary; EOF *inside* a frame is [`WireError::Truncated`].
pub fn read_frame(r: &mut impl std::io::Read, buf: &mut Vec<u8>) -> Result<Option<()>, WireError> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        let n = r.read(&mut len_bytes[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(WireError::Truncated {
                needed: 4 - filled,
                got: 0,
            });
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(WireError::Oversized {
            len,
            max: MAX_FRAME,
        });
    }
    buf.clear();
    buf.resize(len as usize, 0);
    r.read_exact(buf)?;
    Ok(Some(()))
}

/// Incremental frame extractor for reads that arrive in arbitrary
/// chunks (the server's interruptible read loop): feed bytes with
/// [`FrameBuffer::extend`], pop complete frames with
/// [`FrameBuffer::next_frame`]. Partial frames simply wait for more
/// bytes; only genuinely malformed prefixes error.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Consumed prefix length (compacted lazily).
    at: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Append raw bytes from the transport.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: keeps the buffer bounded by one
        // frame plus one read chunk.
        if self.at > 0 {
            self.buf.drain(..self.at);
            self.at = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete frame payload, `Ok(None)` when more bytes
    /// are needed.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let pending = &self.buf[self.at..];
        // Slice pattern instead of `[..4].try_into().expect(..)`: this
        // also subsumes the "fewer than 4 bytes buffered" check, so no
        // panic is reachable from transport input.
        let len = match *pending {
            [a, b, c, d, ..] => u32::from_le_bytes([a, b, c, d]),
            _ => return Ok(None),
        };
        if len > MAX_FRAME {
            return Err(WireError::Oversized {
                len,
                max: MAX_FRAME,
            });
        }
        let total = 4 + len as usize;
        if pending.len() < total {
            return Ok(None);
        }
        let frame = pending[4..total].to_vec();
        self.at += total;
        Ok(Some(frame))
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_all_variants() {
        let requests: Vec<Request<u8>> = vec![
            Request::Nn {
                query: b"casa".to_vec(),
            },
            Request::Knn {
                query: b"".to_vec(),
                k: 7,
            },
            Request::Range {
                query: b"x".to_vec(),
                radius: 0.25,
            },
            Request::Insert {
                item: b"nuevo".to_vec(),
            },
            Request::Delete { index: 12 },
        ];
        let mut payload = Vec::new();
        for (i, request) in requests.iter().enumerate() {
            let id = RequestId(i as u64 + 40);
            encode_request(id, request, &mut payload);
            let (got_id, got) = decode_request::<u8>(&payload).unwrap();
            assert_eq!(got_id, id);
            assert_eq!(&got, request);
        }
    }

    #[test]
    fn wide_symbols_roundtrip() {
        let request: Request<u32> = Request::Nn {
            query: vec![0, 1, u32::MAX, 0xDEAD_BEEF],
        };
        let mut payload = Vec::new();
        encode_request(RequestId(9), &request, &mut payload);
        let (_, got) = decode_request::<u32>(&payload).unwrap();
        assert_eq!(got, request);
    }

    #[test]
    fn response_roundtrip_all_variants() {
        let neighbour = Neighbour {
            index: 3,
            distance: 8.0 / 15.0,
        };
        let stats = SearchStats {
            distance_computations: 42,
        };
        let bodies = vec![
            ResponseBody::Nn {
                neighbour: Some(neighbour),
                stats,
            },
            ResponseBody::Nn {
                neighbour: None,
                stats,
            },
            ResponseBody::Knn {
                neighbours: vec![neighbour; 3],
                stats,
            },
            ResponseBody::Range {
                neighbours: Vec::new(),
                stats,
            },
            ResponseBody::Inserted { index: 17 },
            ResponseBody::Deleted { existed: true },
            ResponseBody::Deleted { existed: false },
        ];
        let mut payload = Vec::new();
        for (i, body) in bodies.into_iter().enumerate() {
            let response = Response {
                id: RequestId(i as u64),
                body,
            };
            encode_response(&response, &mut payload);
            assert_eq!(decode_response(&payload).unwrap(), response);
        }
    }

    #[test]
    fn mixed_up_kinds_are_typed_errors() {
        let mut payload = Vec::new();
        encode_request::<u8>(
            RequestId(1),
            &Request::Nn {
                query: b"q".to_vec(),
            },
            &mut payload,
        );
        assert!(matches!(
            decode_response(&payload),
            Err(WireError::BadKind { .. })
        ));
        encode_response(
            &Response {
                id: RequestId(1),
                body: ResponseBody::Inserted { index: 0 },
            },
            &mut payload,
        );
        assert!(matches!(
            decode_request::<u8>(&payload),
            Err(WireError::BadKind { .. })
        ));
    }

    #[test]
    fn frame_buffer_reassembles_byte_by_byte() {
        let mut payload = Vec::new();
        encode_request::<u8>(
            RequestId(5),
            &Request::Range {
                query: b"abc".to_vec(),
                radius: 1.5,
            },
            &mut payload,
        );
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).unwrap();
        let mut fb = FrameBuffer::new();
        for &b in &framed[..framed.len() - 1] {
            fb.extend(&[b]);
            assert_eq!(fb.next_frame().unwrap(), None, "partial frames pend");
        }
        fb.extend(&framed[framed.len() - 1..]);
        assert_eq!(fb.next_frame().unwrap(), Some(payload));
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn batch_request_roundtrips_and_mismatched_decoders_reject_it() {
        let batch: Vec<Request<u8>> = vec![
            Request::Nn {
                query: b"casa".to_vec(),
            },
            Request::Knn {
                query: b"cosa".to_vec(),
                k: 3,
            },
            Request::Range {
                query: b"cesa".to_vec(),
                radius: 2.0,
            },
            Request::Insert {
                item: b"nuevo".to_vec(),
            },
        ];
        let mut payload = Vec::new();
        encode_batch_request(RequestId(77), &batch, &mut payload);
        let (id, got) = decode_request_frame::<u8>(&payload).unwrap();
        assert_eq!(id, RequestId(77));
        assert_eq!(got, WireRequest::Batch(batch));
        // The single-frame decoder refuses batch frames with a typed
        // error instead of mis-reading them.
        assert!(matches!(
            decode_request::<u8>(&payload),
            Err(WireError::BadKind { .. })
        ));
        assert!(matches!(
            decode_response_frame(&payload),
            Err(WireError::BadKind { .. })
        ));
    }

    #[test]
    fn batch_response_roundtrips() {
        let stats = SearchStats {
            distance_computations: 5,
        };
        let bodies = vec![
            ResponseBody::Nn {
                neighbour: Some(Neighbour {
                    index: 1,
                    distance: 0.5,
                }),
                stats,
            },
            ResponseBody::Failed {
                error: SearchError::Overloaded { depth: 8 },
            },
            ResponseBody::Inserted { index: 9 },
        ];
        let mut payload = Vec::new();
        encode_batch_response(RequestId(3), &bodies, &mut payload);
        assert_eq!(
            decode_response_frame(&payload).unwrap(),
            WireResponse::Batch(RequestId(3), bodies)
        );
        assert!(matches!(
            decode_response(&payload),
            Err(WireError::BadKind { .. })
        ));
    }

    #[test]
    fn empty_batches_roundtrip() {
        let mut payload = Vec::new();
        encode_batch_request::<u8>(RequestId(0), &[], &mut payload);
        assert_eq!(
            decode_request_frame::<u8>(&payload).unwrap().1,
            WireRequest::Batch(Vec::new())
        );
        encode_batch_response(RequestId(0), &[], &mut payload);
        assert_eq!(
            decode_response_frame(&payload).unwrap(),
            WireResponse::Batch(RequestId(0), Vec::new())
        );
    }

    #[test]
    fn lying_batch_counts_are_rejected_before_allocating() {
        let mut payload = Vec::new();
        payload.push(WIRE_VERSION);
        payload.push(kind::REQ_BATCH);
        put_u64(&mut payload, 1); // id
        payload.push(BATCH_VERSION);
        put_u32(&mut payload, u32::MAX); // count far beyond the payload
        assert!(matches!(
            decode_request_frame::<u8>(&payload),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn unknown_batch_sub_version_is_a_typed_error() {
        let mut payload = Vec::new();
        encode_batch_request::<u8>(
            RequestId(1),
            &[Request::Nn {
                query: b"q".to_vec(),
            }],
            &mut payload,
        );
        // The sub-version byte sits right after version/kind/id.
        payload[10] = BATCH_VERSION + 1;
        assert!(matches!(
            decode_request_frame::<u8>(&payload),
            Err(WireError::BadPayload { .. })
        ));
    }

    #[test]
    fn unflushed_frames_coalesce_in_a_buffered_writer() {
        let mut payload_a = Vec::new();
        let mut payload_b = Vec::new();
        encode_request::<u8>(
            RequestId(1),
            &Request::Nn {
                query: b"a".to_vec(),
            },
            &mut payload_a,
        );
        encode_request::<u8>(
            RequestId(2),
            &Request::Nn {
                query: b"b".to_vec(),
            },
            &mut payload_b,
        );
        let mut wire = Vec::new();
        write_frame_unflushed(&mut wire, &payload_a).unwrap();
        write_frame_unflushed(&mut wire, &payload_b).unwrap();
        let mut fb = FrameBuffer::new();
        fb.extend(&wire);
        assert_eq!(fb.next_frame().unwrap(), Some(payload_a));
        assert_eq!(fb.next_frame().unwrap(), Some(payload_b));
        assert_eq!(fb.next_frame().unwrap(), None);
    }

    #[test]
    fn repl_delete_roundtrips() {
        let mut payload = Vec::new();
        encode_repl_delete(RequestId(4), 99, &mut payload);
        assert_eq!(
            decode_replica_frame::<u8>(&payload).unwrap(),
            ReplicaFrame::Delete { index: 99 }
        );
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocating() {
        let mut fb = FrameBuffer::new();
        fb.extend(&(MAX_FRAME + 1).to_le_bytes());
        assert!(matches!(fb.next_frame(), Err(WireError::Oversized { .. })));
        let huge = (MAX_FRAME + 1).to_le_bytes();
        let mut r = std::io::Cursor::new(huge.to_vec());
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut r, &mut buf),
            Err(WireError::Oversized { .. })
        ));
    }
}
