//! The network wire protocol: length-prefixed binary frames carrying
//! the session request/response vocabulary.
//!
//! Hand-rolled on `std` only (the deployment targets include offline
//! containers — no serde, no tokio): every integer is little-endian,
//! every `f64` travels as its IEEE-754 bit pattern (so distances
//! round-trip **bit-exactly**, which is what lets the loopback
//! integration tests demand bit-identical answers), and every frame
//! is independently decodable.
//!
//! ## Framing
//!
//! ```text
//! +----------------+---------+------+---------------+--------------+
//! | length: u32 LE | version | kind | id: u64 LE    | body…        |
//! +----------------+---------+------+---------------+--------------+
//!                   <-------------- length bytes ---------------->
//! ```
//!
//! * `length` counts everything after itself and must not exceed
//!   [`MAX_FRAME`] — oversized frames are a typed
//!   [`WireError::Oversized`], never an allocation bomb.
//! * `version` is [`WIRE_VERSION`]; a mismatch is
//!   [`WireError::BadVersion`] so incompatible peers fail loudly at
//!   the first frame.
//! * `kind` identifies the message ([`kind`] module); request and
//!   response kinds live in disjoint ranges so a stream cannot be
//!   mis-decoded as its mirror.
//! * `id` is the request id assigned by the submitting side and
//!   echoed verbatim in the matching response — correlation is by id,
//!   not arrival order.
//!
//! Strings are `u32` symbol count followed by fixed-width symbols
//! ([`WireSymbol`]); [`cned_search::SearchError`] travels as its
//! stable [`SearchError::code`] plus the variant's witness values.
//! Malformed input of any shape — truncated, oversized, trailing
//! garbage, unknown codes — decodes to a typed [`WireError`] instead
//! of panicking; the property suite drives this with arbitrary bytes.

use crate::session::{Request, RequestId, Response, ResponseBody};
use cned_core::Symbol;
use cned_search::{Neighbour, SearchError, SearchStats};

/// Protocol version carried in every frame.
pub const WIRE_VERSION: u8 = 1;

/// Maximum frame payload size (length-prefix value) either side
/// accepts: 16 MiB — far above any realistic request, far below an
/// allocation bomb.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Message kind bytes. Requests and responses use disjoint ranges.
pub mod kind {
    /// [`super::Request::Nn`].
    pub const REQ_NN: u8 = 0;
    /// [`super::Request::Knn`].
    pub const REQ_KNN: u8 = 1;
    /// [`super::Request::Range`].
    pub const REQ_RANGE: u8 = 2;
    /// [`super::Request::Insert`].
    pub const REQ_INSERT: u8 = 3;
    /// [`super::ResponseBody::Nn`].
    pub const RESP_NN: u8 = 16;
    /// [`super::ResponseBody::Knn`].
    pub const RESP_KNN: u8 = 17;
    /// [`super::ResponseBody::Range`].
    pub const RESP_RANGE: u8 = 18;
    /// [`super::ResponseBody::Inserted`].
    pub const RESP_INSERTED: u8 = 19;
    /// [`super::ResponseBody::Failed`].
    pub const RESP_FAILED: u8 = 20;
}

/// Everything that can go wrong encoding, decoding or transporting a
/// frame. All variants are values — no decode path panics on
/// untrusted input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Transport-level failure (socket read/write); carries the
    /// `std::io::Error` rendering.
    Io(String),
    /// The input ended before the announced structure was complete.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// A length prefix exceeded [`MAX_FRAME`].
    Oversized {
        /// The announced payload length.
        len: u32,
        /// The acceptance limit it broke.
        max: u32,
    },
    /// The frame's version byte is not [`WIRE_VERSION`].
    BadVersion {
        /// The version byte received.
        got: u8,
    },
    /// The kind byte names no message this side decodes.
    BadKind {
        /// The kind byte received.
        got: u8,
    },
    /// A structurally invalid body (unknown error code, trailing
    /// bytes, …).
    BadPayload {
        /// What was wrong.
        detail: &'static str,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "transport error: {e}"),
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} more bytes, got {got}")
            }
            WireError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes announced, limit {max}")
            }
            WireError::BadVersion { got } => {
                write!(
                    f,
                    "protocol version mismatch: got {got}, speak {WIRE_VERSION}"
                )
            }
            WireError::BadKind { got } => write!(f, "unknown message kind {got}"),
            WireError::BadPayload { detail } => write!(f, "malformed payload: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e.to_string())
    }
}

/// A symbol type that can cross the wire: fixed-width little-endian
/// encoding. Implemented for the unsigned integer widths the datasets
/// use (`u8` chain codes and dictionary bytes, `u32` codepoints, …).
pub trait WireSymbol: Symbol {
    /// Encoded width in bytes.
    const WIDTH: usize;

    /// Append this symbol's encoding to `out`.
    fn put(self, out: &mut Vec<u8>);

    /// Decode one symbol from exactly [`WireSymbol::WIDTH`] bytes.
    fn get(bytes: &[u8]) -> Self;
}

macro_rules! wire_symbol_uint {
    ($($t:ty),+) => {$(
        impl WireSymbol for $t {
            const WIDTH: usize = std::mem::size_of::<$t>();

            fn put(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            fn get(bytes: &[u8]) -> $t {
                <$t>::from_le_bytes(bytes.try_into().expect("caller slices WIDTH bytes"))
            }
        }
    )+};
}

wire_symbol_uint!(u8, u16, u32, u64);

// ---------------------------------------------------------------------------
// Primitive writers / a bounds-checked reader.

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Cursor over a payload; every read is bounds-checked into
/// [`WireError::Truncated`].
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let got = self.bytes.len() - self.at;
        if got < n {
            return Err(WireError::Truncated { needed: n, got });
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn usize(&mut self) -> Result<usize, WireError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| WireError::BadPayload {
            detail: "64-bit value exceeds this platform's usize",
        })
    }

    fn finish(self) -> Result<(), WireError> {
        if self.at != self.bytes.len() {
            return Err(WireError::BadPayload {
                detail: "trailing bytes after the announced structure",
            });
        }
        Ok(())
    }
}

fn put_string<S: WireSymbol>(out: &mut Vec<u8>, s: &[S]) {
    put_u32(out, s.len() as u32);
    for &sym in s {
        sym.put(out);
    }
}

fn get_string<S: WireSymbol>(r: &mut Reader<'_>) -> Result<Vec<S>, WireError> {
    let n = r.u32()? as usize;
    // The symbols must actually fit in the remaining payload; checking
    // before allocating keeps a lying header from reserving gigabytes.
    let bytes = r.take(n.saturating_mul(S::WIDTH))?;
    Ok(bytes.chunks_exact(S::WIDTH).map(S::get).collect())
}

fn put_neighbour(out: &mut Vec<u8>, n: &Neighbour) {
    put_u64(out, n.index as u64);
    put_f64(out, n.distance);
}

fn get_neighbour(r: &mut Reader<'_>) -> Result<Neighbour, WireError> {
    let index = r.usize()?;
    let distance = r.f64()?;
    Ok(Neighbour { index, distance })
}

fn put_neighbours(out: &mut Vec<u8>, ns: &[Neighbour]) {
    put_u32(out, ns.len() as u32);
    for n in ns {
        put_neighbour(out, n);
    }
}

fn get_neighbours(r: &mut Reader<'_>) -> Result<Vec<Neighbour>, WireError> {
    let n = r.u32()? as usize;
    // 16 bytes per neighbour; validate against the remaining payload
    // before allocating.
    let needed = n.saturating_mul(16);
    if (r.bytes.len() - r.at) < needed {
        return Err(WireError::Truncated {
            needed,
            got: r.bytes.len() - r.at,
        });
    }
    (0..n).map(|_| get_neighbour(r)).collect()
}

fn put_stats(out: &mut Vec<u8>, stats: &SearchStats) {
    put_u64(out, stats.distance_computations);
}

fn get_stats(r: &mut Reader<'_>) -> Result<SearchStats, WireError> {
    Ok(SearchStats {
        distance_computations: r.u64()?,
    })
}

fn put_error(out: &mut Vec<u8>, error: &SearchError) {
    out.push(error.code());
    match error {
        SearchError::EmptyDatabase | SearchError::Shutdown => {}
        SearchError::PivotOutOfRange { pivot, len } => {
            put_u64(out, *pivot as u64);
            put_u64(out, *len as u64);
        }
        SearchError::DuplicatePivot { pivot } => put_u64(out, *pivot as u64),
        SearchError::InvalidRadius { radius } => put_f64(out, *radius),
        SearchError::LabelCount { labels, items } => {
            put_u64(out, *labels as u64);
            put_u64(out, *items as u64);
        }
        SearchError::UnsupportedConfig { reason } => {
            let bytes = reason.as_bytes();
            put_u32(out, bytes.len() as u32);
            out.extend_from_slice(bytes);
        }
        SearchError::Overloaded { depth } => put_u64(out, *depth as u64),
        // SearchError is #[non_exhaustive]; a variant added without a
        // wire code must fail loudly in tests, not ship silently.
        other => unreachable!("unmapped SearchError variant {other:?}"),
    }
}

fn get_error(r: &mut Reader<'_>) -> Result<SearchError, WireError> {
    let code = r.u8()?;
    Ok(match code {
        1 => SearchError::EmptyDatabase,
        2 => SearchError::PivotOutOfRange {
            pivot: r.usize()?,
            len: r.usize()?,
        },
        3 => SearchError::DuplicatePivot { pivot: r.usize()? },
        4 => SearchError::InvalidRadius { radius: r.f64()? },
        5 => SearchError::LabelCount {
            labels: r.usize()?,
            items: r.usize()?,
        },
        6 => {
            // The reason string crosses the wire for logging, but
            // `SearchError::UnsupportedConfig` holds a `&'static str`:
            // remote reasons map to one canonical static. The code and
            // variant are preserved exactly; only this human-readable
            // detail is canonicalised.
            let len = r.u32()? as usize;
            let _reason = r.take(len)?;
            SearchError::UnsupportedConfig {
                reason: "unsupported configuration (reported by the remote server)",
            }
        }
        7 => SearchError::Overloaded { depth: r.usize()? },
        8 => SearchError::Shutdown,
        _ => {
            return Err(WireError::BadPayload {
                detail: "unknown error code",
            })
        }
    })
}

// ---------------------------------------------------------------------------
// Message codec.

fn begin(out: &mut Vec<u8>, kind: u8, id: RequestId) {
    out.push(WIRE_VERSION);
    out.push(kind);
    put_u64(out, id.0);
}

/// Encode a request tagged with `id` into a frame payload (no length
/// prefix — [`write_frame`] adds it).
pub fn encode_request<S: WireSymbol>(id: RequestId, request: &Request<S>, out: &mut Vec<u8>) {
    out.clear();
    match request {
        Request::Nn { query } => {
            begin(out, kind::REQ_NN, id);
            put_string(out, query);
        }
        Request::Knn { query, k } => {
            begin(out, kind::REQ_KNN, id);
            put_u64(out, *k as u64);
            put_string(out, query);
        }
        Request::Range { query, radius } => {
            begin(out, kind::REQ_RANGE, id);
            put_f64(out, *radius);
            put_string(out, query);
        }
        Request::Insert { item } => {
            begin(out, kind::REQ_INSERT, id);
            put_string(out, item);
        }
    }
}

/// Decode a frame payload as a request. Response kinds (and anything
/// else) are typed errors.
pub fn decode_request<S: WireSymbol>(payload: &[u8]) -> Result<(RequestId, Request<S>), WireError> {
    let mut r = Reader::new(payload);
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion { got: version });
    }
    let k = r.u8()?;
    let id = RequestId(r.u64()?);
    let request = match k {
        kind::REQ_NN => Request::Nn {
            query: get_string(&mut r)?,
        },
        kind::REQ_KNN => {
            let k = r.usize()?;
            Request::Knn {
                query: get_string(&mut r)?,
                k,
            }
        }
        kind::REQ_RANGE => {
            let radius = r.f64()?;
            Request::Range {
                query: get_string(&mut r)?,
                radius,
            }
        }
        kind::REQ_INSERT => Request::Insert {
            item: get_string(&mut r)?,
        },
        got => return Err(WireError::BadKind { got }),
    };
    r.finish()?;
    Ok((id, request))
}

/// Encode a response (id + body) into a frame payload.
pub fn encode_response(response: &Response, out: &mut Vec<u8>) {
    out.clear();
    let id = response.id;
    match &response.body {
        ResponseBody::Nn { neighbour, stats } => {
            begin(out, kind::RESP_NN, id);
            match neighbour {
                Some(n) => {
                    out.push(1);
                    put_neighbour(out, n);
                }
                None => out.push(0),
            }
            put_stats(out, stats);
        }
        ResponseBody::Knn { neighbours, stats } => {
            begin(out, kind::RESP_KNN, id);
            put_neighbours(out, neighbours);
            put_stats(out, stats);
        }
        ResponseBody::Range { neighbours, stats } => {
            begin(out, kind::RESP_RANGE, id);
            put_neighbours(out, neighbours);
            put_stats(out, stats);
        }
        ResponseBody::Inserted { index } => {
            begin(out, kind::RESP_INSERTED, id);
            put_u64(out, *index as u64);
        }
        ResponseBody::Failed { error } => {
            begin(out, kind::RESP_FAILED, id);
            put_error(out, error);
        }
    }
}

/// Decode a frame payload as a response. Request kinds (and anything
/// else) are typed errors.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut r = Reader::new(payload);
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion { got: version });
    }
    let k = r.u8()?;
    let id = RequestId(r.u64()?);
    let body = match k {
        kind::RESP_NN => {
            let neighbour = match r.u8()? {
                0 => None,
                1 => Some(get_neighbour(&mut r)?),
                _ => {
                    return Err(WireError::BadPayload {
                        detail: "neighbour presence flag must be 0 or 1",
                    })
                }
            };
            ResponseBody::Nn {
                neighbour,
                stats: get_stats(&mut r)?,
            }
        }
        kind::RESP_KNN => ResponseBody::Knn {
            neighbours: get_neighbours(&mut r)?,
            stats: get_stats(&mut r)?,
        },
        kind::RESP_RANGE => ResponseBody::Range {
            neighbours: get_neighbours(&mut r)?,
            stats: get_stats(&mut r)?,
        },
        kind::RESP_INSERTED => ResponseBody::Inserted { index: r.usize()? },
        kind::RESP_FAILED => ResponseBody::Failed {
            error: get_error(&mut r)?,
        },
        got => return Err(WireError::BadKind { got }),
    };
    r.finish()?;
    Ok(Response { id, body })
}

// ---------------------------------------------------------------------------
// Framing.

/// Write one frame (length prefix + payload) and flush.
pub fn write_frame(w: &mut impl std::io::Write, payload: &[u8]) -> Result<(), WireError> {
    let len = u32::try_from(payload.len()).map_err(|_| WireError::Oversized {
        len: u32::MAX,
        max: MAX_FRAME,
    })?;
    if len > MAX_FRAME {
        return Err(WireError::Oversized {
            len,
            max: MAX_FRAME,
        });
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame with blocking reads. `Ok(None)` is a clean EOF at a
/// frame boundary; EOF *inside* a frame is [`WireError::Truncated`].
pub fn read_frame(r: &mut impl std::io::Read, buf: &mut Vec<u8>) -> Result<Option<()>, WireError> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        let n = r.read(&mut len_bytes[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(WireError::Truncated {
                needed: 4 - filled,
                got: 0,
            });
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(WireError::Oversized {
            len,
            max: MAX_FRAME,
        });
    }
    buf.clear();
    buf.resize(len as usize, 0);
    r.read_exact(buf)?;
    Ok(Some(()))
}

/// Incremental frame extractor for reads that arrive in arbitrary
/// chunks (the server's interruptible read loop): feed bytes with
/// [`FrameBuffer::extend`], pop complete frames with
/// [`FrameBuffer::next_frame`]. Partial frames simply wait for more
/// bytes; only genuinely malformed prefixes error.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Consumed prefix length (compacted lazily).
    at: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Append raw bytes from the transport.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: keeps the buffer bounded by one
        // frame plus one read chunk.
        if self.at > 0 {
            self.buf.drain(..self.at);
            self.at = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete frame payload, `Ok(None)` when more bytes
    /// are needed.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let pending = &self.buf[self.at..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(pending[..4].try_into().expect("4"));
        if len > MAX_FRAME {
            return Err(WireError::Oversized {
                len,
                max: MAX_FRAME,
            });
        }
        let total = 4 + len as usize;
        if pending.len() < total {
            return Ok(None);
        }
        let frame = pending[4..total].to_vec();
        self.at += total;
        Ok(Some(frame))
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_all_variants() {
        let requests: Vec<Request<u8>> = vec![
            Request::Nn {
                query: b"casa".to_vec(),
            },
            Request::Knn {
                query: b"".to_vec(),
                k: 7,
            },
            Request::Range {
                query: b"x".to_vec(),
                radius: 0.25,
            },
            Request::Insert {
                item: b"nuevo".to_vec(),
            },
        ];
        let mut payload = Vec::new();
        for (i, request) in requests.iter().enumerate() {
            let id = RequestId(i as u64 + 40);
            encode_request(id, request, &mut payload);
            let (got_id, got) = decode_request::<u8>(&payload).unwrap();
            assert_eq!(got_id, id);
            assert_eq!(&got, request);
        }
    }

    #[test]
    fn wide_symbols_roundtrip() {
        let request: Request<u32> = Request::Nn {
            query: vec![0, 1, u32::MAX, 0xDEAD_BEEF],
        };
        let mut payload = Vec::new();
        encode_request(RequestId(9), &request, &mut payload);
        let (_, got) = decode_request::<u32>(&payload).unwrap();
        assert_eq!(got, request);
    }

    #[test]
    fn response_roundtrip_all_variants() {
        let neighbour = Neighbour {
            index: 3,
            distance: 8.0 / 15.0,
        };
        let stats = SearchStats {
            distance_computations: 42,
        };
        let bodies = vec![
            ResponseBody::Nn {
                neighbour: Some(neighbour),
                stats,
            },
            ResponseBody::Nn {
                neighbour: None,
                stats,
            },
            ResponseBody::Knn {
                neighbours: vec![neighbour; 3],
                stats,
            },
            ResponseBody::Range {
                neighbours: Vec::new(),
                stats,
            },
            ResponseBody::Inserted { index: 17 },
        ];
        let mut payload = Vec::new();
        for (i, body) in bodies.into_iter().enumerate() {
            let response = Response {
                id: RequestId(i as u64),
                body,
            };
            encode_response(&response, &mut payload);
            assert_eq!(decode_response(&payload).unwrap(), response);
        }
    }

    #[test]
    fn mixed_up_kinds_are_typed_errors() {
        let mut payload = Vec::new();
        encode_request::<u8>(
            RequestId(1),
            &Request::Nn {
                query: b"q".to_vec(),
            },
            &mut payload,
        );
        assert!(matches!(
            decode_response(&payload),
            Err(WireError::BadKind { .. })
        ));
        encode_response(
            &Response {
                id: RequestId(1),
                body: ResponseBody::Inserted { index: 0 },
            },
            &mut payload,
        );
        assert!(matches!(
            decode_request::<u8>(&payload),
            Err(WireError::BadKind { .. })
        ));
    }

    #[test]
    fn frame_buffer_reassembles_byte_by_byte() {
        let mut payload = Vec::new();
        encode_request::<u8>(
            RequestId(5),
            &Request::Range {
                query: b"abc".to_vec(),
                radius: 1.5,
            },
            &mut payload,
        );
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).unwrap();
        let mut fb = FrameBuffer::new();
        for &b in &framed[..framed.len() - 1] {
            fb.extend(&[b]);
            assert_eq!(fb.next_frame().unwrap(), None, "partial frames pend");
        }
        fb.extend(&framed[framed.len() - 1..]);
        assert_eq!(fb.next_frame().unwrap(), Some(payload));
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocating() {
        let mut fb = FrameBuffer::new();
        fb.extend(&(MAX_FRAME + 1).to_le_bytes());
        assert!(matches!(fb.next_frame(), Err(WireError::Oversized { .. })));
        let huge = (MAX_FRAME + 1).to_le_bytes();
        let mut r = std::io::Cursor::new(huge.to_vec());
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut r, &mut buf),
            Err(WireError::Oversized { .. })
        ));
    }
}
