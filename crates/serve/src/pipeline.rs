//! [`QueryPipeline`] — a batch scheduler over any insertable
//! [`MetricIndex`] (a [`ShardedIndex`] by default).
//!
//! Accepts a queue of mixed requests (NN / k-NN / range queries and
//! inserts) and answers them with the semantics of strict in-order
//! execution, while extracting all the parallelism that semantics
//! allows:
//!
//! * consecutive **queries** form a batch dispatched across
//!   [`cned_search::workers_for`] worker threads. Workers *pull* work
//!   from a shared atomic cursor (dynamic load balancing — an
//!   expensive `d_C` query next to a cheap `d_E`-style one no longer
//!   pins the batch to the slowest stride). Each worker answers a
//!   whole query through the index's [`MetricIndex`] entry point, so
//!   per-query preparation (Myers `Peq` bitmaps, contextual scratch)
//!   happens once and results (neighbours, distances, *and* per-query
//!   computation counts) are bit-identical for any worker count;
//! * an **insert** is a barrier: the running batch flushes, the item
//!   lands in the index (for [`ShardedIndex`]: the delta shard,
//!   compacting into a fresh LAESA shard at the configured threshold),
//!   and later queries observe it — exactly the serial queue
//!   semantics.
//!
//! Failures are part of the protocol: a request that cannot be
//! answered (e.g. a NaN radius) produces a [`Response::Failed`]
//! carrying the typed [`SearchError`] in its queue slot, instead of
//! poisoning the batch. Queries against an *empty* index keep their
//! legacy shape (`Response::Nn { neighbour: None, .. }` / empty
//! neighbour lists), because an empty index is a normal serving state
//! between start-up and the first insert.

use crate::sharded::ShardedIndex;
use cned_core::metric::Distance;
use cned_core::Symbol;
use cned_search::{
    workers_for, InsertableIndex, MetricIndex, Neighbour, QueryOptions, SearchError, SearchStats,
};
use std::sync::atomic::{AtomicUsize, Ordering};

/// One unit of work for the pipeline.
#[derive(Debug, Clone)]
pub enum Request<S: Symbol> {
    /// Nearest-neighbour query.
    Nn {
        /// The query string.
        query: Vec<S>,
    },
    /// k-nearest-neighbours query.
    Knn {
        /// The query string.
        query: Vec<S>,
        /// How many neighbours.
        k: usize,
    },
    /// Range (radius) query: everything within `radius`, inclusive.
    Range {
        /// The query string.
        query: Vec<S>,
        /// The radius (must be non-negative and not NaN, else the
        /// request answers with [`Response::Failed`]).
        radius: f64,
    },
    /// Incremental insert.
    Insert {
        /// The item to add.
        item: Vec<S>,
    },
}

/// The answer to one [`Request`], in request order.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Nn`]; `None` when the index was empty at
    /// that point in the queue.
    Nn {
        /// The nearest neighbour (global index + distance).
        neighbour: Option<Neighbour>,
        /// Total distance evaluations for the query.
        stats: SearchStats,
    },
    /// Answer to [`Request::Knn`].
    Knn {
        /// Up to `k` neighbours in (distance, index) order.
        neighbours: Vec<Neighbour>,
        /// Total distance evaluations for the query.
        stats: SearchStats,
    },
    /// Answer to [`Request::Range`].
    Range {
        /// Every item within the radius, in (distance, index) order.
        neighbours: Vec<Neighbour>,
        /// Total distance evaluations for the query.
        stats: SearchStats,
    },
    /// Answer to [`Request::Insert`]: the item's global index.
    Inserted {
        /// Global index assigned to the inserted item.
        index: usize,
    },
    /// The request could not be answered; the typed error explains
    /// why. Other requests in the queue are unaffected.
    Failed {
        /// What went wrong.
        error: SearchError,
    },
}

/// A serving pipeline owning an insertable index — by default a
/// [`ShardedIndex`], but any [`InsertableIndex`] implementation (e.g.
/// [`cned_search::LinearIndex`]) plugs in unchanged.
pub struct QueryPipeline<S: Symbol, I: MetricIndex<S> = ShardedIndex<S>> {
    index: I,
    _symbols: std::marker::PhantomData<fn() -> S>,
}

impl<S: Symbol, I: MetricIndex<S>> QueryPipeline<S, I> {
    /// Wrap an index for pipelined serving.
    pub fn new(index: I) -> QueryPipeline<S, I> {
        QueryPipeline {
            index,
            _symbols: std::marker::PhantomData,
        }
    }

    /// The underlying index (e.g. for direct single queries).
    pub fn index(&self) -> &I {
        &self.index
    }

    /// Unwrap the pipeline back into its index.
    pub fn into_index(self) -> I {
        self.index
    }

    /// Answer one query request against the current index state.
    fn answer<D: Distance<S> + ?Sized>(&self, request: &Request<S>, dist: &D) -> Response {
        let dist: &dyn Distance<S> = &dist;
        match request {
            Request::Nn { query } => {
                match self.index.nn(query, dist, &QueryOptions::new()) {
                    Ok((neighbour, stats)) => Response::Nn { neighbour, stats },
                    // An empty index is a normal serving state, not a
                    // request defect.
                    Err(SearchError::EmptyDatabase) => Response::Nn {
                        neighbour: None,
                        stats: SearchStats::default(),
                    },
                    Err(error) => Response::Failed { error },
                }
            }
            Request::Knn { query, k } => {
                match self.index.knn(query, dist, &QueryOptions::new().k(*k)) {
                    Ok((neighbours, stats)) => Response::Knn { neighbours, stats },
                    Err(SearchError::EmptyDatabase) => Response::Knn {
                        neighbours: Vec::new(),
                        stats: SearchStats::default(),
                    },
                    Err(error) => Response::Failed { error },
                }
            }
            Request::Range { query, radius } => {
                let opts = QueryOptions::new().radius(*radius);
                // Validate the request itself before the empty-index
                // mapping: a malformed radius must answer Failed even
                // while the index is empty, or clients would see
                // state-dependent error reporting.
                if let Err(error) = opts.checked_radius() {
                    return Response::Failed { error };
                }
                match self.index.range(query, dist, &opts) {
                    Ok((neighbours, stats)) => Response::Range { neighbours, stats },
                    Err(SearchError::EmptyDatabase) => Response::Range {
                        neighbours: Vec::new(),
                        stats: SearchStats::default(),
                    },
                    Err(error) => Response::Failed { error },
                }
            }
            Request::Insert { .. } => unreachable!("inserts are barriers, never batched"),
        }
    }

    /// Answer the batched queries against the index's current state,
    /// in parallel, then clear the batch.
    fn flush<D: Distance<S> + ?Sized>(
        &self,
        requests: &[Request<S>],
        batch: &mut Vec<usize>,
        dist: &D,
        out: &mut [Option<Response>],
    ) {
        if batch.is_empty() {
            return;
        }
        let workers = workers_for(batch.len());
        if workers <= 1 {
            for &i in batch.iter() {
                out[i] = Some(self.answer(&requests[i], dist));
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let answers: Vec<(usize, Response)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let cursor = &cursor;
                        let batch = &*batch;
                        let this = &*self;
                        scope.spawn(move || {
                            let mut local = Vec::new();
                            loop {
                                let t = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(&i) = batch.get(t) else { break };
                                local.push((i, this.answer(&requests[i], dist)));
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("cned-serve worker thread panicked"))
                    .collect()
            });
            for (i, response) in answers {
                out[i] = Some(response);
            }
        }
        batch.clear();
    }
}

impl<S: Symbol, I: InsertableIndex<S>> QueryPipeline<S, I> {
    /// Process `requests` with in-order semantics, returning one
    /// [`Response`] per request in input order. See the module docs
    /// for the scheduling model.
    ///
    /// Takes the queue by reference: queries are answered in place
    /// (no copies) and only inserted items are cloned into the index,
    /// so callers can reuse or replay the queue without paying a deep
    /// copy per call.
    pub fn run<D: Distance<S> + ?Sized>(
        &mut self,
        requests: &[Request<S>],
        dist: &D,
    ) -> Vec<Response> {
        let mut out: Vec<Option<Response>> = requests.iter().map(|_| None).collect();
        // Indices of the queries batched since the last barrier.
        let mut batch: Vec<usize> = Vec::new();
        for (i, request) in requests.iter().enumerate() {
            match request {
                Request::Nn { .. } | Request::Knn { .. } | Request::Range { .. } => batch.push(i),
                Request::Insert { item } => {
                    self.flush(requests, &mut batch, dist, &mut out);
                    let index = self.index.insert(item.clone(), &dist);
                    out[i] = Some(Response::Inserted { index });
                }
            }
        }
        self.flush(requests, &mut batch, dist, &mut out);
        out.into_iter()
            .map(|r| r.expect("every request answered"))
            .collect()
    }
}
