//! [`QueryPipeline`] — the batch entry point, kept as a thin wrapper
//! over the session machinery.
//!
//! Since the session/ticket redesign, the scheduling brain lives in
//! [`crate::session`]: one scheduler with in-order/insert-barrier
//! semantics, parallel query chunks, and per-request ids on every
//! response. `QueryPipeline::run` is "submit the whole queue into a
//! session, wait every ticket in order" — a *scoped* session whose
//! scheduler runs on a scoped thread borrowing the pipeline's index,
//! so the batch call keeps its old synchronous shape (and its
//! non-`'static` `&D` distance parameter) while exercising exactly
//! the code path a live [`crate::ServeSession`] serves through.
//!
//! Semantics (unchanged from the pre-session pipeline, now enforced
//! by construction):
//!
//! * consecutive **queries** form a batch dispatched across
//!   [`cned_search::workers_for`] worker threads with dynamic load
//!   balancing; results (neighbours, distances, *and* per-query
//!   computation counts) are bit-identical for any worker count;
//! * an **insert** is a barrier: earlier requests answer against the
//!   pre-insert index, later ones observe the new item;
//! * failures are values: a defective request yields
//!   [`ResponseBody::Failed`] in its slot (tagged with its
//!   [`RequestId`]) without poisoning the batch, and queries against
//!   an empty index keep their legacy empty-result shape.

use crate::session::{scheduler_loop, SessionShared, Ticket};
use crate::sharded::ShardedIndex;
use crate::{Request, RequestId, Response};
use cned_core::metric::Distance;
use cned_core::Symbol;
use cned_search::MetricIndex;

#[allow(unused_imports)] // rustdoc links
use crate::ResponseBody;

/// A batch serving pipeline owning an index — by default a
/// [`ShardedIndex`], but any [`MetricIndex`] implementation (e.g.
/// [`cned_search::LinearIndex`]) plugs in unchanged. Backends without
/// insert support answer `Insert` requests with a typed
/// [`ResponseBody::Failed`].
pub struct QueryPipeline<S: Symbol, I: MetricIndex<S> = ShardedIndex<S>> {
    index: I,
    _symbols: std::marker::PhantomData<fn() -> S>,
}

impl<S: Symbol, I: MetricIndex<S>> QueryPipeline<S, I> {
    /// Wrap an index for batch serving.
    pub fn new(index: I) -> QueryPipeline<S, I> {
        QueryPipeline {
            index,
            _symbols: std::marker::PhantomData,
        }
    }

    /// The underlying index (e.g. for direct single queries).
    pub fn index(&self) -> &I {
        &self.index
    }

    /// Unwrap the pipeline back into its index.
    pub fn into_index(self) -> I {
        self.index
    }

    /// Process `requests` with in-order semantics, returning one
    /// [`Response`] per request in input order; `responses[i]` carries
    /// [`RequestId`]`(i as u64)`, so callers can also correlate by id.
    /// See the module docs for the scheduling model.
    ///
    /// Takes the queue by reference: each request is cloned once into
    /// the session queue, so callers can reuse or replay the queue
    /// across calls.
    pub fn run<D: Distance<S> + ?Sized>(
        &mut self,
        requests: &[Request<S>],
        dist: &D,
    ) -> Vec<Response> {
        let dist: &dyn Distance<S> = &dist;
        let shared: SessionShared<S> = SessionShared::new();
        let index = &mut self.index;
        std::thread::scope(|scope| {
            let shared_ref = &shared;
            let scheduler = scope.spawn(move || scheduler_loop(shared_ref, index, dist));
            // An unbounded scoped session: the batch caller *is* the
            // admission control, so backpressure would be self-inflicted.
            let tickets: Vec<Ticket> = requests
                .iter()
                .map(|request| {
                    shared
                        .submit(usize::MAX, request.clone())
                        .expect("unbounded scoped session accepts every request")
                })
                .collect();
            let responses: Vec<Response> = tickets.into_iter().map(Ticket::wait).collect();
            shared.begin_drain();
            scheduler.join().expect("scoped session scheduler panicked");
            debug_assert!(responses
                .iter()
                .enumerate()
                .all(|(i, r)| r.id == RequestId(i as u64)));
            responses
        })
    }
}
