//! [`QueryPipeline`] — a batch scheduler over a [`ShardedIndex`].
//!
//! Accepts a queue of mixed requests (NN / k-NN queries and inserts)
//! and answers them with the semantics of strict in-order execution,
//! while extracting all the parallelism that semantics allows:
//!
//! * consecutive **queries** form a batch dispatched across
//!   [`cned_search::workers_for`] worker threads. Workers *pull* work
//!   from a shared atomic cursor (dynamic load balancing — an
//!   expensive `d_C` query next to a cheap `d_E`-style one no longer
//!   pins the batch to the slowest stride). The (query × shard) tasks
//!   of one query form a dependency chain — shard `s + 1`'s pruning
//!   radius is the best distance over shards `0..=s` — so a worker
//!   that takes a query runs its whole chain, preparing the query
//!   once ([`Distance::prepare`]) and reusing the prepared form
//!   across every shard. This keeps results (neighbours, distances,
//!   *and* per-query computation counts) bit-identical for any worker
//!   count, because no query's pruning bound ever depends on another
//!   query's progress;
//! * an **insert** is a barrier: the running batch flushes, the item
//!   lands in the index's delta shard (compacting into a fresh LAESA
//!   shard at the configured threshold), and later queries observe
//!   it — exactly the serial queue semantics.

use crate::sharded::ShardedIndex;
use cned_core::metric::Distance;
use cned_core::Symbol;
use cned_search::{workers_for, Neighbour, SearchStats};
use std::sync::atomic::{AtomicUsize, Ordering};

/// One unit of work for the pipeline.
#[derive(Debug, Clone)]
pub enum Request<S: Symbol> {
    /// Nearest-neighbour query.
    Nn {
        /// The query string.
        query: Vec<S>,
    },
    /// k-nearest-neighbours query.
    Knn {
        /// The query string.
        query: Vec<S>,
        /// How many neighbours.
        k: usize,
    },
    /// Incremental insert into the delta shard.
    Insert {
        /// The item to add.
        item: Vec<S>,
    },
}

/// The answer to one [`Request`], in request order.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Nn`]; `None` when the index was empty at
    /// that point in the queue.
    Nn {
        /// The nearest neighbour (global index + distance).
        neighbour: Option<Neighbour>,
        /// Total distance evaluations across shards + delta scan.
        stats: SearchStats,
    },
    /// Answer to [`Request::Knn`].
    Knn {
        /// Up to `k` neighbours in (distance, index) order.
        neighbours: Vec<Neighbour>,
        /// Total distance evaluations across shards + delta scan.
        stats: SearchStats,
    },
    /// Answer to [`Request::Insert`]: the item's global index.
    Inserted {
        /// Global index assigned to the inserted item.
        index: usize,
    },
}

/// A serving pipeline owning a [`ShardedIndex`].
pub struct QueryPipeline<S: Symbol> {
    index: ShardedIndex<S>,
}

impl<S: Symbol> QueryPipeline<S> {
    /// Wrap an index for pipelined serving.
    pub fn new(index: ShardedIndex<S>) -> QueryPipeline<S> {
        QueryPipeline { index }
    }

    /// The underlying index (e.g. for direct single queries).
    pub fn index(&self) -> &ShardedIndex<S> {
        &self.index
    }

    /// Unwrap the pipeline back into its index.
    pub fn into_index(self) -> ShardedIndex<S> {
        self.index
    }

    /// Process `requests` with in-order semantics, returning one
    /// [`Response`] per request in input order. See the module docs
    /// for the scheduling model.
    ///
    /// Takes the queue by reference: queries are answered in place
    /// (no copies) and only inserted items are cloned into the index,
    /// so callers can reuse or replay the queue without paying a deep
    /// copy per call.
    pub fn run<D: Distance<S> + ?Sized>(
        &mut self,
        requests: &[Request<S>],
        dist: &D,
    ) -> Vec<Response> {
        let mut out: Vec<Option<Response>> = requests.iter().map(|_| None).collect();
        // Indices of the queries batched since the last barrier.
        let mut batch: Vec<usize> = Vec::new();
        for (i, request) in requests.iter().enumerate() {
            match request {
                Request::Nn { .. } | Request::Knn { .. } => batch.push(i),
                Request::Insert { item } => {
                    self.flush(requests, &mut batch, dist, &mut out);
                    let index = self.index.insert(item.clone(), dist);
                    out[i] = Some(Response::Inserted { index });
                }
            }
        }
        self.flush(requests, &mut batch, dist, &mut out);
        out.into_iter()
            .map(|r| r.expect("every request answered"))
            .collect()
    }

    /// Answer the batched queries against the index's current state,
    /// in parallel, then clear the batch.
    fn flush<D: Distance<S> + ?Sized>(
        &self,
        requests: &[Request<S>],
        batch: &mut Vec<usize>,
        dist: &D,
        out: &mut [Option<Response>],
    ) {
        if batch.is_empty() {
            return;
        }
        let answer = |i: usize| -> Response {
            match &requests[i] {
                Request::Nn { query } => {
                    let result = self.index.nn(query, dist);
                    match result {
                        None => Response::Nn {
                            neighbour: None,
                            stats: SearchStats::default(),
                        },
                        Some((nb, stats)) => Response::Nn {
                            neighbour: Some(nb),
                            stats: stats.total(),
                        },
                    }
                }
                Request::Knn { query, k } => {
                    let (neighbours, stats) = self.index.knn(query, dist, *k);
                    Response::Knn {
                        neighbours,
                        stats: stats.total(),
                    }
                }
                Request::Insert { .. } => unreachable!("inserts are barriers, never batched"),
            }
        };

        let workers = workers_for(batch.len());
        if workers <= 1 {
            for &i in batch.iter() {
                out[i] = Some(answer(i));
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let answers: Vec<(usize, Response)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let cursor = &cursor;
                        let batch = &*batch;
                        let answer = &answer;
                        scope.spawn(move || {
                            let mut local = Vec::new();
                            loop {
                                let t = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(&i) = batch.get(t) else { break };
                                local.push((i, answer(i)));
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("cned-serve worker thread panicked"))
                    .collect()
            });
            for (i, response) in answers {
                out[i] = Some(response);
            }
        }
        batch.clear();
    }
}
