//! The session/ticket serving API: [`ServeSession`] — a non-blocking
//! handle over an index-owning scheduler thread.
//!
//! The batch API ([`crate::QueryPipeline::run`]) answers "here is a
//! queue, block until every answer exists". A served workload is the
//! opposite shape: requests trickle in from many callers, answers are
//! wanted as soon as *their* chain completes, and the server must be
//! able to say **no** when it falls behind. The session model covers
//! that shape with three moves:
//!
//! * [`ServeSession::submit`] is non-blocking: it enqueues the request
//!   and immediately returns a [`Ticket`] tagged with the request's
//!   [`RequestId`]. The caller collects the answer through
//!   [`Ticket::try_recv`] (poll) or [`Ticket::wait`] (block), in any
//!   order — many tickets may be in flight at once (pipelining).
//! * Admission is **bounded**: past [`SessionConfig::queue_depth`]
//!   queued requests, `submit` refuses with
//!   [`SearchError::Overloaded`] instead of growing the queue without
//!   limit. Backpressure is a typed value the caller (or the wire
//!   protocol) can forward, not a stall.
//! * [`ServeSession::shutdown`] is **graceful**: it stops admission
//!   ([`SearchError::Shutdown`] for new submissions) but drains every
//!   already-accepted request — no ticket issued before the shutdown
//!   is ever dropped — then hands the index back.
//!
//! ## Scheduling model
//!
//! One scheduler thread owns the index and pulls the queue in FIFO
//! order with exactly the in-order/insert-barrier semantics of the
//! batch pipeline: consecutive *queries* form a chunk answered in
//! parallel across [`cned_search::workers_for`] workers (each worker
//! pulls whole queries from an atomic cursor, so per-query preparation
//! happens once and results are bit-identical for any worker count);
//! an **insert** is a barrier — every earlier request is answered
//! against the pre-insert index, every later one observes the new
//! item. Responses are delivered per ticket the moment their query
//! completes.
//!
//! Every [`Response`] — including [`ResponseBody::Failed`] — carries
//! the [`RequestId`] of the request that produced it, so answers
//! correlate by identity, never by queue position.

use crate::ordered::{rank, OrderedMutex};
use crate::sharded::ShardedIndex;
use cned_core::metric::Distance;
use cned_core::Symbol;
use cned_search::{workers_for, MetricIndex, Neighbour, QueryOptions, SearchError, SearchStats};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar};
use std::thread::JoinHandle;

/// Identity of one submitted request within its session (assigned
/// sequentially from 0 at submission). Every [`Response`] carries the
/// id of the request that produced it, so callers and wire clients
/// correlate answers by identity instead of arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// One unit of work for a session or pipeline.
///
/// `PartialEq` compares the `Range` radius by value, so a NaN radius
/// (which is still *served* — it answers `Failed`) compares unequal to
/// itself; there is deliberately no `Eq`.
#[derive(Debug, Clone, PartialEq)]
pub enum Request<S: Symbol> {
    /// Nearest-neighbour query.
    Nn {
        /// The query string.
        query: Vec<S>,
    },
    /// k-nearest-neighbours query.
    Knn {
        /// The query string.
        query: Vec<S>,
        /// How many neighbours.
        k: usize,
    },
    /// Range (radius) query: everything within `radius`, inclusive.
    Range {
        /// The query string.
        query: Vec<S>,
        /// The radius (must be non-negative and not NaN, else the
        /// request answers with [`ResponseBody::Failed`]).
        radius: f64,
    },
    /// Incremental insert (a barrier: see the module docs).
    Insert {
        /// The item to add.
        item: Vec<S>,
    },
    /// Tombstone delete of one global index (a barrier, like
    /// [`Request::Insert`]: earlier queries still observe the item,
    /// later ones never do).
    Delete {
        /// Global index of the item to delete.
        index: usize,
    },
}

impl<S: Symbol> Request<S> {
    /// The query/item payload (for logging and demos).
    pub fn payload(&self) -> &[S] {
        match self {
            Request::Nn { query } => query,
            Request::Knn { query, .. } => query,
            Request::Range { query, .. } => query,
            Request::Insert { item } => item,
            // A delete addresses an index, not a payload.
            Request::Delete { .. } => &[],
        }
    }
}

/// The answer to one [`Request`]: the originating request's id plus
/// the kind-specific body.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Id of the request this response answers.
    pub id: RequestId,
    /// The payload.
    pub body: ResponseBody,
}

/// Kind-specific payload of a [`Response`].
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// Answer to [`Request::Nn`]; `None` when the index was empty (or
    /// held nothing within the radius) at that point in the queue.
    Nn {
        /// The nearest neighbour (global index + distance).
        neighbour: Option<Neighbour>,
        /// Total distance evaluations for the query.
        stats: SearchStats,
    },
    /// Answer to [`Request::Knn`].
    Knn {
        /// Up to `k` neighbours in (distance, index) order.
        neighbours: Vec<Neighbour>,
        /// Total distance evaluations for the query.
        stats: SearchStats,
    },
    /// Answer to [`Request::Range`].
    Range {
        /// Every item within the radius, in (distance, index) order.
        neighbours: Vec<Neighbour>,
        /// Total distance evaluations for the query.
        stats: SearchStats,
    },
    /// Answer to [`Request::Insert`]: the item's global index.
    Inserted {
        /// Global index assigned to the inserted item.
        index: usize,
    },
    /// Answer to [`Request::Delete`].
    Deleted {
        /// Whether the index was alive (idempotent: deleting an
        /// already-deleted or out-of-range index answers `false`).
        existed: bool,
    },
    /// The request could not be answered; the typed error explains
    /// why. Other requests in the queue are unaffected.
    Failed {
        /// What went wrong.
        error: SearchError,
    },
}

/// Knobs of a [`ServeSession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionConfig {
    /// Maximum number of requests queued (accepted but not yet being
    /// answered) before [`ServeSession::submit`] refuses with
    /// [`SearchError::Overloaded`].
    pub queue_depth: usize,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig { queue_depth: 1024 }
    }
}

impl SessionConfig {
    /// Default knobs (`queue_depth = 1024`).
    pub fn new() -> SessionConfig {
        SessionConfig::default()
    }

    /// Set the admission-queue depth.
    pub fn queue_depth(mut self, depth: usize) -> SessionConfig {
        self.queue_depth = depth;
        self
    }
}

/// A claim on the eventual [`Response`] to one submitted request.
///
/// Exactly one response is delivered per ticket; collect it with
/// [`Ticket::try_recv`] (non-blocking) or [`Ticket::wait`]. Tickets
/// are independent — hold many and collect them in any order.
#[derive(Debug)]
pub struct Ticket {
    id: RequestId,
    rx: mpsc::Receiver<Response>,
    /// Whether a response (real or the disconnection fallback) has
    /// already been handed out; later polls yield `None`.
    done: std::cell::Cell<bool>,
}

impl Ticket {
    pub(crate) fn new(id: RequestId, rx: mpsc::Receiver<Response>) -> Ticket {
        Ticket {
            id,
            rx,
            done: std::cell::Cell::new(false),
        }
    }

    /// The id of the submitted request (matches the eventual
    /// [`Response::id`]).
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// The response, if it has arrived (`None` while the request is
    /// still queued or in flight, and on every poll after the
    /// response has been collected — at most one response is ever
    /// handed out). If the serving side died before answering — which
    /// a graceful shutdown never does — this yields a
    /// [`ResponseBody::Failed`] with [`SearchError::Shutdown`] once.
    pub fn try_recv(&self) -> Option<Response> {
        if self.done.get() {
            return None;
        }
        match self.rx.try_recv() {
            Ok(response) => {
                self.done.set(true);
                Some(response)
            }
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => {
                self.done.set(true);
                Some(Response {
                    id: self.id,
                    body: ResponseBody::Failed {
                        error: SearchError::Shutdown,
                    },
                })
            }
        }
    }

    /// Block until the response arrives. See [`Ticket::try_recv`] for
    /// the disconnection fallback (also what this returns if the
    /// response was already collected through `try_recv` — `wait`
    /// consumes the ticket, so the combination is caller misuse).
    pub fn wait(self) -> Response {
        let id = self.id;
        self.rx.recv().unwrap_or(Response {
            id,
            body: ResponseBody::Failed {
                error: SearchError::Shutdown,
            },
        })
    }
}

/// One queued request: id, payload, and the ticket's delivery channel.
type Slot<S> = (RequestId, Request<S>, mpsc::Sender<Response>);

struct SessionState<S: Symbol> {
    queue: VecDeque<Slot<S>>,
    next_id: u64,
    draining: bool,
}

/// Queue + scheduling state shared between submitters and the
/// scheduler (thread or scope). Lifetime-free: requests and responses
/// are owned values, so the same machinery backs both the owned
/// [`ServeSession`] and the scoped session inside
/// [`crate::QueryPipeline::run`].
pub(crate) struct SessionShared<S: Symbol> {
    state: OrderedMutex<SessionState<S>>,
    /// Signalled on new work and on drain, waking the scheduler.
    work: Condvar,
}

impl<S: Symbol> SessionShared<S> {
    pub(crate) fn new() -> SessionShared<S> {
        SessionShared {
            state: OrderedMutex::new(
                rank::SESSION_STATE,
                "session.state",
                SessionState {
                    queue: VecDeque::new(),
                    next_id: 0,
                    draining: false,
                },
            ),
            work: Condvar::new(),
        }
    }

    /// Enqueue `request` if the queue holds fewer than `depth`
    /// entries, handing back the ticket for its response.
    pub(crate) fn submit(&self, depth: usize, request: Request<S>) -> Result<Ticket, SearchError> {
        let mut state = self.state.lock();
        if state.draining {
            return Err(SearchError::Shutdown);
        }
        if state.queue.len() >= depth {
            return Err(SearchError::Overloaded { depth });
        }
        let id = RequestId(state.next_id);
        state.next_id += 1;
        let (tx, rx) = mpsc::channel();
        state.queue.push_back((id, request, tx));
        self.work.notify_all();
        Ok(Ticket::new(id, rx))
    }

    /// Enqueue a whole batch under **one** lock acquisition with
    /// all-or-nothing admission: either every request fits under
    /// `depth` and each gets a ticket, or nothing is enqueued and the
    /// caller gets one [`SearchError::Overloaded`]. Because the batch
    /// lands contiguously, the scheduler's chunking answers its
    /// queries as one parallel chunk (inserts still split it into
    /// barriers at the right positions).
    pub(crate) fn submit_batch(
        &self,
        depth: usize,
        requests: Vec<Request<S>>,
    ) -> Result<Vec<Ticket>, SearchError> {
        let mut state = self.state.lock();
        if state.draining {
            return Err(SearchError::Shutdown);
        }
        if state.queue.len() + requests.len() > depth {
            return Err(SearchError::Overloaded { depth });
        }
        let tickets: Vec<Ticket> = requests
            .into_iter()
            .map(|request| {
                let id = RequestId(state.next_id);
                state.next_id += 1;
                let (tx, rx) = mpsc::channel();
                state.queue.push_back((id, request, tx));
                Ticket::new(id, rx)
            })
            .collect();
        if !tickets.is_empty() {
            self.work.notify_all();
        }
        Ok(tickets)
    }

    /// Requests accepted but not yet picked up by the scheduler.
    pub(crate) fn pending(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Stop admission; the scheduler exits once the queue is drained.
    pub(crate) fn begin_drain(&self) {
        let mut state = self.state.lock();
        state.draining = true;
        self.work.notify_all();
    }
}

/// One scheduler step's worth of work, popped from the queue front.
enum Chunk<S: Symbol> {
    /// A maximal run of consecutive queries (answered in parallel).
    Queries(Vec<Slot<S>>),
    /// A single insert or delete (a barrier).
    Barrier(Slot<S>),
}

/// Is this request a scheduling barrier (mutates the index)?
fn is_barrier<S: Symbol>(request: &Request<S>) -> bool {
    matches!(request, Request::Insert { .. } | Request::Delete { .. })
}

/// Answer one query request against the index's current state.
///
/// Failures are part of the protocol: a request that cannot be
/// answered (e.g. a NaN radius) produces a [`ResponseBody::Failed`]
/// carrying the typed [`SearchError`], instead of poisoning its
/// neighbours. Queries against an *empty* index keep their legacy
/// shape (`Nn { neighbour: None, .. }` / empty neighbour lists),
/// because an empty index is a normal serving state between start-up
/// and the first insert.
fn answer<S: Symbol, I: MetricIndex<S> + ?Sized>(
    index: &I,
    request: &Request<S>,
    dist: &dyn Distance<S>,
) -> ResponseBody {
    match request {
        Request::Nn { query } => match index.nn(query, dist, &QueryOptions::new()) {
            Ok((neighbour, stats)) => ResponseBody::Nn { neighbour, stats },
            // An empty index is a normal serving state, not a request
            // defect.
            Err(SearchError::EmptyDatabase) => ResponseBody::Nn {
                neighbour: None,
                stats: SearchStats::default(),
            },
            Err(error) => ResponseBody::Failed { error },
        },
        Request::Knn { query, k } => match index.knn(query, dist, &QueryOptions::new().k(*k)) {
            Ok((neighbours, stats)) => ResponseBody::Knn { neighbours, stats },
            Err(SearchError::EmptyDatabase) => ResponseBody::Knn {
                neighbours: Vec::new(),
                stats: SearchStats::default(),
            },
            Err(error) => ResponseBody::Failed { error },
        },
        Request::Range { query, radius } => {
            let opts = QueryOptions::new().radius(*radius);
            // Validate the request itself before the empty-index
            // mapping: a malformed radius must answer Failed even
            // while the index is empty, or clients would see
            // state-dependent error reporting.
            if let Err(error) = opts.checked_radius() {
                return ResponseBody::Failed { error };
            }
            match index.range(query, dist, &opts) {
                Ok((neighbours, stats)) => ResponseBody::Range { neighbours, stats },
                Err(SearchError::EmptyDatabase) => ResponseBody::Range {
                    neighbours: Vec::new(),
                    stats: SearchStats::default(),
                },
                Err(error) => ResponseBody::Failed { error },
            }
        }
        Request::Insert { .. } | Request::Delete { .. } => {
            unreachable!("inserts/deletes are barriers, never batched")
        }
    }
}

/// The scheduler: runs until [`SessionShared::begin_drain`] *and* an
/// empty queue, answering every accepted request along the way.
///
/// Owned sessions run this on a dedicated thread holding the index;
/// [`crate::QueryPipeline::run`] runs it on a scoped thread borrowing
/// the pipeline's index — one code path, two ownership shapes.
pub(crate) fn scheduler_loop<S: Symbol, I: MetricIndex<S> + ?Sized>(
    shared: &SessionShared<S>,
    index: &mut I,
    dist: &dyn Distance<S>,
) {
    loop {
        // Pop the next chunk (or exit once draining with an empty
        // queue). The lock is held only while popping: answering runs
        // lock-free so submissions keep landing during a long chunk.
        let chunk: Chunk<S> = {
            let mut state = shared.state.lock();
            loop {
                if !state.queue.is_empty() {
                    let front_is_barrier = state
                        .queue
                        .front()
                        .is_some_and(|(_, request, _)| is_barrier(request));
                    if front_is_barrier {
                        let slot = state.queue.pop_front().expect("front checked non-empty");
                        break Chunk::Barrier(slot);
                    }
                    let mut batch = Vec::new();
                    while let Some(front) = state.queue.front() {
                        if is_barrier(&front.1) {
                            break;
                        }
                        batch.push(state.queue.pop_front().expect("front checked non-empty"));
                    }
                    break Chunk::Queries(batch);
                }
                if state.draining {
                    return;
                }
                state = state.wait(&shared.work);
            }
        };
        match chunk {
            Chunk::Barrier((id, request, tx)) => {
                let body = match request {
                    Request::Insert { item } => match index.as_insertable() {
                        // A durable index reports a failed WAL commit
                        // as a typed error in the insert's own
                        // response slot; the item was not accepted and
                        // later requests are unaffected.
                        Some(idx) => match idx.insert(item, dist) {
                            Ok(index) => ResponseBody::Inserted { index },
                            Err(error) => ResponseBody::Failed { error },
                        },
                        None => ResponseBody::Failed {
                            error: SearchError::UnsupportedConfig {
                                reason: "this backend does not support incremental inserts",
                            },
                        },
                    },
                    Request::Delete { index: target } => match index.delete(target) {
                        Ok(existed) => ResponseBody::Deleted { existed },
                        Err(error) => ResponseBody::Failed { error },
                    },
                    _ => unreachable!("Chunk::Barrier holds an insert or delete"),
                };
                // A dropped ticket just discards its response.
                let _ = tx.send(Response { id, body });
            }
            Chunk::Queries(batch) => {
                let index: &I = index;
                let workers = workers_for(batch.len());
                if workers <= 1 {
                    for (id, request, tx) in &batch {
                        let body = answer(index, request, dist);
                        let _ = tx.send(Response { id: *id, body });
                    }
                } else {
                    // Workers pull whole queries from a shared cursor
                    // (dynamic load balancing) and deliver each
                    // response the moment it completes.
                    let cursor = AtomicUsize::new(0);
                    std::thread::scope(|scope| {
                        for _ in 0..workers {
                            let cursor = &cursor;
                            let batch = &batch;
                            scope.spawn(move || loop {
                                let t = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some((id, request, tx)) = batch.get(t) else {
                                    break;
                                };
                                let body = answer(index, request, dist);
                                let _ = tx.send(Response { id: *id, body });
                            });
                        }
                    });
                }
            }
        }
    }
}

/// A non-blocking serving handle: an index owned by a scheduler
/// thread, driven through submit/ticket. See the module docs for the
/// scheduling model and [`crate::QueryPipeline`] for the batch
/// wrapper.
///
/// `submit` takes `&self`, so one session can be shared (e.g. behind
/// an [`Arc`]) by many threads or connection handlers; the scheduler
/// serialises effects in submission order.
///
/// ```
/// use cned_core::levenshtein::Levenshtein;
/// use cned_search::LinearIndex;
/// use cned_serve::{Request, ResponseBody, ServeSession};
/// use std::sync::Arc;
///
/// let index = LinearIndex::new(vec![b"casa".to_vec(), b"cosa".to_vec()]);
/// let session = ServeSession::spawn(index, Arc::new(Levenshtein));
/// let ticket = session
///     .submit(Request::Nn { query: b"cesa".to_vec() })
///     .unwrap();
/// let response = ticket.wait();
/// assert!(matches!(response.body, ResponseBody::Nn { .. }));
/// let index = session.shutdown(); // drains, hands the index back
/// assert_eq!(cned_search::MetricIndex::len(&index), 2);
/// ```
pub struct ServeSession<S: Symbol + 'static, I: MetricIndex<S> + 'static = ShardedIndex<S>> {
    shared: Arc<SessionShared<S>>,
    depth: usize,
    scheduler: Option<JoinHandle<I>>,
}

impl<S: Symbol + 'static, I: MetricIndex<S> + 'static> ServeSession<S, I> {
    /// Spawn a session over `index`, answering every query through
    /// `dist`, with default [`SessionConfig`].
    ///
    /// `dist` **must** be the distance the index was built with (the
    /// same contract as every [`MetricIndex`] call); the
    /// `cned::Database` facade pairs the two automatically.
    pub fn spawn(index: I, dist: Arc<dyn Distance<S>>) -> ServeSession<S, I> {
        ServeSession::spawn_with(index, dist, SessionConfig::default())
    }

    /// [`ServeSession::spawn`] with explicit knobs.
    pub fn spawn_with(
        index: I,
        dist: Arc<dyn Distance<S>>,
        config: SessionConfig,
    ) -> ServeSession<S, I> {
        let shared = Arc::new(SessionShared::new());
        let scheduler = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("cned-serve-session".into())
                .spawn(move || {
                    let mut index = index;
                    scheduler_loop(&shared, &mut index, &*dist);
                    index
                })
                .expect("spawning the session scheduler thread")
        };
        ServeSession {
            shared,
            depth: config.queue_depth,
            scheduler: Some(scheduler),
        }
    }

    /// Enqueue a request, returning the [`Ticket`] for its response.
    ///
    /// Non-blocking: refuses with [`SearchError::Overloaded`] when the
    /// admission queue is at [`SessionConfig::queue_depth`], and with
    /// [`SearchError::Shutdown`] once [`ServeSession::shutdown`] has
    /// begun.
    pub fn submit(&self, request: Request<S>) -> Result<Ticket, SearchError> {
        self.shared.submit(self.depth, request)
    }

    /// Enqueue a whole batch of requests in one admission decision:
    /// one lock acquisition, all-or-nothing against the queue depth
    /// (either every request is accepted and gets its [`Ticket`], or
    /// nothing is enqueued and the call refuses with
    /// [`SearchError::Overloaded`]). The batch lands contiguously, so
    /// the scheduler answers its queries as one parallel chunk — this
    /// is the entry point wire-level batch frames coalesce into.
    pub fn submit_batch(&self, requests: Vec<Request<S>>) -> Result<Vec<Ticket>, SearchError> {
        self.shared.submit_batch(self.depth, requests)
    }

    /// Requests accepted but not yet picked up by the scheduler.
    pub fn pending(&self) -> usize {
        self.shared.pending()
    }

    /// The configured admission depth.
    pub fn queue_depth(&self) -> usize {
        self.depth
    }

    /// A cloneable `'static` submit handle onto this session, for
    /// threads that outlive any one borrow of the session (e.g. a
    /// replica's log-applier thread). Submissions through a handle
    /// refuse with [`SearchError::Shutdown`] once the session drains —
    /// a handle never keeps the scheduler alive.
    pub fn handle(&self) -> SessionHandle<S> {
        SessionHandle {
            shared: Arc::clone(&self.shared),
            depth: self.depth,
        }
    }

    /// Graceful shutdown: stop admission, drain every accepted
    /// request (all outstanding tickets receive their responses), and
    /// hand the index back.
    pub fn shutdown(mut self) -> I {
        self.shared.begin_drain();
        self.scheduler
            .take()
            .expect("scheduler present until shutdown")
            .join()
            .expect("session scheduler panicked")
    }
}

/// A detached submit handle created by [`ServeSession::handle`].
/// Shares the session's admission queue and depth; does not own the
/// scheduler.
pub struct SessionHandle<S: Symbol + 'static> {
    shared: Arc<SessionShared<S>>,
    depth: usize,
}

impl<S: Symbol + 'static> Clone for SessionHandle<S> {
    fn clone(&self) -> SessionHandle<S> {
        SessionHandle {
            shared: Arc::clone(&self.shared),
            depth: self.depth,
        }
    }
}

impl<S: Symbol + 'static> SessionHandle<S> {
    /// [`ServeSession::submit`] through the handle.
    pub fn submit(&self, request: Request<S>) -> Result<Ticket, SearchError> {
        self.shared.submit(self.depth, request)
    }

    /// [`ServeSession::submit_batch`] through the handle.
    pub fn submit_batch(&self, requests: Vec<Request<S>>) -> Result<Vec<Ticket>, SearchError> {
        self.shared.submit_batch(self.depth, requests)
    }

    /// Requests accepted but not yet picked up by the scheduler.
    pub fn pending(&self) -> usize {
        self.shared.pending()
    }
}

impl<S: Symbol + 'static, I: MetricIndex<S> + 'static> Drop for ServeSession<S, I> {
    fn drop(&mut self) {
        if let Some(handle) = self.scheduler.take() {
            self.shared.begin_drain();
            // Dropping without `shutdown()` still drains accepted
            // tickets; the index is discarded with the session.
            let _ = handle.join();
        }
    }
}
