//! [`Server`] — a thread-per-connection TCP front-end over one shared
//! [`ServeSession`].
//!
//! Every connection speaks the [`crate::wire`] protocol: frames in,
//! frames out, correlated by the client-assigned request id. All
//! connections submit into a **single** session, so the whole server
//! shares one admission queue (one backpressure knob) and one
//! scheduler with insert-barrier semantics across clients — an insert
//! from any connection is observed by every later query, exactly like
//! interleaved calls against the in-process index.
//!
//! ## Per-connection pipelining
//!
//! Each connection runs a **reader** (this connection's thread) and a
//! **writer** thread. The reader decodes frames and submits them
//! without waiting — a client may have any number of requests in
//! flight — forwarding each [`crate::Ticket`] (or an immediate
//! failure such as [`cned_search::SearchError::Overloaded`]) to the
//! writer, which resolves them in submission order and streams the
//! responses back tagged with the client's ids. Admission failures
//! are *responses*, not disconnects: an overloaded server answers
//! `Failed { Overloaded }` and keeps the connection alive.
//!
//! A *protocol* error (garbage frame, wrong version, oversized
//! length) is different: the stream can no longer be trusted, so the
//! connection is closed after draining the accepted tickets.
//!
//! ## Shutdown
//!
//! [`Server::shutdown`] stops accepting, nudges every open connection
//! (their read loops poll a stop flag), waits for the connection
//! threads, then gracefully drains the session — every accepted
//! request is answered before the index is handed back.

use crate::session::{RequestId, Response, ResponseBody, ServeSession, SessionConfig, Ticket};
use crate::wire::{self, FrameBuffer, WireSymbol};
use cned_core::metric::Distance;
use cned_search::MetricIndex;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Knobs of a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerConfig {
    /// Session knobs (admission depth) of the shared serving session.
    pub session: SessionConfig,
}

/// What the connection reader hands its writer, in submission order.
enum Outcome {
    /// An accepted request: resolve the ticket, answer with its
    /// response body under the client's id.
    Ticket(RequestId, Ticket),
    /// An immediately-known answer (admission failure).
    Ready(Response),
}

/// A running TCP serving front-end; dropping it (or calling
/// [`Server::shutdown`]) stops accepting and drains in-flight work.
pub struct Server<S: WireSymbol + 'static, I: MetricIndex<S> + 'static> {
    addr: SocketAddr,
    /// `Some` until shutdown; `Option` so [`Server::shutdown`] can
    /// move the last strong reference out past the `Drop` impl.
    session: Option<Arc<ServeSession<S, I>>>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl<S: WireSymbol + 'static, I: MetricIndex<S> + 'static> Server<S, I> {
    /// Bind `addr` (use port 0 for an ephemeral port — read the
    /// actual one back with [`Server::local_addr`]) and serve `index`
    /// through `dist` with default knobs.
    pub fn bind(
        addr: impl ToSocketAddrs,
        index: I,
        dist: Arc<dyn Distance<S>>,
    ) -> std::io::Result<Server<S, I>> {
        Server::bind_with(addr, index, dist, ServerConfig::default())
    }

    /// [`Server::bind`] with explicit knobs.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        index: I,
        dist: Arc<dyn Distance<S>>,
        config: ServerConfig,
    ) -> std::io::Result<Server<S, I>> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Polling accept: lets the accept thread observe the stop flag
        // without a self-connect trick.
        listener.set_nonblocking(true)?;
        let session = Arc::new(ServeSession::spawn_with(index, dist, config.session));
        let stop = Arc::new(AtomicBool::new(false));
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let session = Arc::clone(&session);
            let stop = Arc::clone(&stop);
            let connections = Arc::clone(&connections);
            std::thread::Builder::new()
                .name("cned-serve-accept".into())
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                let session = Arc::clone(&session);
                                let stop = Arc::clone(&stop);
                                let handle = std::thread::Builder::new()
                                    .name("cned-serve-conn".into())
                                    .spawn(move || serve_connection(stream, &session, &stop))
                                    .expect("spawning a connection thread");
                                let mut registry = connections
                                    .lock()
                                    .expect("connection registry never poisoned");
                                // Reap finished connections as we go so
                                // the registry tracks live connections,
                                // not the server's whole history.
                                registry.retain(|h| !h.is_finished());
                                registry.push(handle);
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            // Transient accept errors (aborted
                            // handshakes) should not kill the server.
                            Err(_) => std::thread::sleep(Duration::from_millis(5)),
                        }
                    }
                })
                .expect("spawning the accept thread")
        };
        Ok(Server {
            addr,
            session: Some(session),
            stop,
            accept_thread: Some(accept_thread),
            connections,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared session (e.g. to co-serve in-process submissions
    /// next to network clients).
    pub fn session(&self) -> &ServeSession<S, I> {
        self.session
            .as_ref()
            .expect("session present until shutdown")
    }

    /// Stop accepting, drain every connection and the session, and
    /// hand the index back.
    pub fn shutdown(mut self) -> I {
        self.stop_threads();
        let session = self.session.take().expect("session present until shutdown");
        let session = Arc::try_unwrap(session)
            .unwrap_or_else(|_| unreachable!("all session clones joined before unwrap"));
        session.shutdown()
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let handles = std::mem::take(
            &mut *self
                .connections
                .lock()
                .expect("connection registry never poisoned"),
        );
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl<S: WireSymbol + 'static, I: MetricIndex<S> + 'static> Drop for Server<S, I> {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_threads();
        }
        // The session Arc drops here; its own Drop drains accepted
        // work.
    }
}

/// One connection: interruptible framed reads, pipelined submission,
/// ordered writes on a dedicated writer thread.
fn serve_connection<S: WireSymbol, I: MetricIndex<S>>(
    stream: TcpStream,
    session: &ServeSession<S, I>,
    stop: &AtomicBool,
) {
    let _ = stream.set_nodelay(true);
    // A finite read timeout turns the blocking read into a poll so the
    // stop flag is observed; the FrameBuffer keeps partial frames
    // across timeouts, so no bytes are ever lost to one.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let mut reader = stream.try_clone().expect("cloning a TCP stream handle");
    let writer_stream = stream;

    let (tx, rx) = mpsc::channel::<Outcome>();
    let writer = std::thread::Builder::new()
        .name("cned-serve-conn-writer".into())
        .spawn(move || write_responses(writer_stream, rx))
        .expect("spawning a connection writer thread");

    let mut frames = FrameBuffer::new();
    let mut chunk = [0u8; 8 * 1024];
    'conn: loop {
        // Checked every iteration, not only on read timeouts: a
        // client streaming continuously would otherwise starve the
        // timeout branch and stall shutdown for as long as it talks.
        if stop.load(Ordering::Acquire) {
            break 'conn;
        }
        match reader.read(&mut chunk) {
            Ok(0) => break 'conn, // client closed
            Ok(n) => {
                frames.extend(&chunk[..n]);
                loop {
                    match frames.next_frame() {
                        Ok(Some(payload)) => {
                            if !handle_frame(&payload, session, &tx) {
                                break 'conn;
                            }
                        }
                        Ok(None) => break,
                        // Untrusted stream: stop reading, drain what
                        // was accepted, close.
                        Err(_) => break 'conn,
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::Acquire) {
                    break 'conn;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break 'conn,
        }
    }
    // Dropping the sender lets the writer finish the queued outcomes
    // (accepted tickets are still answered and written when the peer
    // is alive) and exit.
    drop(tx);
    let _ = writer.join();
}

/// Decode and submit one frame; `false` aborts the connection
/// (undecodable request).
fn handle_frame<S: WireSymbol, I: MetricIndex<S>>(
    payload: &[u8],
    session: &ServeSession<S, I>,
    tx: &mpsc::Sender<Outcome>,
) -> bool {
    let (client_id, request) = match wire::decode_request::<S>(payload) {
        Ok(decoded) => decoded,
        Err(_) => return false,
    };
    let outcome = match session.submit(request) {
        Ok(ticket) => Outcome::Ticket(client_id, ticket),
        Err(error) => Outcome::Ready(Response {
            id: client_id,
            body: ResponseBody::Failed { error },
        }),
    };
    // The writer only disappears when the connection is tearing down.
    tx.send(outcome).is_ok()
}

/// Resolve outcomes in submission order and stream them back under
/// the client's ids.
fn write_responses(mut stream: TcpStream, rx: mpsc::Receiver<Outcome>) {
    let mut payload = Vec::new();
    for outcome in rx {
        let response = match outcome {
            Outcome::Ready(response) => response,
            Outcome::Ticket(client_id, ticket) => {
                let answered = ticket.wait();
                // Re-tag with the id the client chose; the session's
                // internal id is a server-side detail.
                Response {
                    id: client_id,
                    body: answered.body,
                }
            }
        };
        wire::encode_response(&response, &mut payload);
        if wire::write_frame(&mut stream, &payload).is_err() {
            // Peer gone: keep draining tickets (the session owes them
            // answers) but stop writing.
            break;
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}
