//! [`Server`] — a readiness-based event-loop TCP front-end over one
//! shared [`ServeSession`].
//!
//! The PR 5 server spent **two OS threads per connection** (reader +
//! writer), which caps concurrent connections far below the serving
//! goal. This server runs a **fixed pool** of event-loop threads
//! ([`ServerConfig::event_loop_threads`], plus one accept thread and
//! the session's scheduler), each driving many non-blocking
//! `std::net` sockets with a hand-rolled readiness sweep: every tick
//! it reads whatever bytes each socket has (partial frames pend in a
//! per-connection [`FrameBuffer`]), polls in-flight tickets, and
//! pushes completed responses through a per-connection outbox with
//! **one buffered write per sweep** — pipelined responses coalesce
//! into a single `write(2)` instead of one flushed syscall per frame.
//! There is no tokio/epoll in the offline build environment; a
//! non-blocking `read` *is* the readiness probe, and the loop sleeps
//! briefly only when a whole sweep moved no bytes.
//!
//! Every connection speaks the [`crate::wire`] protocol. All
//! connections submit into a **single** session, so the whole server
//! shares one admission queue (one backpressure knob) and one
//! scheduler with insert-barrier semantics across clients — an insert
//! from any connection is observed by every later query, exactly like
//! interleaved calls against the in-process index.
//!
//! ## Batching
//!
//! A [`crate::wire::kind::REQ_BATCH`] frame carries many requests
//! under one id; the server coalesces it into **one**
//! [`ServeSession::submit_batch`] call (one lock acquisition,
//! all-or-nothing admission), so the scheduler answers the whole
//! batch as one parallel query chunk, and the answer travels back as
//! one [`crate::wire::kind::RESP_BATCH`] frame. This is the shape the
//! compute layer is fastest at — lane-parallel distance kernels and
//! LAESA elimination amortise across a batch — and the wire layer now
//! hands it batches end to end.
//!
//! ## Backpressure, caps, deadlines
//!
//! * **Admission** is bounded by the shared session
//!   ([`SessionConfig::queue_depth`]): an overloaded server answers
//!   `Failed { Overloaded }` *as a response* and keeps the connection
//!   alive — unchanged from PR 5.
//! * **Per-connection outbox** is bounded
//!   ([`ServerConfig::outbox_depth`]): past that many unanswered
//!   frames, the event loop stops reading from the socket, so TCP
//!   flow control pushes back on a client that submits faster than it
//!   collects.
//! * **Connection cap** ([`ServerConfig::max_connections`]): a
//!   connection past the cap is answered **in-band** with a typed
//!   `Failed { Overloaded }` frame tagged [`wire::CONTROL_ID`], then
//!   closed — clients surface it as a typed error, not a mystery
//!   disconnect.
//! * **Idle timeout** ([`ServerConfig::idle_timeout`]): a connection
//!   with nothing in flight and no traffic for this long is closed,
//!   so abandoned sockets cannot pin the server's connection budget.
//!
//! A *protocol* error (garbage frame, wrong version, oversized
//! length) still closes the connection after draining the accepted
//! tickets: the stream can no longer be trusted.
//!
//! ## Shutdown
//!
//! [`Server::shutdown`] stops accepting, tells every event loop to
//! stop reading, **drains** every accepted request (tickets resolve,
//! responses are written out), joins the pool, then gracefully drains
//! the session — every accepted request is answered before the index
//! is handed back. Bytes a client had written but the server had not
//! yet read are not "accepted" — exactly the PR 5 boundary.

use crate::session::{
    Request, RequestId, Response, ResponseBody, ServeSession, SessionConfig, Ticket,
};
use crate::wire::{self, FrameBuffer, WireRequest, WireSymbol};
use cned_core::metric::Distance;
use cned_search::{MetricIndex, SearchError};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The server side of the replica catch-up protocol, implemented by
/// the persistence layer (`cned-store`) and consumed by the event
/// loop. The trait keeps `cned-serve` ignorant of on-disk formats:
/// the hub serves the catch-up payload from its own durable state —
/// never from the live index, which belongs to the scheduler thread.
///
/// ## Required ordering
///
/// The event loop calls [`ReplicaHub::subscribe`] **before**
/// [`ReplicaHub::sync_payload`]. Implementations must publish each
/// accepted write to existing subscribers only *after* it is visible
/// to `sync_payload` (i.e. after the durable write). Together those
/// two rules make the handoff gap-free: a write committed around
/// registration time appears in the payload, in the stream, or in
/// both — never in neither — and replicas dedupe the overlap (by
/// sequence number for inserts; deletes are idempotent).
pub trait ReplicaHub<S: WireSymbol>: Send + Sync {
    /// The catch-up payload for a replica that already holds `have`
    /// items, as `(mode, bytes)` chunks ([`wire::SYNC_SNAPSHOT`] /
    /// [`wire::SYNC_ITEMS`]), each small enough to frame.
    fn sync_payload(&self, have: u64) -> Result<Vec<(u8, Vec<u8>)>, SearchError>;

    /// Register a live-stream subscriber; every subsequently accepted
    /// insert or delete arrives as one [`ReplOp`].
    fn subscribe(&self) -> mpsc::Receiver<ReplOp<S>>;
}

/// One accepted write streamed from a primary's [`ReplicaHub`] to its
/// registered replicas, in commit order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplOp<S> {
    /// An accepted insert: the item and its global index (`seq`).
    Insert {
        /// The item's global index on the primary.
        seq: u64,
        /// The item itself.
        item: Vec<S>,
    },
    /// An accepted delete: the tombstoned item's global index.
    Delete {
        /// The tombstoned item's global index on the primary.
        index: u64,
    },
}

/// Knobs of a [`Server`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Session knobs (admission depth) of the shared serving session.
    pub session: SessionConfig,
    /// Size of the fixed event-loop pool driving all connections
    /// (clamped to at least 1). The server's total thread count is
    /// `event_loop_threads + 1` (accept) `+ 1` (session scheduler) —
    /// independent of the number of connections.
    pub event_loop_threads: usize,
    /// Connection cap: an accepted connection past this limit is
    /// answered with an in-band `Failed { Overloaded }` control frame
    /// ([`wire::CONTROL_ID`]) and closed.
    pub max_connections: usize,
    /// Close a connection with no in-flight work and no traffic for
    /// this long.
    pub idle_timeout: Duration,
    /// Per-connection backpressure: with this many frames submitted
    /// but not yet answered-and-queued-for-write, the event loop
    /// stops reading from the socket until the peer collects.
    pub outbox_depth: usize,
    /// Durable-state directory. `None` (the default) serves purely
    /// from memory, exactly as before. `Some(dir)` makes the facade
    /// layer (`cned::Database::serve_with`) recover snapshot + WAL
    /// from `dir` on boot, wrap the index durably, and take threshold
    /// snapshots — `cned-serve` itself only transports the knob.
    pub data_dir: Option<PathBuf>,
    /// With a data dir: take a fresh snapshot (and truncate the WAL)
    /// once this many inserts accumulate in the log.
    pub snapshot_every: u64,
    /// Reject network `REQ_INSERT` frames with a typed error — the
    /// stance of a replica, whose writes arrive only through the
    /// primary's stream (applied in-process, which this knob does not
    /// gate).
    pub read_only: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            session: SessionConfig::default(),
            event_loop_threads: 2,
            max_connections: 1024,
            idle_timeout: Duration::from_secs(60),
            outbox_depth: 64,
            data_dir: None,
            snapshot_every: 1024,
            read_only: false,
        }
    }
}

impl ServerConfig {
    /// Default knobs.
    pub fn new() -> ServerConfig {
        ServerConfig::default()
    }

    /// Set the shared session's knobs.
    pub fn session(mut self, session: SessionConfig) -> ServerConfig {
        self.session = session;
        self
    }

    /// Set the event-loop pool size.
    pub fn event_loop_threads(mut self, threads: usize) -> ServerConfig {
        self.event_loop_threads = threads;
        self
    }

    /// Set the connection cap.
    pub fn max_connections(mut self, cap: usize) -> ServerConfig {
        self.max_connections = cap;
        self
    }

    /// Set the idle timeout.
    pub fn idle_timeout(mut self, timeout: Duration) -> ServerConfig {
        self.idle_timeout = timeout;
        self
    }

    /// Set the per-connection unanswered-frame bound.
    pub fn outbox_depth(mut self, depth: usize) -> ServerConfig {
        self.outbox_depth = depth;
        self
    }

    /// Serve durably out of `dir` (snapshot + insert WAL; see
    /// [`ServerConfig::data_dir`]).
    pub fn data_dir(mut self, dir: impl Into<PathBuf>) -> ServerConfig {
        self.data_dir = Some(dir.into());
        self
    }

    /// Set the WAL length that triggers a fresh snapshot.
    pub fn snapshot_every(mut self, inserts: u64) -> ServerConfig {
        self.snapshot_every = inserts;
        self
    }

    /// Reject network inserts with a typed error (replica stance).
    pub fn read_only(mut self, read_only: bool) -> ServerConfig {
        self.read_only = read_only;
        self
    }
}

/// A running TCP serving front-end; dropping it (or calling
/// [`Server::shutdown`]) stops accepting and drains in-flight work.
pub struct Server<S: WireSymbol + 'static, I: MetricIndex<S> + 'static> {
    addr: SocketAddr,
    /// `Some` until shutdown; `Option` so [`Server::shutdown`] can
    /// move the last strong reference out past the `Drop` impl.
    session: Option<Arc<ServeSession<S, I>>>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    loop_threads: Vec<JoinHandle<()>>,
}

impl<S: WireSymbol + 'static, I: MetricIndex<S> + 'static> Server<S, I> {
    /// Bind `addr` (use port 0 for an ephemeral port — read the
    /// actual one back with [`Server::local_addr`]) and serve `index`
    /// through `dist` with default knobs.
    pub fn bind(
        addr: impl ToSocketAddrs,
        index: I,
        dist: Arc<dyn Distance<S>>,
    ) -> std::io::Result<Server<S, I>> {
        Server::bind_with(addr, index, dist, ServerConfig::default())
    }

    /// [`Server::bind`] with explicit knobs.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        index: I,
        dist: Arc<dyn Distance<S>>,
        config: ServerConfig,
    ) -> std::io::Result<Server<S, I>> {
        Server::bind_replicated(addr, index, dist, config, None)
    }

    /// [`Server::bind_with`] plus a [`ReplicaHub`]: replicas may
    /// register with [`wire::kind::REQ_SYNC`] and receive the
    /// catch-up payload + live insert stream over their connection.
    /// Without a hub, `REQ_SYNC` is answered with a typed
    /// `Failed { UnsupportedConfig }` response.
    pub fn bind_replicated(
        addr: impl ToSocketAddrs,
        index: I,
        dist: Arc<dyn Distance<S>>,
        config: ServerConfig,
        hub: Option<Arc<dyn ReplicaHub<S>>>,
    ) -> std::io::Result<Server<S, I>> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Polling accept: lets the accept thread observe the stop flag
        // without a self-connect trick.
        listener.set_nonblocking(true)?;
        let session = Arc::new(ServeSession::spawn_with(index, dist, config.session));
        let stop = Arc::new(AtomicBool::new(false));
        let conn_count = Arc::new(AtomicUsize::new(0));

        let pool = config.event_loop_threads.max(1);
        let mut senders: Vec<mpsc::Sender<TcpStream>> = Vec::with_capacity(pool);
        let mut loop_threads: Vec<JoinHandle<()>> = Vec::with_capacity(pool);
        for i in 0..pool {
            let (tx, rx) = mpsc::channel::<TcpStream>();
            senders.push(tx);
            let session = Arc::clone(&session);
            let stop = Arc::clone(&stop);
            let conn_count = Arc::clone(&conn_count);
            let config = config.clone();
            let hub = hub.clone();
            loop_threads.push(
                std::thread::Builder::new()
                    .name(format!("cned-serve-loop-{i}"))
                    .spawn(move || event_loop(rx, &session, &stop, &conn_count, config, hub))
                    .expect("spawning an event-loop thread"),
            );
        }

        let accept_thread = {
            let stop = Arc::clone(&stop);
            let max_connections = config.max_connections.max(1);
            std::thread::Builder::new()
                .name("cned-serve-accept".into())
                .spawn(move || {
                    let mut next = 0usize;
                    while !stop.load(Ordering::Acquire) {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                if conn_count.load(Ordering::Acquire) >= max_connections {
                                    reject_connection(stream, max_connections);
                                    continue;
                                }
                                conn_count.fetch_add(1, Ordering::AcqRel);
                                let _ = stream.set_nodelay(true);
                                if stream.set_nonblocking(true).is_err() {
                                    conn_count.fetch_sub(1, Ordering::AcqRel);
                                    continue;
                                }
                                // Round-robin across the pool; a loop
                                // only disappears at shutdown.
                                if senders[next % senders.len()].send(stream).is_err() {
                                    break;
                                }
                                next += 1;
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(2));
                            }
                            // Transient accept errors (aborted
                            // handshakes) should not kill the server.
                            Err(_) => std::thread::sleep(Duration::from_millis(2)),
                        }
                    }
                })
                .expect("spawning the accept thread")
        };

        Ok(Server {
            addr,
            session: Some(session),
            stop,
            accept_thread: Some(accept_thread),
            loop_threads,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared session (e.g. to co-serve in-process submissions
    /// next to network clients).
    pub fn session(&self) -> &ServeSession<S, I> {
        self.session
            .as_ref()
            .expect("session present until shutdown")
    }

    /// Stop accepting, drain every connection and the session, and
    /// hand the index back.
    pub fn shutdown(mut self) -> I {
        self.stop_threads();
        let session = self.session.take().expect("session present until shutdown");
        let session = Arc::try_unwrap(session)
            .unwrap_or_else(|_| unreachable!("all session clones joined before unwrap"));
        session.shutdown()
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for handle in self.loop_threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<S: WireSymbol + 'static, I: MetricIndex<S> + 'static> Drop for Server<S, I> {
    fn drop(&mut self) {
        if self.accept_thread.is_some() || !self.loop_threads.is_empty() {
            self.stop_threads();
        }
        // The session Arc drops here; its own Drop drains accepted
        // work.
    }
}

/// Answer a connection past the cap with a typed in-band rejection
/// frame ([`wire::CONTROL_ID`] + `Failed { Overloaded }`), then close.
/// Bounded blocking write so a wedged peer cannot stall accepting.
fn reject_connection(stream: TcpStream, cap: usize) {
    let mut stream = stream;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let mut payload = Vec::new();
    wire::encode_response(
        &Response {
            id: RequestId(wire::CONTROL_ID),
            body: ResponseBody::Failed {
                error: SearchError::Overloaded { depth: cap },
            },
        },
        &mut payload,
    );
    let _ = wire::write_frame(&mut stream, &payload);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// One submitted frame awaiting its answer slot(s).
enum SlotState {
    /// Accepted by the session; the ticket resolves to the body.
    Waiting(Ticket),
    /// Resolved (or known immediately, e.g. admission failure).
    Done(ResponseBody),
}

impl SlotState {
    /// Poll a waiting ticket; `true` once the body is in hand.
    fn poll(&mut self) -> bool {
        if let SlotState::Waiting(ticket) = self {
            match ticket.try_recv() {
                Some(response) => *self = SlotState::Done(response.body),
                None => return false,
            }
        }
        true
    }

    fn into_body(self) -> ResponseBody {
        match self {
            SlotState::Done(body) => body,
            SlotState::Waiting(_) => unreachable!("polled complete before encoding"),
        }
    }
}

/// In-flight work for one connection, in submission order (responses
/// are written back in this order; correlation stays by id).
enum Pending {
    /// A single-request frame.
    One { id: RequestId, slot: SlotState },
    /// A batch frame: one RESP_BATCH frame once every slot resolves.
    Batch {
        id: RequestId,
        slots: Vec<SlotState>,
    },
}

impl Pending {
    fn poll(&mut self) -> bool {
        match self {
            Pending::One { slot, .. } => slot.poll(),
            Pending::Batch { slots, .. } => {
                // Poll every slot (not just the first unresolved one)
                // so out-of-order completions are banked immediately.
                let mut all = true;
                for slot in slots.iter_mut() {
                    all &= slot.poll();
                }
                all
            }
        }
    }
}

/// A connection's live replica subscription (created by a
/// [`wire::kind::REQ_SYNC`] frame): accepted writes drain from the
/// hub's channel into [`wire::kind::RESP_REPL_INSERT`] /
/// [`wire::kind::RESP_REPL_DELETE`] frames each sweep.
struct ReplState<S: WireSymbol> {
    /// The sync request's id; every streamed frame echoes it.
    id: RequestId,
    rx: mpsc::Receiver<ReplOp<S>>,
}

/// Streaming backpressure: stop encoding replica frames into a
/// connection's outbox past this many unwritten bytes; the rest stay
/// queued in the hub channel until the socket drains.
const REPL_OUTBOX_BYTES: usize = 4 * 1024 * 1024;

/// One connection owned by an event loop.
struct Conn<S: WireSymbol> {
    stream: TcpStream,
    frames: FrameBuffer,
    inflight: VecDeque<Pending>,
    /// Encoded-but-unwritten response bytes; `sent` is the prefix
    /// already pushed into the socket.
    outbox: Vec<u8>,
    sent: usize,
    last_activity: Instant,
    /// Cleared on peer EOF, protocol error, or server shutdown: stop
    /// reading, drain what was accepted, then close.
    reading: bool,
    /// Unrecoverable (write error) or fully drained: remove.
    dead: bool,
    /// `Some` once the peer registered as a replica.
    repl: Option<ReplState<S>>,
}

impl<S: WireSymbol> Conn<S> {
    fn new(stream: TcpStream) -> Conn<S> {
        Conn {
            stream,
            frames: FrameBuffer::new(),
            inflight: VecDeque::new(),
            outbox: Vec::new(),
            sent: 0,
            last_activity: Instant::now(),
            reading: true,
            dead: false,
            repl: None,
        }
    }

    /// Handle a replica registration: subscribe to the live stream
    /// *first*, then read the catch-up payload from durable state
    /// (the order that makes the handoff gap-free; see [`ReplicaHub`])
    /// and queue it as [`wire::kind::RESP_SYNC`] frames.
    fn register_replica(
        &mut self,
        id: RequestId,
        have: u64,
        hub: Option<&Arc<dyn ReplicaHub<S>>>,
        payload: &mut Vec<u8>,
    ) {
        let Some(hub) = hub else {
            self.inflight.push_back(Pending::One {
                id,
                slot: SlotState::Done(ResponseBody::Failed {
                    error: SearchError::UnsupportedConfig {
                        reason: "this server was not started with replication support",
                    },
                }),
            });
            return;
        };
        let rx = hub.subscribe();
        match hub.sync_payload(have) {
            Ok(chunks) => {
                let last = chunks.len().saturating_sub(1);
                if chunks.is_empty() {
                    // Nothing to catch up: an empty terminal chunk
                    // still tells the replica the payload is over.
                    wire::encode_sync_chunk(id, wire::SYNC_ITEMS, true, &[], payload);
                    let _ = wire::write_frame_unflushed(&mut self.outbox, payload);
                }
                for (i, (mode, chunk)) in chunks.iter().enumerate() {
                    wire::encode_sync_chunk(id, *mode, i == last, chunk, payload);
                    if wire::write_frame_unflushed(&mut self.outbox, payload).is_err() {
                        // A hub chunk must fit a frame; a violation is
                        // a server-side bug, answered typed.
                        self.reading = false;
                        return;
                    }
                }
                self.repl = Some(ReplState { id, rx });
            }
            Err(error) => {
                self.inflight.push_back(Pending::One {
                    id,
                    slot: SlotState::Done(ResponseBody::Failed { error }),
                });
            }
        }
    }

    /// Drain the live write stream (if this connection is a
    /// registered replica) into the outbox, bounded by
    /// [`REPL_OUTBOX_BYTES`]. Returns whether anything was queued.
    fn repl_sweep(&mut self, payload: &mut Vec<u8>) -> bool {
        let Some(repl) = &self.repl else {
            return false;
        };
        let mut moved = false;
        while self.outbox.len() - self.sent < REPL_OUTBOX_BYTES {
            match repl.rx.try_recv() {
                Ok(op) => {
                    match op {
                        ReplOp::Insert { seq, item } => {
                            wire::encode_repl_insert(repl.id, seq, &item, payload)
                        }
                        ReplOp::Delete { index } => {
                            wire::encode_repl_delete(repl.id, index, payload)
                        }
                    }
                    if wire::write_frame_unflushed(&mut self.outbox, payload).is_err() {
                        self.reading = false;
                        break;
                    }
                    moved = true;
                }
                Err(_) => break,
            }
        }
        moved
    }

    /// Pop and submit every complete frame in the reassembly buffer,
    /// up to the backpressure bound; `false` on a protocol error.
    fn drain_frames<I: MetricIndex<S>>(
        &mut self,
        session: &ServeSession<S, I>,
        config: &ServerConfig,
        hub: Option<&Arc<dyn ReplicaHub<S>>>,
        payload: &mut Vec<u8>,
    ) -> bool {
        while self.inflight.len() < config.outbox_depth {
            match self.frames.next_frame() {
                Ok(Some(frame)) => match wire::decode_request_frame::<S>(&frame) {
                    Ok((id, WireRequest::One(request))) => {
                        if config.read_only && is_write(&request) {
                            self.inflight.push_back(Pending::One {
                                id,
                                slot: SlotState::Done(read_only_rejection()),
                            });
                            continue;
                        }
                        let slot = match session.submit(request) {
                            Ok(ticket) => SlotState::Waiting(ticket),
                            // Admission failures are *responses*, not
                            // disconnects — unchanged from PR 5.
                            Err(error) => SlotState::Done(ResponseBody::Failed { error }),
                        };
                        self.inflight.push_back(Pending::One { id, slot });
                    }
                    Ok((id, WireRequest::Batch(requests))) => {
                        if config.read_only && requests.iter().any(is_write) {
                            // All-or-nothing, like admission: a batch
                            // smuggling a write fails as one frame.
                            self.inflight.push_back(Pending::One {
                                id,
                                slot: SlotState::Done(read_only_rejection()),
                            });
                            continue;
                        }
                        match session.submit_batch(requests) {
                            Ok(tickets) => self.inflight.push_back(Pending::Batch {
                                id,
                                slots: tickets.into_iter().map(SlotState::Waiting).collect(),
                            }),
                            // All-or-nothing admission: the whole
                            // batch answers as one Failed frame.
                            Err(error) => self.inflight.push_back(Pending::One {
                                id,
                                slot: SlotState::Done(ResponseBody::Failed { error }),
                            }),
                        }
                    }
                    Ok((id, WireRequest::Sync { have })) => {
                        self.register_replica(id, have, hub, payload);
                    }
                    Err(_) => return false,
                },
                Ok(None) => return true,
                Err(_) => return false,
            }
        }
        true
    }

    /// Non-blocking read sweep: pull whatever the socket has, feed
    /// the frame buffer, submit complete frames. Returns whether any
    /// bytes moved.
    fn read_sweep<I: MetricIndex<S>>(
        &mut self,
        chunk: &mut [u8],
        session: &ServeSession<S, I>,
        config: &ServerConfig,
        hub: Option<&Arc<dyn ReplicaHub<S>>>,
        payload: &mut Vec<u8>,
    ) -> bool {
        if !self.reading || self.dead {
            return false;
        }
        let mut moved = false;
        loop {
            // Frames may already be buffered from a sweep that hit the
            // backpressure bound; submit them before reading more.
            if !self.drain_frames(session, config, hub, payload) {
                self.reading = false; // untrusted stream
                break;
            }
            if self.inflight.len() >= config.outbox_depth {
                break; // backpressure: let TCP flow control push back
            }
            match self.stream.read(chunk) {
                Ok(0) => {
                    self.reading = false; // peer closed its write side
                    break;
                }
                Ok(n) => {
                    moved = true;
                    self.last_activity = Instant::now();
                    self.frames.extend(&chunk[..n]);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.reading = false;
                    break;
                }
            }
        }
        moved
    }

    /// Pop resolved responses off the front of the in-flight queue
    /// (in submission order) and encode them — unflushed — into the
    /// outbox. Returns whether anything resolved.
    fn resolve_sweep(&mut self, payload: &mut Vec<u8>) -> bool {
        let mut resolved = false;
        while let Some(front) = self.inflight.front_mut() {
            if !front.poll() {
                break;
            }
            let front = self.inflight.pop_front().expect("front exists");
            match front {
                Pending::One { id, slot } => {
                    wire::encode_response(
                        &Response {
                            id,
                            body: slot.into_body(),
                        },
                        payload,
                    );
                }
                Pending::Batch { id, slots } => {
                    let bodies: Vec<ResponseBody> =
                        slots.into_iter().map(SlotState::into_body).collect();
                    wire::encode_batch_response(id, &bodies, payload);
                }
            }
            if wire::write_frame_unflushed(&mut self.outbox, payload).is_err() {
                // A response bigger than MAX_FRAME (a range query
                // matching millions of items): answer a typed failure
                // instead of shipping an unframeable payload.
                let huge = Response {
                    id: RequestId(wire::CONTROL_ID),
                    body: ResponseBody::Failed {
                        error: SearchError::UnsupportedConfig {
                            reason: "response exceeds the wire frame size limit",
                        },
                    },
                };
                wire::encode_response(&huge, payload);
                let _ = wire::write_frame_unflushed(&mut self.outbox, payload);
                self.reading = false;
            }
            resolved = true;
        }
        resolved
    }

    /// Push the outbox into the socket — the whole buffer in as few
    /// `write(2)` calls as the socket accepts (usually one), instead
    /// of one flush per frame. Returns whether any bytes moved.
    fn write_sweep(&mut self) -> bool {
        if self.sent == self.outbox.len() {
            return false;
        }
        let mut moved = false;
        loop {
            match self.stream.write(&self.outbox[self.sent..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.sent += n;
                    moved = true;
                    self.last_activity = Instant::now();
                    if self.sent == self.outbox.len() {
                        self.outbox.clear();
                        self.sent = 0;
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        moved
    }

    /// End-of-sweep lifecycle: mark drained/timed-out connections for
    /// removal.
    fn reap_check(&mut self, config: &ServerConfig, stopping: bool) {
        if self.dead {
            return;
        }
        let drained = self.inflight.is_empty() && self.sent == self.outbox.len();
        if !self.reading {
            // EOF/protocol error/shutdown: close once everything
            // accepted has been answered and written.
            self.dead = drained;
        } else if !stopping
            && drained
            && self.repl.is_none()
            && self.last_activity.elapsed() >= config.idle_timeout
        {
            // Idle: nothing owed in either direction. Registered
            // replicas are exempt — a quiet insert stream is not an
            // abandoned socket.
            self.dead = true;
        }
    }
}

/// Whether a request mutates the index (and must be refused by a
/// read-only server).
fn is_write<S: cned_core::Symbol>(request: &Request<S>) -> bool {
    matches!(request, Request::Insert { .. } | Request::Delete { .. })
}

/// The typed answer a read-only server gives a network write.
fn read_only_rejection() -> ResponseBody {
    ResponseBody::Failed {
        error: SearchError::UnsupportedConfig {
            reason: "this server is read-only (a replica); send writes to the primary",
        },
    }
}

/// One event-loop thread: drives every connection the accept thread
/// routed to it with read → resolve → write sweeps until shutdown.
fn event_loop<S: WireSymbol, I: MetricIndex<S>>(
    rx: mpsc::Receiver<TcpStream>,
    session: &ServeSession<S, I>,
    stop: &AtomicBool,
    conn_count: &AtomicUsize,
    config: ServerConfig,
    hub: Option<Arc<dyn ReplicaHub<S>>>,
) {
    let mut conns: Vec<Conn<S>> = Vec::new();
    let mut chunk = vec![0u8; 16 * 1024];
    let mut payload: Vec<u8> = Vec::new();
    loop {
        let stopping = stop.load(Ordering::Acquire);
        let mut active = false;

        // Admit (or, when stopping, refuse) newly routed connections.
        while let Ok(stream) = rx.try_recv() {
            if stopping {
                let _ = stream.shutdown(std::net::Shutdown::Both);
                conn_count.fetch_sub(1, Ordering::AcqRel);
            } else {
                conns.push(Conn::new(stream));
                active = true;
            }
        }

        for conn in conns.iter_mut() {
            if stopping {
                conn.reading = false; // drain, then close
            }
            active |= conn.read_sweep(&mut chunk, session, &config, hub.as_ref(), &mut payload);
            active |= conn.resolve_sweep(&mut payload);
            if !stopping {
                active |= conn.repl_sweep(&mut payload);
            }
            active |= conn.write_sweep();
            conn.reap_check(&config, stopping);
        }

        let before = conns.len();
        conns.retain_mut(|conn| {
            if conn.dead {
                let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                false
            } else {
                true
            }
        });
        let reaped = before - conns.len();
        if reaped > 0 {
            conn_count.fetch_sub(reaped, Ordering::AcqRel);
            active = true;
        }

        if stopping && conns.is_empty() {
            return;
        }
        if !active {
            // Nothing moved anywhere this sweep: yield briefly. The
            // sleep bounds idle CPU; actual traffic is swept at full
            // speed because any progress skips it.
            std::thread::sleep(Duration::from_micros(500));
        }
    }
}
