//! Versioned snapshot codec: a whole index — items, LAESA pivot
//! tables, `ShardedIndex` layout — serialised so a restarted process
//! skips the index build entirely and answers **bit-identically** to
//! the process that wrote the file.
//!
//! Bit-identity holds because the snapshot captures *structure*, not
//! just data: shard offsets, pivot ids, the exact pivot-distance rows
//! (as `f64` bit patterns) and the preprocessing counters. A loaded
//! index therefore takes the same gate/evaluate decisions, in the same
//! order, as the index that was saved — including the
//! `SearchStats::distance_computations` counts queries report.

use cned_core::metric::Distance;
use cned_core::Symbol;
use cned_search::{
    Laesa, LinearIndex, MetricIndex, Neighbour, QueryOptions, SearchError, SearchStats,
};
use cned_serve::wire::WireSymbol;
use cned_serve::{ShardConfig, ShardedIndex};
use std::path::Path;

use crate::format::{
    backend, crc32, kind, put_f64, put_u32, put_u64, Crc32, Reader, StoreError, MAX_RECORD,
    SNAP_MAGIC, SNAP_VERSION,
};

/// Global facts from a snapshot's META record, available without
/// decoding the index body (see [`read_snapshot_meta`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Metric identity: a stable code (see `cned`'s metric table).
    pub metric_code: u8,
    /// Metric sub-flag (e.g. bounded-evaluation for `d_C`).
    pub metric_flag: u8,
    /// Backend tag ([`crate::format::backend`]).
    pub backend: u8,
    /// Total items in the snapshot — the replica-sync base count.
    pub items: u64,
}

/// An owned index decoded from a snapshot. Delegates the whole
/// [`MetricIndex`] surface to the concrete backend; [`crate::Durable`]
/// wraps one of these.
pub enum StoredIndex<S: Symbol> {
    /// Exhaustive-scan backend.
    Linear(LinearIndex<S>),
    /// Single LAESA index (no incremental inserts).
    Laesa(Laesa<S>),
    /// The sharded serving backend.
    Sharded(ShardedIndex<S>),
}

impl<S: Symbol> StoredIndex<S> {
    /// Borrow as the codec's view type.
    pub fn view(&self) -> IndexView<'_, S> {
        match self {
            StoredIndex::Linear(i) => IndexView::Linear(i),
            StoredIndex::Laesa(i) => IndexView::Laesa(i),
            StoredIndex::Sharded(i) => IndexView::Sharded(i),
        }
    }

    /// Backend tag for the META record.
    pub fn backend_tag(&self) -> u8 {
        match self {
            StoredIndex::Linear(_) => backend::LINEAR,
            StoredIndex::Laesa(_) => backend::LAESA,
            StoredIndex::Sharded(_) => backend::SHARDED,
        }
    }

    /// Append `item`, returning its global index. LAESA snapshots are
    /// immutable (same contract as the live backend): the insert is a
    /// typed [`SearchError::UnsupportedConfig`].
    pub fn insert(&mut self, item: Vec<S>, dist: &dyn Distance<S>) -> Result<usize, SearchError> {
        match self {
            StoredIndex::Linear(i) => {
                use cned_search::InsertableIndex;
                i.insert(item, dist)
            }
            StoredIndex::Laesa(_) => Err(SearchError::UnsupportedConfig {
                reason: "laesa snapshots are immutable; rebuild or use the sharded backend",
            }),
            StoredIndex::Sharded(i) => Ok(i.insert(item, dist)),
        }
    }

    fn inner(&self) -> &dyn MetricIndex<S> {
        match self {
            StoredIndex::Linear(i) => i,
            StoredIndex::Laesa(i) => i,
            StoredIndex::Sharded(i) => i,
        }
    }
}

impl<S: Symbol> MetricIndex<S> for StoredIndex<S> {
    fn len(&self) -> usize {
        self.inner().len()
    }

    fn backend_name(&self) -> &'static str {
        self.inner().backend_name()
    }

    fn item(&self, i: usize) -> Option<&[S]> {
        self.inner().item(i)
    }

    fn nn(
        &self,
        query: &[S],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<(Option<Neighbour>, SearchStats), SearchError> {
        self.inner().nn(query, dist, opts)
    }

    fn knn(
        &self,
        query: &[S],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<(Vec<Neighbour>, SearchStats), SearchError> {
        self.inner().knn(query, dist, opts)
    }

    fn range(
        &self,
        query: &[S],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<(Vec<Neighbour>, SearchStats), SearchError> {
        self.inner().range(query, dist, opts)
    }

    fn delete(&mut self, index: usize) -> Result<bool, SearchError> {
        match self {
            StoredIndex::Linear(i) => i.delete(index),
            StoredIndex::Laesa(i) => i.delete(index),
            StoredIndex::Sharded(i) => i.delete(index),
        }
    }

    fn deleted(&self) -> usize {
        self.inner().deleted()
    }

    fn is_deleted(&self, i: usize) -> bool {
        self.inner().is_deleted(i)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        self.inner().as_any()
    }
}

/// Borrowed view over the three persistable backends — what
/// [`encode_snapshot`] consumes, so `Database::save` can encode
/// straight from `as_any` downcast references without cloning.
pub enum IndexView<'a, S: Symbol> {
    /// See [`StoredIndex::Linear`].
    Linear(&'a LinearIndex<S>),
    /// See [`StoredIndex::Laesa`].
    Laesa(&'a Laesa<S>),
    /// See [`StoredIndex::Sharded`].
    Sharded(&'a ShardedIndex<S>),
}

impl<'a, S: Symbol> IndexView<'a, S> {
    /// Total items under the view.
    pub fn len(&self) -> usize {
        match self {
            IndexView::Linear(i) => MetricIndex::len(*i),
            IndexView::Laesa(i) => MetricIndex::len(*i),
            IndexView::Sharded(i) => i.len(),
        }
    }

    /// Whether the view holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The backend's tombstoned global indices, sorted ascending.
    pub fn tombstone_indices(&self) -> Vec<u64> {
        match self {
            IndexView::Linear(i) => i.tombstones().indices(),
            IndexView::Laesa(i) => i.tombstones().indices(),
            IndexView::Sharded(i) => i.tombstones().indices(),
        }
    }

    /// Downcast a dynamic index into a view, if it is one of the three
    /// persistable backends.
    pub fn of(index: &'a dyn MetricIndex<S>) -> Option<IndexView<'a, S>>
    where
        S: 'static,
    {
        let any = index.as_any()?;
        if let Some(i) = any.downcast_ref::<LinearIndex<S>>() {
            return Some(IndexView::Linear(i));
        }
        if let Some(i) = any.downcast_ref::<Laesa<S>>() {
            return Some(IndexView::Laesa(i));
        }
        if let Some(i) = any.downcast_ref::<ShardedIndex<S>>() {
            return Some(IndexView::Sharded(i));
        }
        None
    }
}

// ---------------------------------------------------------------- encode

/// Append one `[kind][len][body][crc]` record.
fn record(out: &mut Vec<u8>, k: u8, body: &[u8]) {
    let start = out.len();
    out.push(k);
    put_u32(out, body.len() as u32);
    out.extend_from_slice(body);
    let crc = crc32(&out[start..]);
    put_u32(out, crc);
}

fn put_item_list<'a, S: WireSymbol + 'a>(
    out: &mut Vec<u8>,
    items: impl ExactSizeIterator<Item = &'a [S]>,
) {
    put_u64(out, items.len() as u64);
    for item in items {
        put_u32(out, item.len() as u32);
        for &sym in item {
            sym.put(out);
        }
    }
}

fn get_item_list<S: WireSymbol>(r: &mut Reader<'_>) -> Result<Vec<Vec<S>>, StoreError> {
    let count = r.usize()?;
    // Each item costs at least its 4-byte length prefix; reject counts
    // the remaining bytes cannot possibly satisfy before allocating.
    if count.saturating_mul(4) > r.remaining() {
        return Err(StoreError::Truncated {
            needed: count.saturating_mul(4),
            got: r.remaining(),
        });
    }
    let mut items = Vec::with_capacity(count);
    for _ in 0..count {
        let len = r.u32()? as usize;
        let bytes = r.take(len.saturating_mul(S::WIDTH))?;
        items.push(bytes.chunks_exact(S::WIDTH).map(S::get).collect());
    }
    Ok(items)
}

fn put_laesa_body<S: WireSymbol>(out: &mut Vec<u8>, index: &Laesa<S>) {
    put_item_list(out, index.database().iter().map(Vec::as_slice));
    put_u32(out, index.pivots().len() as u32);
    for &p in index.pivots() {
        put_u64(out, p as u64);
    }
    for row in index.pivot_rows() {
        for &d in row {
            put_f64(out, d);
        }
    }
    put_u64(out, index.preprocessing_computations());
}

fn get_laesa_body<S: WireSymbol>(r: &mut Reader<'_>) -> Result<Laesa<S>, StoreError> {
    let db = get_item_list::<S>(r)?;
    let n = db.len();
    let pivot_count = r.u32()? as usize;
    let mut pivots = Vec::with_capacity(pivot_count.min(r.remaining() / 8));
    for _ in 0..pivot_count {
        pivots.push(r.usize()?);
    }
    let mut rows = Vec::with_capacity(pivots.len());
    for _ in 0..pivots.len() {
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            row.push(r.f64()?);
        }
        rows.push(row);
    }
    let preprocessing = r.u64()?;
    Laesa::from_parts(db, pivots, rows, preprocessing).map_err(|e| StoreError::Corrupt {
        detail: e.to_string(),
    })
}

/// Encode a snapshot of `view` into a fresh byte buffer.
///
/// `metric` is the `(code, flag)` pair identifying the distance the
/// index was built with — the loader refuses to pair the bytes with a
/// different metric. Tombstones are read off the view's backend and
/// written as a [`kind::TOMBSTONES`] record when non-empty.
pub fn encode_snapshot<S: WireSymbol>(metric: (u8, u8), view: &IndexView<'_, S>) -> Vec<u8> {
    encode_snapshot_with(metric, view, None)
}

/// [`encode_snapshot`] plus an opaque planner-decision blob
/// (`cned-plan`'s byte codec), written as a [`kind::PLAN`] record so
/// `Backend::Auto` restores its decision bit-identically on warm
/// restart.
pub fn encode_snapshot_with<S: WireSymbol>(
    metric: (u8, u8),
    view: &IndexView<'_, S>,
    plan: Option<&[u8]>,
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&SNAP_MAGIC);
    out.push(SNAP_VERSION);
    out.push(S::WIDTH as u8);

    let (tag, items) = match view {
        IndexView::Linear(i) => (backend::LINEAR, MetricIndex::len(*i) as u64),
        IndexView::Laesa(i) => (backend::LAESA, MetricIndex::len(*i) as u64),
        IndexView::Sharded(i) => (backend::SHARDED, i.len() as u64),
    };
    let mut body = Vec::new();
    body.push(metric.0);
    body.push(metric.1);
    body.push(tag);
    put_u64(&mut body, items);
    record(&mut out, kind::META, &body);

    match view {
        IndexView::Linear(i) => {
            body.clear();
            put_item_list(&mut body, i.database().iter().map(Vec::as_slice));
            record(&mut out, kind::LINEAR, &body);
        }
        IndexView::Laesa(i) => {
            body.clear();
            put_laesa_body(&mut body, i);
            record(&mut out, kind::LAESA, &body);
        }
        IndexView::Sharded(i) => {
            let config = i.config();
            body.clear();
            put_u64(&mut body, config.shards as u64);
            put_u64(&mut body, config.pivots_per_shard as u64);
            put_u64(&mut body, config.compact_threshold as u64);
            body.push(config.min_fill_percent);
            put_u64(&mut body, i.preprocessing_computations());
            record(&mut out, kind::SHARDED_META, &body);

            for (offset, shard) in i.shard_views() {
                body.clear();
                put_u64(&mut body, offset as u64);
                put_laesa_body(&mut body, shard);
                record(&mut out, kind::SHARD, &body);
            }

            body.clear();
            put_item_list(&mut body, i.delta_items().iter().map(Vec::as_slice));
            record(&mut out, kind::DELTA, &body);
        }
    }

    let dead = view.tombstone_indices();
    if !dead.is_empty() {
        body.clear();
        put_u64(&mut body, dead.len() as u64);
        for &idx in &dead {
            put_u64(&mut body, idx);
        }
        record(&mut out, kind::TOMBSTONES, &body);
    }
    if let Some(plan) = plan {
        record(&mut out, kind::PLAN, plan);
    }

    record(&mut out, kind::END, &[]);
    out
}

// ---------------------------------------------------------------- decode

/// One verified record: its kind and body slice.
struct Record<'a> {
    kind: u8,
    body: &'a [u8],
}

/// Read and CRC-verify the next record.
fn next_record<'a>(r: &mut Reader<'a>) -> Result<Record<'a>, StoreError> {
    let k = r.u8()?;
    let len = r.u32()? as usize;
    if len > MAX_RECORD {
        return Err(StoreError::Corrupt {
            detail: format!("record length {len} exceeds the {MAX_RECORD}-byte bound"),
        });
    }
    let body = r.take(len)?;
    let stored = r.u32()?;
    // The CRC covers kind + length prefix + body — everything between
    // the record start and the checksum itself.
    let mut c = Crc32::new();
    c.update(&[k]);
    c.update(&(len as u32).to_le_bytes());
    c.update(body);
    if stored != c.finish() {
        return Err(StoreError::Checksum {
            what: "snapshot record",
        });
    }
    Ok(Record { kind: k, body })
}

/// Parse a snapshot header (magic, version, symbol width), returning
/// the reader positioned at the first record.
fn snapshot_header<'a, S: WireSymbol>(bytes: &'a [u8]) -> Result<Reader<'a>, StoreError> {
    let mut r = Reader::new(bytes);
    if r.take(8)? != SNAP_MAGIC {
        return Err(StoreError::BadMagic {
            expected: SNAP_MAGIC,
        });
    }
    // v1 files (no TOMBSTONES / PLAN records) still decode.
    let version = r.u8()?;
    if version != 1 && version != SNAP_VERSION {
        return Err(StoreError::BadVersion {
            expected: SNAP_VERSION,
            got: version,
        });
    }
    let width = r.u8()?;
    if width as usize != S::WIDTH {
        return Err(StoreError::BadSymbolWidth {
            expected: S::WIDTH as u8,
            got: width,
        });
    }
    Ok(r)
}

fn parse_meta(body: &[u8]) -> Result<SnapshotMeta, StoreError> {
    let mut r = Reader::new(body);
    let meta = SnapshotMeta {
        metric_code: r.u8()?,
        metric_flag: r.u8()?,
        backend: r.u8()?,
        items: r.u64()?,
    };
    Ok(meta)
}

/// Decode just the META record — enough for replica-sync planning
/// (base item count, metric identity) without materialising the index.
pub fn read_snapshot_meta<S: WireSymbol>(bytes: &[u8]) -> Result<SnapshotMeta, StoreError> {
    let mut r = snapshot_header::<S>(bytes)?;
    let rec = next_record(&mut r)?;
    if rec.kind != kind::META {
        return Err(StoreError::Corrupt {
            detail: format!("first record must be META, found kind {}", rec.kind),
        });
    }
    parse_meta(rec.body)
}

/// Whether a snapshot carries a [`kind::TOMBSTONES`] record — i.e.
/// deletes have been folded into it that a log tail can no longer
/// convey. Walks the record stream without materialising the index.
pub fn snapshot_has_tombstones<S: WireSymbol>(bytes: &[u8]) -> Result<bool, StoreError> {
    let mut r = snapshot_header::<S>(bytes)?;
    loop {
        let rec = next_record(&mut r)?;
        match rec.kind {
            kind::TOMBSTONES => return Ok(true),
            kind::END => return Ok(false),
            _ => {}
        }
    }
}

/// Decode a full snapshot into its metadata and an owned index
/// (tombstones restored into the backend; the planner blob, if any,
/// is dropped — use [`decode_snapshot_plan`] to keep it).
pub fn decode_snapshot<S: WireSymbol>(
    bytes: &[u8],
) -> Result<(SnapshotMeta, StoredIndex<S>), StoreError> {
    let (meta, index, _) = decode_snapshot_plan(bytes)?;
    Ok((meta, index))
}

/// Everything a snapshot decodes to: metadata, the rebuilt index, and
/// the planner-decision blob persisted alongside it (if any).
pub type DecodedSnapshot<S> = (SnapshotMeta, StoredIndex<S>, Option<Vec<u8>>);

/// Decode a full snapshot into its metadata, an owned index and the
/// planner-decision blob stored alongside it (if any).
pub fn decode_snapshot_plan<S: WireSymbol>(bytes: &[u8]) -> Result<DecodedSnapshot<S>, StoreError> {
    let mut r = snapshot_header::<S>(bytes)?;
    let rec = next_record(&mut r)?;
    if rec.kind != kind::META {
        return Err(StoreError::Corrupt {
            detail: format!("first record must be META, found kind {}", rec.kind),
        });
    }
    let meta = parse_meta(rec.body)?;

    let index = match meta.backend {
        backend::LINEAR => {
            let rec = expect_record(&mut r, kind::LINEAR)?;
            let mut body = Reader::new(rec.body);
            let items = get_item_list::<S>(&mut body)?;
            expect_consumed(&body, "LINEAR record")?;
            StoredIndex::Linear(LinearIndex::new(items))
        }
        backend::LAESA => {
            let rec = expect_record(&mut r, kind::LAESA)?;
            let mut body = Reader::new(rec.body);
            let index = get_laesa_body::<S>(&mut body)?;
            expect_consumed(&body, "LAESA record")?;
            StoredIndex::Laesa(index)
        }
        backend::SHARDED => {
            let rec = expect_record(&mut r, kind::SHARDED_META)?;
            let mut body = Reader::new(rec.body);
            let config = ShardConfig {
                shards: body.usize()?,
                pivots_per_shard: body.usize()?,
                compact_threshold: body.usize()?,
                min_fill_percent: body.u8()?,
            };
            let preprocessing = body.u64()?;
            expect_consumed(&body, "SHARDED_META record")?;

            let mut shards = Vec::new();
            let delta = loop {
                let rec = next_record(&mut r)?;
                match rec.kind {
                    kind::SHARD => {
                        let mut body = Reader::new(rec.body);
                        let offset = body.usize()?;
                        let shard = get_laesa_body::<S>(&mut body)?;
                        expect_consumed(&body, "SHARD record")?;
                        shards.push((offset, shard));
                    }
                    kind::DELTA => {
                        let mut body = Reader::new(rec.body);
                        let delta = get_item_list::<S>(&mut body)?;
                        expect_consumed(&body, "DELTA record")?;
                        break delta;
                    }
                    other => {
                        return Err(StoreError::Corrupt {
                            detail: format!("expected SHARD or DELTA record, found kind {other}"),
                        })
                    }
                }
            };
            let index =
                ShardedIndex::from_parts(shards, delta, config, preprocessing).map_err(|e| {
                    StoreError::Corrupt {
                        detail: e.to_string(),
                    }
                })?;
            StoredIndex::Sharded(index)
        }
        other => {
            return Err(StoreError::Unsupported {
                detail: format!("unknown backend tag {other}"),
            })
        }
    };

    // Optional trailing records (snapshot v2+): TOMBSTONES, then
    // PLAN, then the mandatory END terminator.
    let mut index = index;
    let mut plan = None;
    let mut rec = next_record(&mut r)?;
    if rec.kind == kind::TOMBSTONES {
        let mut body = Reader::new(rec.body);
        let count = body.usize()?;
        if count.saturating_mul(8) > body.remaining() {
            return Err(StoreError::Truncated {
                needed: count.saturating_mul(8),
                got: body.remaining(),
            });
        }
        let mut dead = Vec::with_capacity(count);
        for _ in 0..count {
            let idx = body.u64()?;
            if idx >= index.len() as u64 {
                return Err(StoreError::Corrupt {
                    detail: format!("tombstone index {idx} out of range"),
                });
            }
            dead.push(idx);
        }
        expect_consumed(&body, "TOMBSTONES record")?;
        let set = cned_search::TombstoneSet::from_indices(&dead);
        match &mut index {
            StoredIndex::Linear(i) => i.set_tombstones(set),
            StoredIndex::Laesa(i) => i.set_tombstones(set),
            StoredIndex::Sharded(i) => i.set_tombstones(set),
        }
        rec = next_record(&mut r)?;
    }
    if rec.kind == kind::PLAN {
        plan = Some(rec.body.to_vec());
        rec = next_record(&mut r)?;
    }
    if rec.kind != kind::END {
        return Err(StoreError::Corrupt {
            detail: format!("expected END record, found kind {}", rec.kind),
        });
    }
    if r.remaining() != 0 {
        return Err(StoreError::Corrupt {
            detail: format!("{} trailing bytes after END record", r.remaining()),
        });
    }
    if index.len() as u64 != meta.items {
        return Err(StoreError::Corrupt {
            detail: format!(
                "META promises {} items, body holds {}",
                meta.items,
                index.len()
            ),
        });
    }
    Ok((meta, index, plan))
}

fn expect_record<'a>(r: &mut Reader<'a>, want: u8) -> Result<Record<'a>, StoreError> {
    let rec = next_record(r)?;
    if rec.kind != want {
        return Err(StoreError::Corrupt {
            detail: format!("expected record kind {want}, found {}", rec.kind),
        });
    }
    Ok(rec)
}

fn expect_consumed(r: &Reader<'_>, what: &str) -> Result<(), StoreError> {
    if r.remaining() != 0 {
        return Err(StoreError::Corrupt {
            detail: format!("{} trailing bytes inside {what}", r.remaining()),
        });
    }
    Ok(())
}

// ---------------------------------------------------------------- files

/// Write `bytes` to `path` atomically: write a sibling temp file,
/// fsync it, rename over `path`, fsync the directory. A crash at any
/// point leaves either the old complete file or the new complete file.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    use std::io::Write;
    let tmp = path.with_extension("tmp");
    let mut f = std::fs::File::create(&tmp).map_err(|e| StoreError::io("create temp file", e))?;
    f.write_all(bytes)
        .map_err(|e| StoreError::io("write temp file", e))?;
    f.sync_all()
        .map_err(|e| StoreError::io("fsync temp file", e))?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(|e| StoreError::io("rename snapshot", e))?;
    if let Some(dir) = path.parent() {
        // Make the rename itself durable. Some filesystems do not
        // support fsync on directories; degrade silently there.
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}
