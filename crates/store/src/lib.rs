//! # cned-store — versioned snapshots, an insert WAL, and replication
//!
//! Durability and replication for the serving stack, built on two
//! files per data dir and one invariant:
//!
//! * [`snapshot`] — a versioned, checksummed binary snapshot of a
//!   whole index (items, metric identity, LAESA pivot tables, the
//!   `ShardedIndex` layout down to shard offsets and `f64`-exact pivot
//!   rows), so a restarted process **skips the index build** and
//!   answers bit-identically — including `SearchStats` counts — to the
//!   process that wrote it;
//! * [`wal`] — an append-only, fsync-on-commit log of inserts accepted
//!   since the last snapshot, replayed on recovery and truncated by
//!   each snapshot; a torn tail (crash mid-write) is dropped silently
//!   because it was never acknowledged, while any corruption in
//!   *complete* records is a typed error;
//! * [`Durable`] — the wrapper a serving session owns: WAL-append +
//!   fsync **before** the in-memory insert, threshold snapshots inside
//!   the session's existing insert barrier, and a final snapshot on
//!   drop. This ordering makes **disk a superset of every acknowledged
//!   insert** — the invariant everything else leans on;
//! * [`StoreHub`] — primary-side replica registration: serves catch-up
//!   payloads (snapshot chunks + log tail) straight from the files,
//!   while the event loop's subscribe-before-read protocol plus
//!   `Durable`'s publish-after-durable-write ordering guarantees a
//!   replica sees every insert at least once (dedup by sequence number
//!   makes the overlap harmless).
//!
//! Decoders follow the same standard as `cned-serve`'s wire codec:
//! malformed, truncated, bit-flipped or version-skewed bytes produce
//! typed [`StoreError`]s — never a panic, never a silently wrong
//! index. `cned-lint`'s schema pass fingerprints [`format::SNAP_VERSION`]
//! and the record kinds so format changes require an explicit bless.

// No unsafe here, enforced at compile time (and by cned-lint).
#![forbid(unsafe_code)]

pub mod durable;
pub mod format;
pub mod snapshot;
pub mod sync;
pub mod wal;

pub use durable::{data_dir_initialised, Durable, SNAPSHOT_FILE, WAL_FILE};
pub use format::{StoreError, SNAP_VERSION, WAL_VERSION};
pub use snapshot::{
    decode_snapshot, decode_snapshot_plan, encode_snapshot, encode_snapshot_with,
    read_snapshot_meta, snapshot_has_tombstones, write_atomic, IndexView, SnapshotMeta,
    StoredIndex,
};
pub use sync::{decode_items, StoreHub, SyncAccumulator, SyncOutcome, SYNC_CHUNK};
pub use wal::{Wal, WalOp};
