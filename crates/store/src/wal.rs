//! The write-ahead log: an append-only, fsync-on-commit record of
//! every insert and delete accepted since the last snapshot.
//!
//! The durability contract is *disk before ack*: [`Wal::append`] /
//! [`Wal::append_delete`] fsync before they return, and the caller
//! only acknowledges the write (resolves the client's ticket) after
//! that return. A crash therefore loses at most writes that were
//! never acknowledged — and those appear, if at all, as a torn tail
//! that replay drops. See the layout notes in [`crate::format`].

use cned_serve::wire::WireSymbol;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

use crate::format::{
    crc32, put_u32, put_u64, Reader, StoreError, MAX_RECORD, WAL_MAGIC, WAL_VERSION,
};

/// Byte length of the WAL header (magic + version + symbol width).
const HEADER_LEN: usize = 10;

/// WAL v2 entry op byte: an accepted insert (`[seq][item]` body).
const OP_INSERT: u8 = 1;
/// WAL v2 entry op byte: an accepted delete (`[index u64]` body).
const OP_DELETE: u8 = 2;

/// One replayed WAL entry, in commit order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp<S> {
    /// An accepted insert: the item and its global index (`seq`).
    Insert {
        /// The item's global index (== the index count before it).
        seq: u64,
        /// The item itself.
        item: Vec<S>,
    },
    /// An accepted delete: the tombstoned item's global index.
    Delete {
        /// The tombstoned item's global index.
        index: u64,
    },
}

/// An open WAL file, positioned for appends.
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Entries appended since the file was last truncated.
    entries: u64,
}

impl Wal {
    /// Open `path` for appending, creating it (with a fresh header) if
    /// missing or empty. Existing contents are validated only by
    /// [`replay`]; opening is cheap.
    pub fn open<S: WireSymbol>(path: &Path) -> Result<Wal, StoreError> {
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(path)
            .map_err(|e| StoreError::io("open wal", e))?;
        let len = file
            .metadata()
            .map_err(|e| StoreError::io("stat wal", e))?
            .len();
        if len == 0 {
            file.write_all(&header::<S>())
                .map_err(|e| StoreError::io("write wal header", e))?;
            file.sync_all()
                .map_err(|e| StoreError::io("fsync wal header", e))?;
        }
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            entries: 0,
        })
    }

    /// Entries appended through this handle since open/truncate.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Append one committed insert and fsync. `seq` is the item's
    /// global index (== the index count before the insert).
    pub fn append<S: WireSymbol>(&mut self, seq: u64, item: &[S]) -> Result<(), StoreError> {
        let mut buf = Vec::with_capacity(4 + 1 + 8 + 4 + item.len() * S::WIDTH + 4);
        encode_entry(&mut buf, seq, item);
        self.write_entry(&buf)
    }

    /// Append one committed delete (the tombstoned item's global
    /// `index`) and fsync.
    pub fn append_delete(&mut self, index: u64) -> Result<(), StoreError> {
        let mut buf = Vec::with_capacity(4 + 1 + 8 + 4);
        encode_delete_entry(&mut buf, index);
        self.write_entry(&buf)
    }

    fn write_entry(&mut self, buf: &[u8]) -> Result<(), StoreError> {
        self.file
            .write_all(buf)
            .map_err(|e| StoreError::io("append wal entry", e))?;
        self.file
            .sync_all()
            .map_err(|e| StoreError::io("fsync wal entry", e))?;
        self.entries += 1;
        Ok(())
    }

    /// Drop all entries (after a snapshot has captured them): truncate
    /// back to a fresh header and fsync.
    pub fn truncate<S: WireSymbol>(&mut self) -> Result<(), StoreError> {
        self.file
            .set_len(0)
            .map_err(|e| StoreError::io("truncate wal", e))?;
        // append-mode writes follow the (now clamped) end of file.
        self.file
            .write_all(&header::<S>())
            .map_err(|e| StoreError::io("write wal header", e))?;
        self.file
            .sync_all()
            .map_err(|e| StoreError::io("fsync wal", e))?;
        self.entries = 0;
        Ok(())
    }

    /// The file path this WAL appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn header<S: WireSymbol>() -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..8].copy_from_slice(&WAL_MAGIC);
    h[8] = WAL_VERSION;
    h[9] = S::WIDTH as u8;
    h
}

/// Append one `[len][op=insert][seq][item][crc]` entry to `buf`.
pub fn encode_entry<S: WireSymbol>(buf: &mut Vec<u8>, seq: u64, item: &[S]) {
    let start = buf.len();
    let body_len = 1 + 8 + 4 + item.len() * S::WIDTH;
    put_u32(buf, body_len as u32);
    buf.push(OP_INSERT);
    put_u64(buf, seq);
    put_u32(buf, item.len() as u32);
    for &sym in item {
        sym.put(buf);
    }
    let crc = crc32(&buf[start..]);
    put_u32(buf, crc);
}

/// Append one `[len][op=delete][index][crc]` entry to `buf`.
pub fn encode_delete_entry(buf: &mut Vec<u8>, index: u64) {
    let start = buf.len();
    put_u32(buf, (1 + 8) as u32);
    buf.push(OP_DELETE);
    put_u64(buf, index);
    let crc = crc32(&buf[start..]);
    put_u32(buf, crc);
}

/// Replay a WAL byte buffer into its committed ops, in commit order.
///
/// Both WAL versions replay: v1 entries are implicit inserts (no op
/// byte); v2 entries carry an op byte. A tail that ends mid-entry —
/// including a length prefix promising more bytes than the file
/// holds — is treated as a torn final write and dropped: the entry's
/// fsync never completed, so no client was ever told it succeeded. A
/// *complete* entry with a CRC mismatch is corruption and fails
/// typed.
pub fn replay<S: WireSymbol>(bytes: &[u8]) -> Result<Vec<WalOp<S>>, StoreError> {
    let mut r = Reader::new(bytes);
    if r.take(8).map_err(|_| StoreError::Truncated {
        needed: HEADER_LEN,
        got: bytes.len(),
    })? != WAL_MAGIC
    {
        return Err(StoreError::BadMagic {
            expected: WAL_MAGIC,
        });
    }
    let version = r.u8()?;
    if version != 1 && version != WAL_VERSION {
        return Err(StoreError::BadVersion {
            expected: WAL_VERSION,
            got: version,
        });
    }
    let width = r.u8()?;
    if width as usize != S::WIDTH {
        return Err(StoreError::BadSymbolWidth {
            expected: S::WIDTH as u8,
            got: width,
        });
    }

    let mut out = Vec::new();
    loop {
        if r.remaining() == 0 {
            return Ok(out);
        }
        if r.remaining() < 4 {
            // Torn mid-length-prefix: drop silently (see doc comment).
            return Ok(out);
        }
        let len = r.u32()? as usize;
        if len > MAX_RECORD {
            return Err(StoreError::Corrupt {
                detail: format!("wal entry length {len} exceeds the {MAX_RECORD}-byte bound"),
            });
        }
        if len + 4 > r.remaining() {
            // Torn mid-entry (body + CRC incomplete): drop silently.
            return Ok(out);
        }
        let body = r.take(len)?;
        let stored = r.u32()?;
        let mut c = crate::format::Crc32::new();
        c.update(&(len as u32).to_le_bytes());
        c.update(body);
        if stored != c.finish() {
            return Err(StoreError::Checksum { what: "wal entry" });
        }
        let mut b = Reader::new(body);
        let op = if version == 1 { OP_INSERT } else { b.u8()? };
        let entry = match op {
            OP_INSERT => {
                let seq = b.u64()?;
                let count = b.u32()? as usize;
                let sym_bytes = b.take(count.saturating_mul(S::WIDTH))?;
                WalOp::Insert {
                    seq,
                    item: sym_bytes.chunks_exact(S::WIDTH).map(S::get).collect(),
                }
            }
            OP_DELETE => WalOp::Delete { index: b.u64()? },
            other => {
                return Err(StoreError::Corrupt {
                    detail: format!("unknown wal op byte {other}"),
                })
            }
        };
        if b.remaining() != 0 {
            return Err(StoreError::Corrupt {
                detail: format!("{} trailing bytes inside wal entry", b.remaining()),
            });
        }
        out.push(entry);
    }
}

/// Read and replay a WAL file from disk. A missing file replays empty
/// (a fresh data dir has no log yet).
pub fn replay_file<S: WireSymbol>(path: &Path) -> Result<Vec<WalOp<S>>, StoreError> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)
                .map_err(|e| StoreError::io("read wal", e))?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(StoreError::io("open wal", e)),
    }
    replay::<S>(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(entries: &[(u64, Vec<u32>)]) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&header::<u32>());
        for (seq, item) in entries {
            encode_entry(&mut bytes, *seq, item);
        }
        bytes
    }

    fn inserts(entries: &[(u64, Vec<u32>)]) -> Vec<WalOp<u32>> {
        entries
            .iter()
            .map(|(seq, item)| WalOp::Insert {
                seq: *seq,
                item: item.clone(),
            })
            .collect()
    }

    #[test]
    fn replay_roundtrips() {
        let entries = vec![(3, vec![1u32, 2, 3]), (4, vec![]), (5, vec![9])];
        assert_eq!(
            replay::<u32>(&roundtrip(&entries)).unwrap(),
            inserts(&entries)
        );
    }

    #[test]
    fn mixed_insert_delete_log_replays_in_commit_order() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&header::<u32>());
        encode_entry(&mut bytes, 0, &[7u32, 8]);
        encode_delete_entry(&mut bytes, 0);
        encode_entry(&mut bytes, 1, &[9u32]);
        encode_delete_entry(&mut bytes, 5);
        assert_eq!(
            replay::<u32>(&bytes).unwrap(),
            vec![
                WalOp::Insert {
                    seq: 0,
                    item: vec![7, 8],
                },
                WalOp::Delete { index: 0 },
                WalOp::Insert {
                    seq: 1,
                    item: vec![9],
                },
                WalOp::Delete { index: 5 },
            ]
        );
    }

    #[test]
    fn v1_logs_replay_as_implicit_inserts() {
        // A v1 entry is `[len][seq][item][crc]` with no op byte.
        let mut bytes = Vec::new();
        let mut h = header::<u32>();
        h[8] = 1; // WAL v1
        bytes.extend_from_slice(&h);
        let start = bytes.len();
        let item = [4u32, 5];
        put_u32(&mut bytes, (8 + 4 + item.len() * 4) as u32);
        put_u64(&mut bytes, 9);
        put_u32(&mut bytes, item.len() as u32);
        for &sym in &item {
            sym.put(&mut bytes);
        }
        let crc = crc32(&bytes[start..]);
        put_u32(&mut bytes, crc);
        assert_eq!(
            replay::<u32>(&bytes).unwrap(),
            vec![WalOp::Insert {
                seq: 9,
                item: vec![4, 5],
            }]
        );
    }

    #[test]
    fn torn_tail_is_dropped_silently() {
        let entries = vec![(0, vec![7u32, 8]), (1, vec![9u32])];
        let bytes = roundtrip(&entries);
        // Cutting anywhere inside the last entry must still replay the
        // first entry and drop the torn one, with no error.
        let first_only = roundtrip(&entries[..1]);
        for cut in first_only.len()..bytes.len() {
            let got = replay::<u32>(&bytes[..cut]).unwrap();
            assert_eq!(got, inserts(&entries[..1]), "cut at {cut}");
        }
    }

    #[test]
    fn bit_flip_in_complete_entry_is_a_checksum_error() {
        let bytes = roundtrip(&[(0, vec![7u32, 8]), (1, vec![9u32])]);
        // Flip a byte inside the FIRST entry's body (not the tail).
        let mut evil = bytes.clone();
        evil[HEADER_LEN + 6] ^= 0x40;
        assert_eq!(
            replay::<u32>(&evil),
            Err(StoreError::Checksum { what: "wal entry" })
        );
    }

    #[test]
    fn version_and_width_skew_fail_typed() {
        let bytes = roundtrip(&[(0, vec![1u32])]);
        let mut wrong_version = bytes.clone();
        wrong_version[8] = WAL_VERSION + 1;
        assert!(matches!(
            replay::<u32>(&wrong_version),
            Err(StoreError::BadVersion { .. })
        ));
        let mut wrong_width = bytes;
        wrong_width[9] = 1;
        assert!(matches!(
            replay::<u32>(&wrong_width),
            Err(StoreError::BadSymbolWidth { .. })
        ));
    }
}
