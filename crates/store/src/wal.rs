//! The insert write-ahead log: an append-only, fsync-on-commit record
//! of every insert accepted since the last snapshot.
//!
//! The durability contract is *disk before ack*: [`Wal::append`]
//! fsyncs before it returns, and the caller only acknowledges the
//! insert (resolves the client's ticket) after that return. A crash
//! therefore loses at most inserts that were never acknowledged — and
//! those appear, if at all, as a torn tail that replay drops. See the
//! layout notes in [`crate::format`].

use cned_serve::wire::WireSymbol;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

use crate::format::{
    crc32, put_u32, put_u64, Reader, StoreError, MAX_RECORD, WAL_MAGIC, WAL_VERSION,
};

/// Byte length of the WAL header (magic + version + symbol width).
const HEADER_LEN: usize = 10;

/// An open WAL file, positioned for appends.
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Entries appended since the file was last truncated.
    entries: u64,
}

impl Wal {
    /// Open `path` for appending, creating it (with a fresh header) if
    /// missing or empty. Existing contents are validated only by
    /// [`Wal::replay`]; opening is cheap.
    pub fn open<S: WireSymbol>(path: &Path) -> Result<Wal, StoreError> {
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(path)
            .map_err(|e| StoreError::io("open wal", e))?;
        let len = file
            .metadata()
            .map_err(|e| StoreError::io("stat wal", e))?
            .len();
        if len == 0 {
            file.write_all(&header::<S>())
                .map_err(|e| StoreError::io("write wal header", e))?;
            file.sync_all()
                .map_err(|e| StoreError::io("fsync wal header", e))?;
        }
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            entries: 0,
        })
    }

    /// Entries appended through this handle since open/truncate.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Append one committed insert and fsync. `seq` is the item's
    /// global index (== the index count before the insert).
    pub fn append<S: WireSymbol>(&mut self, seq: u64, item: &[S]) -> Result<(), StoreError> {
        let mut buf = Vec::with_capacity(4 + 8 + 4 + item.len() * S::WIDTH + 4);
        encode_entry(&mut buf, seq, item);
        self.file
            .write_all(&buf)
            .map_err(|e| StoreError::io("append wal entry", e))?;
        self.file
            .sync_all()
            .map_err(|e| StoreError::io("fsync wal entry", e))?;
        self.entries += 1;
        Ok(())
    }

    /// Drop all entries (after a snapshot has captured them): truncate
    /// back to a fresh header and fsync.
    pub fn truncate<S: WireSymbol>(&mut self) -> Result<(), StoreError> {
        self.file
            .set_len(0)
            .map_err(|e| StoreError::io("truncate wal", e))?;
        // append-mode writes follow the (now clamped) end of file.
        self.file
            .write_all(&header::<S>())
            .map_err(|e| StoreError::io("write wal header", e))?;
        self.file
            .sync_all()
            .map_err(|e| StoreError::io("fsync wal", e))?;
        self.entries = 0;
        Ok(())
    }

    /// The file path this WAL appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn header<S: WireSymbol>() -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..8].copy_from_slice(&WAL_MAGIC);
    h[8] = WAL_VERSION;
    h[9] = S::WIDTH as u8;
    h
}

/// Append one `[len][seq][item][crc]` entry to `buf`.
pub fn encode_entry<S: WireSymbol>(buf: &mut Vec<u8>, seq: u64, item: &[S]) {
    let start = buf.len();
    let body_len = 8 + 4 + item.len() * S::WIDTH;
    put_u32(buf, body_len as u32);
    put_u64(buf, seq);
    put_u32(buf, item.len() as u32);
    for &sym in item {
        sym.put(buf);
    }
    let crc = crc32(&buf[start..]);
    put_u32(buf, crc);
}

/// Replay a WAL byte buffer into `(seq, item)` pairs.
///
/// A tail that ends mid-entry — including a length prefix promising
/// more bytes than the file holds — is treated as a torn final write
/// and dropped: the entry's fsync never completed, so no client was
/// ever told it succeeded. A *complete* entry with a CRC mismatch is
/// corruption and fails typed.
pub fn replay<S: WireSymbol>(bytes: &[u8]) -> Result<Vec<(u64, Vec<S>)>, StoreError> {
    let mut r = Reader::new(bytes);
    if r.take(8).map_err(|_| StoreError::Truncated {
        needed: HEADER_LEN,
        got: bytes.len(),
    })? != WAL_MAGIC
    {
        return Err(StoreError::BadMagic {
            expected: WAL_MAGIC,
        });
    }
    let version = r.u8()?;
    if version != WAL_VERSION {
        return Err(StoreError::BadVersion {
            expected: WAL_VERSION,
            got: version,
        });
    }
    let width = r.u8()?;
    if width as usize != S::WIDTH {
        return Err(StoreError::BadSymbolWidth {
            expected: S::WIDTH as u8,
            got: width,
        });
    }

    let mut out = Vec::new();
    loop {
        if r.remaining() == 0 {
            return Ok(out);
        }
        if r.remaining() < 4 {
            // Torn mid-length-prefix: drop silently (see doc comment).
            return Ok(out);
        }
        let len = r.u32()? as usize;
        if len > MAX_RECORD {
            return Err(StoreError::Corrupt {
                detail: format!("wal entry length {len} exceeds the {MAX_RECORD}-byte bound"),
            });
        }
        if len + 4 > r.remaining() {
            // Torn mid-entry (body + CRC incomplete): drop silently.
            return Ok(out);
        }
        let body = r.take(len)?;
        let stored = r.u32()?;
        let mut c = crate::format::Crc32::new();
        c.update(&(len as u32).to_le_bytes());
        c.update(body);
        if stored != c.finish() {
            return Err(StoreError::Checksum { what: "wal entry" });
        }
        let mut b = Reader::new(body);
        let seq = b.u64()?;
        let count = b.u32()? as usize;
        let sym_bytes = b.take(count.saturating_mul(S::WIDTH))?;
        if b.remaining() != 0 {
            return Err(StoreError::Corrupt {
                detail: format!("{} trailing bytes inside wal entry", b.remaining()),
            });
        }
        out.push((seq, sym_bytes.chunks_exact(S::WIDTH).map(S::get).collect()));
    }
}

/// Read and replay a WAL file from disk. A missing file replays empty
/// (a fresh data dir has no log yet).
pub fn replay_file<S: WireSymbol>(path: &Path) -> Result<Vec<(u64, Vec<S>)>, StoreError> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)
                .map_err(|e| StoreError::io("read wal", e))?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(StoreError::io("open wal", e)),
    }
    replay::<S>(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(entries: &[(u64, Vec<u32>)]) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&header::<u32>());
        for (seq, item) in entries {
            encode_entry(&mut bytes, *seq, item);
        }
        bytes
    }

    #[test]
    fn replay_roundtrips() {
        let entries = vec![(3, vec![1u32, 2, 3]), (4, vec![]), (5, vec![9])];
        assert_eq!(replay::<u32>(&roundtrip(&entries)).unwrap(), entries);
    }

    #[test]
    fn torn_tail_is_dropped_silently() {
        let entries = vec![(0, vec![7u32, 8]), (1, vec![9u32])];
        let bytes = roundtrip(&entries);
        // Cutting anywhere inside the last entry must still replay the
        // first entry and drop the torn one, with no error.
        let first_only = roundtrip(&entries[..1]);
        for cut in first_only.len()..bytes.len() {
            let got = replay::<u32>(&bytes[..cut]).unwrap();
            assert_eq!(got, entries[..1], "cut at {cut}");
        }
    }

    #[test]
    fn bit_flip_in_complete_entry_is_a_checksum_error() {
        let bytes = roundtrip(&[(0, vec![7u32, 8]), (1, vec![9u32])]);
        // Flip a byte inside the FIRST entry's body (not the tail).
        let mut evil = bytes.clone();
        evil[HEADER_LEN + 6] ^= 0x40;
        assert_eq!(
            replay::<u32>(&evil),
            Err(StoreError::Checksum { what: "wal entry" })
        );
    }

    #[test]
    fn version_and_width_skew_fail_typed() {
        let bytes = roundtrip(&[(0, vec![1u32])]);
        let mut wrong_version = bytes.clone();
        wrong_version[8] = WAL_VERSION + 1;
        assert!(matches!(
            replay::<u32>(&wrong_version),
            Err(StoreError::BadVersion { .. })
        ));
        let mut wrong_width = bytes;
        wrong_width[9] = 1;
        assert!(matches!(
            replay::<u32>(&wrong_width),
            Err(StoreError::BadSymbolWidth { .. })
        ));
    }
}
