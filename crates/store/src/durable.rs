//! [`Durable`]: the persistence wrapper a serving session owns.
//!
//! Wraps a [`StoredIndex`] and threads every accepted write (insert
//! or delete) through the durability pipeline, in this order:
//!
//! 1. **WAL append + fsync** — the write is on disk before anything
//!    else observes it. If this fails, the write fails typed and the
//!    in-memory index is untouched.
//! 2. **In-memory apply** — the index mutates only after the entry is
//!    durable, so disk is always a superset of acknowledged state.
//! 3. **Feed publish** — replica subscribers receive the op strictly
//!    after the durable write, which is what makes the hub's
//!    subscribe-then-read-disk registration protocol gap-free.
//! 4. **Threshold snapshot** — once `snapshot_every` WAL entries
//!    accumulate, the index is re-snapshotted and the WAL truncated.
//!
//! Snapshots happen *on the scheduler thread inside the write call*,
//! which is exactly the consistency barrier the session already
//! provides: no query or other insert can observe the index mid-write.
//!
//! The wrapper implements [`MetricIndex`]/[`InsertableIndex`], so a
//! `ServeSession` owns it like any other backend and the whole
//! serving stack gains durability without learning anything new.

use cned_core::metric::Distance;
use cned_search::{
    InsertableIndex, MetricIndex, Neighbour, QueryOptions, SearchError, SearchStats,
};
use cned_serve::ordered::{rank, OrderedMutex};
use cned_serve::server::ReplOp;
use cned_serve::wire::WireSymbol;
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Arc};

use crate::format::StoreError;
use crate::snapshot::{
    decode_snapshot_plan, encode_snapshot_with, write_atomic, SnapshotMeta, StoredIndex,
};
use crate::wal::{replay_file, Wal, WalOp};

/// Snapshot file name inside a data dir.
pub const SNAPSHOT_FILE: &str = "snapshot.cned";
/// WAL file name inside a data dir.
pub const WAL_FILE: &str = "wal.cned";

/// State shared between a [`Durable`] (scheduler thread) and its
/// [`crate::StoreHub`] (event-loop threads).
pub(crate) struct StoreShared<S: WireSymbol> {
    pub(crate) dir: PathBuf,
    /// Live replica subscriptions. Rank 30: taken alone, briefly, by
    /// either side.
    pub(crate) subs: OrderedMutex<Vec<mpsc::Sender<ReplOp<S>>>>,
    /// Guards the *install* of new file states (snapshot rename + WAL
    /// truncate) against concurrent sync-payload reads. Plain appends
    /// don't take it — a torn WAL tail is harmless to a reader, but an
    /// old-snapshot/new-WAL interleaving would open a sequence gap.
    /// Rank 31.
    pub(crate) files: OrderedMutex<()>,
}

impl<S: WireSymbol> StoreShared<S> {
    pub(crate) fn snapshot_path(&self) -> PathBuf {
        self.dir.join(SNAPSHOT_FILE)
    }

    pub(crate) fn wal_path(&self) -> PathBuf {
        self.dir.join(WAL_FILE)
    }

    /// Deliver one durable write to every live subscriber, dropping
    /// subscriptions whose receiver has gone away.
    fn publish(&self, op: &ReplOp<S>) {
        let mut subs = self.subs.lock();
        subs.retain(|tx| tx.send(op.clone()).is_ok());
    }

    pub(crate) fn subscribe(&self) -> mpsc::Receiver<ReplOp<S>> {
        let (tx, rx) = mpsc::channel();
        self.subs.lock().push(tx);
        rx
    }
}

/// A persistent index: a [`StoredIndex`] plus its data dir, WAL and
/// snapshot policy. See the module docs for the insert pipeline.
pub struct Durable<S: WireSymbol> {
    inner: StoredIndex<S>,
    metric: (u8, u8),
    wal: Wal,
    snapshot_every: u64,
    shared: Arc<StoreShared<S>>,
    /// Opaque planner-decision blob (`cned-plan` codec) carried into
    /// every snapshot, so `Backend::Auto` restores its decision
    /// bit-identically on warm restart.
    plan: Option<Vec<u8>>,
}

/// Does `dir` hold a snapshot a [`Durable::recover`] could load?
pub fn data_dir_initialised(dir: &Path) -> bool {
    dir.join(SNAPSHOT_FILE).is_file()
}

impl<S: WireSymbol> Durable<S> {
    /// Initialise a fresh data dir from an in-memory index: write its
    /// first snapshot and an empty WAL. Fails if the dir cannot be
    /// created or written; any existing snapshot/WAL is replaced.
    pub fn create(
        dir: &Path,
        metric: (u8, u8),
        index: StoredIndex<S>,
        snapshot_every: u64,
    ) -> Result<Durable<S>, StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io("create data dir", e))?;
        let shared = Arc::new(StoreShared {
            dir: dir.to_path_buf(),
            subs: OrderedMutex::new(rank::STORE_SUBS, "StoreShared::subs", Vec::new()),
            files: OrderedMutex::new(rank::STORE_FILES, "StoreShared::files", ()),
        });
        let bytes = encode_snapshot_with(metric, &index.view(), None);
        write_atomic(&shared.snapshot_path(), &bytes)?;
        // Replace any stale WAL from a previous incarnation of the dir.
        let wal_path = shared.wal_path();
        let mut wal = Wal::open::<S>(&wal_path)?;
        wal.truncate::<S>()?;
        Ok(Durable {
            inner: index,
            metric,
            wal,
            snapshot_every: snapshot_every.max(1),
            shared,
            plan: None,
        })
    }

    /// Recover from an existing data dir: decode the snapshot, replay
    /// the WAL on top, then fold the replayed tail into a fresh
    /// snapshot so the next boot starts from a clean log.
    ///
    /// `dist` must be the metric the snapshot was built with; the
    /// caller maps the returned [`SnapshotMeta`] codes back to it (the
    /// `cned::Database` facade does this).
    pub fn recover(
        dir: &Path,
        dist: &dyn Distance<S>,
        snapshot_every: u64,
    ) -> Result<(Durable<S>, SnapshotMeta), StoreError> {
        let shared = Arc::new(StoreShared {
            dir: dir.to_path_buf(),
            subs: OrderedMutex::new(rank::STORE_SUBS, "StoreShared::subs", Vec::new()),
            files: OrderedMutex::new(rank::STORE_FILES, "StoreShared::files", ()),
        });
        let bytes = std::fs::read(shared.snapshot_path())
            .map_err(|e| StoreError::io("read snapshot", e))?;
        let (meta, mut index, plan) = decode_snapshot_plan::<S>(&bytes)?;
        for op in replay_file::<S>(&shared.wal_path())? {
            match op {
                WalOp::Insert { seq, item } => {
                    let len = index.len() as u64;
                    // Entries the snapshot already covers replay as
                    // no-ops (snapshot-then-crash-before-truncate
                    // leaves an overlap); a gap beyond the index
                    // length means a lost entry.
                    if seq < len {
                        continue;
                    }
                    if seq > len {
                        return Err(StoreError::Corrupt {
                            detail: format!(
                                "wal sequence gap: log holds {seq}, index holds {len} items"
                            ),
                        });
                    }
                    index.insert(item, dist).map_err(|e| StoreError::Corrupt {
                        detail: format!("wal replay insert failed: {e}"),
                    })?;
                }
                WalOp::Delete { index: target } => {
                    let target = usize::try_from(target).map_err(|_| StoreError::Corrupt {
                        detail: "wal delete index exceeds usize".into(),
                    })?;
                    if target >= index.len() {
                        return Err(StoreError::Corrupt {
                            detail: format!(
                                "wal delete index {target} out of range ({} items)",
                                index.len()
                            ),
                        });
                    }
                    // Deletes the snapshot already folded in replay as
                    // no-ops (`Ok(false)`): deletes are idempotent.
                    index.delete(target).map_err(|e| StoreError::Corrupt {
                        detail: format!("wal replay delete failed: {e}"),
                    })?;
                }
            }
        }
        let wal = Wal::open::<S>(&shared.wal_path())?;
        let mut durable = Durable {
            inner: index,
            metric: (meta.metric_code, meta.metric_flag),
            wal,
            snapshot_every: snapshot_every.max(1),
            shared,
            plan,
        };
        // Fold the replayed tail into the snapshot immediately: replay
        // cost stays bounded across repeated restarts.
        durable.snapshot()?;
        Ok((durable, meta))
    }

    /// The wrapped index.
    pub fn index(&self) -> &StoredIndex<S> {
        &self.inner
    }

    /// Metric identity `(code, flag)` persisted in the snapshot.
    pub fn metric(&self) -> (u8, u8) {
        self.metric
    }

    /// WAL entries accumulated since the last snapshot.
    pub fn wal_entries(&self) -> u64 {
        self.wal.entries()
    }

    /// A [`crate::StoreHub`] serving replica registrations from this
    /// store's files.
    pub fn hub(&self) -> crate::StoreHub<S> {
        crate::StoreHub {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The planner-decision blob carried into snapshots, if any.
    pub fn plan(&self) -> Option<&[u8]> {
        self.plan.as_deref()
    }

    /// Set the planner-decision blob persisted with every snapshot
    /// from now on (it survives warm restarts via the snapshot's PLAN
    /// record). Takes effect at the next snapshot.
    pub fn set_plan(&mut self, plan: Option<Vec<u8>>) {
        self.plan = plan;
    }

    /// Write a fresh snapshot of the current index and truncate the
    /// WAL. Called automatically by the threshold policy and on drop;
    /// callable directly for explicit checkpoints.
    pub fn snapshot(&mut self) -> Result<(), StoreError> {
        let bytes = encode_snapshot_with(self.metric, &self.inner.view(), self.plan.as_deref());
        // Install under the files lock so a concurrently registering
        // replica never pairs the old snapshot with the new WAL.
        let _g = self.shared.files.lock();
        write_atomic(&self.shared.snapshot_path(), &bytes)?;
        self.wal.truncate::<S>()
    }

    /// The durable insert pipeline (see module docs).
    pub fn insert(&mut self, item: Vec<S>, dist: &dyn Distance<S>) -> Result<usize, SearchError> {
        // Refuse early for immutable backends: nothing may touch disk.
        if matches!(self.inner, StoredIndex::Laesa(_)) {
            return Err(SearchError::UnsupportedConfig {
                reason: "laesa snapshots are immutable; rebuild or use the sharded backend",
            });
        }
        let seq = self.inner.len() as u64;
        self.wal.append(seq, &item).map_err(SearchError::from)?;
        let index = self.inner.insert(item.clone(), dist)?;
        debug_assert_eq!(
            index as u64, seq,
            "inserts append at the end of the database"
        );
        self.shared.publish(&ReplOp::Insert { seq, item });
        if self.wal.entries() >= self.snapshot_every {
            self.snapshot().map_err(SearchError::from)?;
        }
        Ok(index)
    }

    /// The durable delete pipeline: WAL append + fsync, tombstone the
    /// in-memory index, publish to replicas, threshold snapshot. A
    /// no-op delete (already tombstoned, or out of range) is answered
    /// `Ok(false)` *without* touching disk.
    pub fn delete(&mut self, index: usize) -> Result<bool, SearchError> {
        // An out-of-range delete cannot change anything — refuse it
        // before disk. Repeat deletes of a live-range index do write
        // a WAL entry (the backend's answer is only known after the
        // mutate), which is harmless: delete replay is idempotent.
        if index >= self.inner.len() {
            return Ok(false);
        }
        self.wal
            .append_delete(index as u64)
            .map_err(SearchError::from)?;
        let existed = self.inner.delete(index)?;
        self.shared.publish(&ReplOp::Delete {
            index: index as u64,
        });
        if self.wal.entries() >= self.snapshot_every {
            self.snapshot().map_err(SearchError::from)?;
        }
        Ok(existed)
    }
}

impl<S: WireSymbol> Drop for Durable<S> {
    fn drop(&mut self) {
        // Fold any WAL tail into a final snapshot so the next boot
        // loads without replay. Best-effort: on failure the WAL is
        // intact and recovery replays it instead.
        if self.wal.entries() > 0 {
            let _ = self.snapshot();
        }
    }
}

impl<S: WireSymbol> MetricIndex<S> for Durable<S> {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn backend_name(&self) -> &'static str {
        // Durability is transparent to query semantics; report the
        // wrapped backend.
        self.inner.backend_name()
    }

    fn item(&self, i: usize) -> Option<&[S]> {
        self.inner.item(i)
    }

    fn nn(
        &self,
        query: &[S],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<(Option<Neighbour>, SearchStats), SearchError> {
        self.inner.nn(query, dist, opts)
    }

    fn knn(
        &self,
        query: &[S],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<(Vec<Neighbour>, SearchStats), SearchError> {
        self.inner.knn(query, dist, opts)
    }

    fn range(
        &self,
        query: &[S],
        dist: &dyn Distance<S>,
        opts: &QueryOptions,
    ) -> Result<(Vec<Neighbour>, SearchStats), SearchError> {
        self.inner.range(query, dist, opts)
    }

    fn as_insertable(&mut self) -> Option<&mut dyn InsertableIndex<S>> {
        match self.inner {
            // Keep the typed "immutable backend" answer for LAESA.
            StoredIndex::Laesa(_) => None,
            _ => Some(self),
        }
    }

    fn delete(&mut self, index: usize) -> Result<bool, SearchError> {
        // The durable pipeline, not the raw in-memory tombstone.
        Durable::delete(self, index)
    }

    fn deleted(&self) -> usize {
        self.inner.deleted()
    }

    fn is_deleted(&self, i: usize) -> bool {
        self.inner.is_deleted(i)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        // Expose the wrapped backend, so `Database::save` keeps
        // working on an index handed back by a durable server's
        // shutdown.
        self.inner.as_any()
    }
}

impl<S: WireSymbol> InsertableIndex<S> for Durable<S> {
    fn insert(&mut self, item: Vec<S>, dist: &dyn Distance<S>) -> Result<usize, SearchError> {
        Durable::insert(self, item, dist)
    }
}
