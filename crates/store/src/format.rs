//! On-disk format primitives shared by the snapshot and WAL codecs.
//!
//! Mirrors the discipline of `cned-serve`'s wire codec: versioned
//! headers, length-prefixed records, bounds-checked reads that return
//! typed errors, and no reachable panic on malformed bytes. On top of
//! that, every record carries a CRC-32 so a flipped bit on disk is a
//! *detected* failure rather than a silently wrong index.
//!
//! ## Snapshot file layout
//!
//! ```text
//! [magic "CNEDSNAP"] [SNAP_VERSION u8] [symbol width u8] record…
//! record := [kind u8] [len u32 LE] [body: len bytes] [crc32 u32 LE]
//! ```
//!
//! The CRC covers `kind`, `len` and `body`. The record stream ends
//! with an empty [`kind::END`] record; a file that stops before one
//! decodes to [`StoreError::Truncated`], never to a partial index.
//!
//! ## WAL file layout
//!
//! ```text
//! [magic "CNEDWAL0"] [WAL_VERSION u8] [symbol width u8] entry…
//! entry := [len u32 LE] [seq u64 LE] [item: u32 count + symbols] [crc32 u32 LE]
//! ```
//!
//! `len` counts the `seq + item` bytes. A tail that ends mid-entry is
//! a *torn write* from a crash between `write` and `fsync`: the entry
//! was never acknowledged to any client, so replay drops it silently.
//! A complete entry whose CRC fails is real corruption and is a typed
//! error — replay never guesses.

use cned_search::SearchError;

/// Snapshot file magic (8 bytes).
pub const SNAP_MAGIC: [u8; 8] = *b"CNEDSNAP";
/// WAL file magic (8 bytes).
pub const WAL_MAGIC: [u8; 8] = *b"CNEDWAL0";

/// Snapshot format version. History:
///
/// * v1 — initial format: META / LINEAR / LAESA / SHARD / DELTA /
///   SHARDED_META records, per-record CRC-32, END terminator.
/// * v2 — added the optional [`kind::TOMBSTONES`] (deleted global
///   indices) and [`kind::PLAN`] (query-planner decision) records,
///   both appearing after the index body and before [`kind::END`].
///   v1 files (no tombstones, no plan) still decode.
pub const SNAP_VERSION: u8 = 2;

/// WAL format version. History:
///
/// * v1 — initial format: `[len][seq][item][crc32]` entries,
///   fsync-per-commit, torn tail dropped on replay.
/// * v2 — each entry body starts with an op byte: `1` = insert
///   (`[seq][item]` as before), `2` = delete (`[index u64 LE]`).
///   v1 files (implicit op byte `1`) still replay.
pub const WAL_VERSION: u8 = 2;

/// Largest accepted record/entry body. Snapshot records hold whole
/// shards so the bound is generous, but it still stops a corrupt
/// length prefix from reserving gigabytes.
pub const MAX_RECORD: usize = 256 * 1024 * 1024;

/// Snapshot record kinds. Fingerprinted by `cned-lint`'s schema pass:
/// renumbering an existing kind requires a `SNAP_VERSION` bump and a
/// `--bless`.
pub mod kind {
    /// Global header: metric code + flag, backend tag, total items.
    pub const META: u8 = 1;
    /// Body of a `Backend::Linear` index: the raw item list.
    pub const LINEAR: u8 = 2;
    /// Body of a single-LAESA index: items, pivots, pivot rows.
    pub const LAESA: u8 = 3;
    /// Sharded-index global state: `ShardConfig` + preprocessing count.
    pub const SHARDED_META: u8 = 4;
    /// One indexed shard: base offset + its LAESA body. Repeated.
    pub const SHARD: u8 = 5;
    /// The sharded index's unindexed delta shard: the raw item list.
    pub const DELTA: u8 = 6;
    /// Terminator; empty body. Its presence is the completeness proof.
    pub const END: u8 = 7;
    /// Tombstoned (deleted) global indices: `u64` count + sorted
    /// `u64` indices. Optional (snapshot v2+); absent means none.
    pub const TOMBSTONES: u8 = 8;
    /// The query planner's recorded decision (`cned-plan` byte
    /// codec), replayed verbatim on warm restart so `Backend::Auto`
    /// restores bit-identically without re-sampling. Optional
    /// (snapshot v2+).
    pub const PLAN: u8 = 9;
}

/// Backend tags stored in the META record.
pub mod backend {
    /// `LinearIndex` (exhaustive scan).
    pub const LINEAR: u8 = 1;
    /// Single `Laesa` index.
    pub const LAESA: u8 = 2;
    /// `ShardedIndex` (the serving default).
    pub const SHARDED: u8 = 3;
}

/// Typed decode/IO failure. Everything the codecs can hit on
/// malformed, truncated or version-skewed bytes lands here — decoding
/// never panics (same standard as `cned_serve::wire`).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// Underlying filesystem failure, stringified.
    Io {
        context: &'static str,
        detail: String,
    },
    /// The byte stream ended before a fixed-size field or a promised
    /// record body.
    Truncated { needed: usize, got: usize },
    /// The file does not start with the expected magic.
    BadMagic { expected: [u8; 8] },
    /// The file's format version is not one this build understands.
    BadVersion { expected: u8, got: u8 },
    /// The file was written for a different symbol width.
    BadSymbolWidth { expected: u8, got: u8 },
    /// A record's CRC-32 does not match its bytes.
    Checksum { what: &'static str },
    /// Structurally invalid contents (bad record kind, inconsistent
    /// counts, out-of-range ids).
    Corrupt { detail: String },
    /// Well-formed but unsupported contents (e.g. an unknown metric
    /// code, or saving an index backend the codec has no record for).
    Unsupported { detail: String },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { context, detail } => write!(f, "{context}: {detail}"),
            StoreError::Truncated { needed, got } => {
                write!(f, "file truncated: needed {needed} bytes, got {got}")
            }
            StoreError::BadMagic { expected } => {
                write!(
                    f,
                    "bad magic: not a {} file",
                    String::from_utf8_lossy(expected)
                )
            }
            StoreError::BadVersion { expected, got } => {
                write!(
                    f,
                    "unsupported format version {got} (this build reads {expected})"
                )
            }
            StoreError::BadSymbolWidth { expected, got } => {
                write!(
                    f,
                    "symbol width mismatch: file has {got}-byte symbols, index uses {expected}"
                )
            }
            StoreError::Checksum { what } => write!(f, "checksum mismatch in {what}"),
            StoreError::Corrupt { detail } => write!(f, "corrupt file: {detail}"),
            StoreError::Unsupported { detail } => write!(f, "unsupported: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<StoreError> for SearchError {
    /// Storage failures surface through the search/serving API as the
    /// wire-stable [`SearchError::Persistence`] variant.
    fn from(e: StoreError) -> SearchError {
        SearchError::Persistence {
            reason: e.to_string(),
        }
    }
}

impl StoreError {
    /// Wrap an `std::io::Error` with a static context label.
    pub fn io(context: &'static str, e: std::io::Error) -> StoreError {
        StoreError::Io {
            context,
            detail: e.to_string(),
        }
    }
}

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the same
// checksum gzip and PNG use. Hand-rolled over a const-built table so
// the crate stays std-only.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (IEEE, as used by gzip/PNG).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

/// Streaming CRC-32 state, for checksumming discontiguous parts
/// (record header + body) without concatenating them.
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Crc32 {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Crc32 {
        Crc32(0xFFFF_FFFF)
    }

    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 >> 8) ^ CRC_TABLE[((self.0 ^ u32::from(b)) & 0xFF) as usize];
        }
    }

    pub fn finish(self) -> u32 {
        !self.0
    }
}

/// Bounds-checked little-endian reader over a byte slice; every read
/// returns a typed error instead of panicking. Mirror of the wire
/// codec's `Reader`.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Absolute offset of the next unread byte.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Take exactly `n` bytes or fail typed.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let got = self.remaining();
        if n > got {
            return Err(StoreError::Truncated { needed: n, got });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, StoreError> {
        match *self.take(4)? {
            [a, b, c, d] => Ok(u32::from_le_bytes([a, b, c, d])),
            // take(4) returned exactly 4 bytes; the arm is for the
            // compiler, not for a reachable state.
            _ => Err(StoreError::Truncated { needed: 4, got: 0 }),
        }
    }

    pub fn u64(&mut self) -> Result<u64, StoreError> {
        match *self.take(8)? {
            [a, b, c, d, e, g, h, i] => Ok(u64::from_le_bytes([a, b, c, d, e, g, h, i])),
            _ => Err(StoreError::Truncated { needed: 8, got: 0 }),
        }
    }

    /// A `u64` length/index narrowed to `usize`, rejecting values that
    /// do not fit the platform.
    pub fn usize(&mut self) -> Result<usize, StoreError> {
        usize::try_from(self.u64()?).map_err(|_| StoreError::Corrupt {
            detail: "count exceeds usize".into(),
        })
    }

    pub fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }
}

/// Append helpers used by both encoders.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn reader_is_bounds_checked() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert_eq!(r.u8().unwrap(), 1);
        assert_eq!(r.u32(), Err(StoreError::Truncated { needed: 4, got: 2 }));
        // A failed read consumes nothing.
        assert_eq!(r.take(2).unwrap(), &[2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn usize_rejects_oversized_counts() {
        let mut out = Vec::new();
        put_u64(&mut out, u64::MAX);
        let got = Reader::new(&out).usize();
        if usize::BITS < 64 {
            assert!(matches!(got, Err(StoreError::Corrupt { .. })));
        } else {
            assert_eq!(got.unwrap(), u64::MAX as usize);
        }
    }

    #[test]
    fn store_error_maps_to_persistence() {
        let e: SearchError = StoreError::Checksum { what: "wal entry" }.into();
        assert!(matches!(e, SearchError::Persistence { .. }));
        assert_eq!(e.code(), 10);
    }
}
