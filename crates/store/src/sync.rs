//! Primary→replica catch-up: the [`StoreHub`] that answers replica
//! registrations on the primary, and the chunk codec both sides share.
//!
//! ## Why the hub reads *files*, not the live index
//!
//! [`crate::Durable`]'s insert pipeline makes disk a superset of every
//! acknowledged insert (WAL fsync happens before the in-memory insert
//! and before the ticket resolves). The hub therefore serves sync
//! payloads straight from the snapshot + WAL files — no access to the
//! scheduler-owned index, no pause in serving — and the result is
//! still complete:
//!
//! * the event loop **subscribes the replica first**, then asks for
//!   the payload ([`cned_serve::ReplicaHub`]'s contract);
//! * `Durable` **publishes only after** the durable write;
//! * so every insert is either in the files the hub reads, or arrives
//!   through the subscription (or both — replicas dedupe by sequence
//!   number, so overlap is harmless, and gaps are impossible).
//!
//! The one genuine race — a snapshot *install* (rename + WAL truncate)
//! interleaving with a payload read, which could pair an old snapshot
//! with an already-truncated log — is excluded by the shared `files`
//! lock.

use cned_search::SearchError;
use cned_serve::server::{ReplOp, ReplicaHub};
use cned_serve::wire::{WireSymbol, SYNC_ITEMS, SYNC_SNAPSHOT};
use std::sync::{mpsc, Arc};

use crate::durable::StoreShared;
use crate::format::{put_u32, put_u64, Reader, StoreError};
use crate::snapshot::{read_snapshot_meta, snapshot_has_tombstones};
use crate::wal::{replay_file, WalOp};

/// Target size of one sync chunk (bytes). Well under the 16 MiB wire
/// frame cap, large enough to amortise framing.
pub const SYNC_CHUNK: usize = 4 * 1024 * 1024;

/// The primary-side registration handler: hands the event loop a
/// replica's catch-up payload and its live-insert subscription.
/// Cheap to clone-construct from [`crate::Durable::hub`]; holds only
/// the shared dir + locks.
pub struct StoreHub<S: WireSymbol> {
    pub(crate) shared: Arc<StoreShared<S>>,
}

impl<S: WireSymbol> StoreHub<S> {
    fn payload(&self, have: u64) -> Result<Vec<(u8, Vec<u8>)>, StoreError> {
        // Exclude snapshot installs while we pair the two files.
        let _g = self.shared.files.lock();
        let snap_bytes = std::fs::read(self.shared.snapshot_path())
            .map_err(|e| StoreError::io("read snapshot for sync", e))?;
        let meta = read_snapshot_meta::<S>(&snap_bytes)?;
        let wal_entries = replay_file::<S>(&self.shared.wal_path())?;
        drop(_g);

        let mut chunks = Vec::new();
        // Tail-only catch-up additionally requires a tombstone-free
        // snapshot: a delete folded into the snapshot exists nowhere
        // in the log, so a replica that may have missed it needs the
        // whole snapshot to learn of it.
        if have > 0 && have >= meta.items && !snapshot_has_tombstones::<S>(&snap_bytes)? {
            // The replica's base is at least ours: it only needs the
            // log tail it hasn't applied yet. Deletes ship whole (they
            // are idempotent); inserts the replica already holds are
            // filtered by sequence number.
            let tail: Vec<WalOp<S>> = wal_entries
                .into_iter()
                .filter(|op| match op {
                    WalOp::Insert { seq, .. } => *seq >= have,
                    WalOp::Delete { .. } => true,
                })
                .collect();
            push_item_chunks(&mut chunks, &tail);
        } else {
            // Fresh replica (or one behind our snapshot base): full
            // snapshot transfer, then the whole log tail.
            for c in snap_bytes.chunks(SYNC_CHUNK) {
                chunks.push((SYNC_SNAPSHOT, c.to_vec()));
            }
            push_item_chunks(&mut chunks, &wal_entries);
        }
        Ok(chunks)
    }
}

impl<S: WireSymbol> ReplicaHub<S> for StoreHub<S> {
    fn sync_payload(&self, have: u64) -> Result<Vec<(u8, Vec<u8>)>, SearchError> {
        self.payload(have).map_err(SearchError::from)
    }

    fn subscribe(&self) -> mpsc::Receiver<ReplOp<S>> {
        self.shared.subscribe()
    }
}

// ------------------------------------------------------ item chunk codec

/// `SYNC_ITEMS` record op byte: an insert (`[seq][count][syms]`).
const ITEM_INSERT: u8 = 1;
/// `SYNC_ITEMS` record op byte: a delete (`[index u64]`).
const ITEM_DELETE: u8 = 2;

/// Append WAL ops as `SYNC_ITEMS` chunks of at most [`SYNC_CHUNK`]
/// bytes (record boundaries respected). Each record is
/// `[op][seq][count][syms]` for inserts, `[op][index]` for deletes.
fn push_item_chunks<S: WireSymbol>(chunks: &mut Vec<(u8, Vec<u8>)>, items: &[WalOp<S>]) {
    let mut chunk = Vec::new();
    for op in items {
        match op {
            WalOp::Insert { seq, item } => {
                chunk.push(ITEM_INSERT);
                put_u64(&mut chunk, *seq);
                put_u32(&mut chunk, item.len() as u32);
                for &sym in item {
                    sym.put(&mut chunk);
                }
            }
            WalOp::Delete { index } => {
                chunk.push(ITEM_DELETE);
                put_u64(&mut chunk, *index);
            }
        }
        if chunk.len() >= SYNC_CHUNK {
            chunks.push((SYNC_ITEMS, std::mem::take(&mut chunk)));
        }
    }
    if !chunk.is_empty() {
        chunks.push((SYNC_ITEMS, chunk));
    }
}

/// Decode a `SYNC_ITEMS` chunk back into its op records.
pub fn decode_items<S: WireSymbol>(bytes: &[u8]) -> Result<Vec<WalOp<S>>, StoreError> {
    let mut r = Reader::new(bytes);
    let mut out = Vec::new();
    while r.remaining() > 0 {
        match r.u8()? {
            ITEM_INSERT => {
                let seq = r.u64()?;
                let count = r.u32()? as usize;
                let sym_bytes = r.take(count.saturating_mul(S::WIDTH))?;
                out.push(WalOp::Insert {
                    seq,
                    item: sym_bytes.chunks_exact(S::WIDTH).map(S::get).collect(),
                });
            }
            ITEM_DELETE => out.push(WalOp::Delete { index: r.u64()? }),
            other => {
                return Err(StoreError::Corrupt {
                    detail: format!("unknown sync item op byte {other}"),
                })
            }
        }
    }
    Ok(out)
}

/// What a completed sync stream yields on the replica side.
pub struct SyncOutcome<S: WireSymbol> {
    /// The primary's full snapshot bytes, when one was transferred
    /// (`None` for a tail-only catch-up).
    pub snapshot: Option<Vec<u8>>,
    /// Log-tail ops to apply after (or instead of) the snapshot.
    pub items: Vec<WalOp<S>>,
}

/// Replica-side accumulator for `RESP_SYNC` chunks: feed each chunk in
/// arrival order, then [`SyncAccumulator::finish`] after the `done`
/// chunk.
pub struct SyncAccumulator<S: WireSymbol> {
    snapshot: Vec<u8>,
    saw_snapshot: bool,
    items: Vec<WalOp<S>>,
}

impl<S: WireSymbol> SyncAccumulator<S> {
    #[allow(clippy::new_without_default)]
    pub fn new() -> SyncAccumulator<S> {
        SyncAccumulator {
            snapshot: Vec::new(),
            saw_snapshot: false,
            items: Vec::new(),
        }
    }

    /// Ingest one chunk. Snapshot chunks must all precede item chunks
    /// (the hub emits them that way); anything else is a protocol
    /// violation from the peer.
    pub fn push(&mut self, mode: u8, bytes: &[u8]) -> Result<(), StoreError> {
        match mode {
            SYNC_SNAPSHOT => {
                if !self.items.is_empty() {
                    return Err(StoreError::Corrupt {
                        detail: "snapshot chunk after item chunks in sync stream".into(),
                    });
                }
                self.saw_snapshot = true;
                self.snapshot.extend_from_slice(bytes);
                Ok(())
            }
            SYNC_ITEMS => {
                self.items.extend(decode_items::<S>(bytes)?);
                Ok(())
            }
            other => Err(StoreError::Corrupt {
                detail: format!("unknown sync chunk mode {other}"),
            }),
        }
    }

    pub fn finish(self) -> SyncOutcome<S> {
        SyncOutcome {
            snapshot: self.saw_snapshot.then_some(self.snapshot),
            items: self.items,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_chunks_roundtrip() {
        let items: Vec<WalOp<u32>> = (0..100)
            .map(|i| {
                if i % 5 == 4 {
                    WalOp::Delete { index: i }
                } else {
                    WalOp::Insert {
                        seq: i,
                        item: vec![i as u32; (i % 7) as usize],
                    }
                }
            })
            .collect();
        let mut chunks = Vec::new();
        push_item_chunks(&mut chunks, &items);
        let mut acc = SyncAccumulator::<u32>::new();
        for (mode, bytes) in &chunks {
            acc.push(*mode, bytes).unwrap();
        }
        let out = acc.finish();
        assert!(out.snapshot.is_none());
        assert_eq!(out.items, items);
    }

    #[test]
    fn truncated_item_chunk_fails_typed() {
        let mut chunks = Vec::new();
        push_item_chunks(
            &mut chunks,
            &[WalOp::Insert {
                seq: 4,
                item: vec![1u32, 2, 3],
            }],
        );
        let bytes = &chunks[0].1;
        let got = decode_items::<u32>(&bytes[..bytes.len() - 1]);
        assert!(matches!(got, Err(StoreError::Truncated { .. })));
    }

    #[test]
    fn snapshot_after_items_is_rejected() {
        let mut acc = SyncAccumulator::<u32>::new();
        let mut item_chunk = vec![ITEM_INSERT];
        put_u64(&mut item_chunk, 0);
        put_u32(&mut item_chunk, 0);
        acc.push(SYNC_ITEMS, &item_chunk).unwrap();
        assert!(matches!(
            acc.push(SYNC_SNAPSHOT, b"x"),
            Err(StoreError::Corrupt { .. })
        ));
    }
}
