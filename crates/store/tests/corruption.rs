//! Corruption resilience: a snapshot or WAL file that has been
//! truncated, bit-flipped, or written by a different format version
//! must decode to a **typed** [`StoreError`] (or, for a WAL tail, a
//! clean prefix) — never a panic, never a silently wrong index.
//!
//! These are the on-disk analogue of the wire fuzz tests: the decoder
//! trusts nothing it reads.

use cned_search::linear::LinearIndex;
use cned_store::wal::{replay, Wal, WalOp};
use cned_store::{
    decode_snapshot, encode_snapshot, read_snapshot_meta, IndexView, StoreError, SNAP_VERSION,
    WAL_VERSION,
};
use proptest::prelude::*;

fn word() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(97u8..=122, 0..=10)
}

fn snapshot_bytes(db: Vec<Vec<u8>>) -> Vec<u8> {
    let index = LinearIndex::new(db);
    let view = IndexView::of(&index).expect("linear is persistable");
    encode_snapshot((1, 0), &view)
}

/// Build real WAL bytes by driving the append path against a temp
/// file, then reading the file back.
fn wal_bytes(items: &[Vec<u8>]) -> Vec<u8> {
    let dir = std::env::temp_dir().join(format!(
        "cned-store-corruption-{}-{:p}",
        std::process::id(),
        items.as_ptr()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wal.cned");
    {
        let mut wal = Wal::open::<u8>(&path).unwrap();
        for (seq, item) in items.iter().enumerate() {
            wal.append::<u8>(seq as u64, item).unwrap();
        }
    }
    let bytes = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn truncated_snapshot_is_a_typed_error(
        db in proptest::collection::vec(word(), 1..=12),
        cut in 0.0f64..1.0,
    ) {
        let bytes = snapshot_bytes(db);
        // Any strict prefix loses at least the END record.
        let keep = ((bytes.len() as f64) * cut) as usize;
        prop_assert!(decode_snapshot::<u8>(&bytes[..keep]).is_err());
    }

    #[test]
    fn bit_flipped_snapshot_is_a_typed_error(
        db in proptest::collection::vec(word(), 1..=12),
        pos in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut bytes = snapshot_bytes(db);
        let at = ((bytes.len() as f64) * pos) as usize % bytes.len();
        bytes[at] ^= 1 << bit;
        // CRC-32 catches every single-bit flip in a record; flips in
        // the header hit the magic/version/width checks; flips in a
        // length field derail framing. All are typed errors.
        prop_assert!(decode_snapshot::<u8>(&bytes).is_err());
    }

    #[test]
    fn version_skewed_snapshot_reports_bad_version(
        db in proptest::collection::vec(word(), 1..=8),
        skew in 1u8..=255,
    ) {
        let mut bytes = snapshot_bytes(db);
        // Version 1 is still decodable (back-compat), so skip skews
        // that land on it.
        if SNAP_VERSION.wrapping_add(skew) != 1 {
            bytes[8] = SNAP_VERSION.wrapping_add(skew);
            prop_assert!(matches!(
                decode_snapshot::<u8>(&bytes),
                Err(StoreError::BadVersion { expected, .. }) if expected == SNAP_VERSION
            ));
            prop_assert!(read_snapshot_meta::<u8>(&bytes).is_err());
        }
    }

    #[test]
    fn torn_wal_tail_drops_cleanly_and_never_panics(
        items in proptest::collection::vec(word(), 1..=10),
        cut in 0.0f64..1.0,
    ) {
        let bytes = wal_bytes(&items);
        let full = replay::<u8>(&bytes).unwrap();
        prop_assert_eq!(full.len(), items.len());
        // A crash can stop the file at any byte ≥ the header. The
        // replayed entries must be exactly a prefix of what was
        // appended — a torn final entry vanishes, never misparses.
        let header = 10;
        let keep = header + (((bytes.len() - header) as f64) * cut) as usize;
        let replayed = replay::<u8>(&bytes[..keep]).unwrap();
        prop_assert!(replayed.len() <= items.len());
        for (i, op) in replayed.iter().enumerate() {
            match op {
                WalOp::Insert { seq, item } => {
                    prop_assert_eq!(*seq, i as u64);
                    prop_assert_eq!(item, &items[i]);
                }
                WalOp::Delete { .. } => prop_assert!(false, "append-only log replayed a delete"),
            }
        }
    }

    #[test]
    fn bit_flipped_wal_never_yields_wrong_entries(
        items in proptest::collection::vec(word(), 1..=10),
        pos in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut bytes = wal_bytes(&items);
        let at = ((bytes.len() as f64) * pos) as usize % bytes.len();
        bytes[at] ^= 1 << bit;
        // Three acceptable outcomes: a typed error (header or CRC), or
        // a *prefix* of the real entries (a corrupted length makes the
        // tail look torn). Never a panic, never an altered entry.
        if let Ok(replayed) = replay::<u8>(&bytes) {
            prop_assert!(replayed.len() < items.len());
            for (i, op) in replayed.iter().enumerate() {
                match op {
                    WalOp::Insert { seq, item } => {
                        prop_assert_eq!(*seq, i as u64);
                        prop_assert_eq!(item, &items[i]);
                    }
                    WalOp::Delete { .. } => {
                        prop_assert!(false, "bit flip surfaced as a delete entry")
                    }
                }
            }
        }
    }

    #[test]
    fn version_skewed_wal_reports_bad_version(
        items in proptest::collection::vec(word(), 1..=6),
        skew in 1u8..=255,
    ) {
        let mut bytes = wal_bytes(&items);
        // Version 1 is still decodable (back-compat), so skip skews
        // that land on it.
        if WAL_VERSION.wrapping_add(skew) != 1 {
            bytes[8] = WAL_VERSION.wrapping_add(skew);
            prop_assert!(matches!(
                replay::<u8>(&bytes),
                Err(StoreError::BadVersion { expected, .. }) if expected == WAL_VERSION
            ));
        }
    }
}
