//! Snapshot round-trip fidelity: `encode_snapshot` → `decode_snapshot`
//! must hand back an index that answers **bit-identically** — same
//! neighbours, same distances (to the bit), same `SearchStats` — for
//! nn, k-NN and range queries, across every persistable backend and a
//! spread of metrics (`d_E`, `d_YB`, `d_C,h`).
//!
//! The decoded index never recomputes anything (no pivot selection, no
//! distance evaluations at load time), so any drift here means the
//! codec dropped or reordered state.

use cned_core::contextual::heuristic::ContextualHeuristic;
use cned_core::levenshtein::Levenshtein;
use cned_core::metric::Distance;
use cned_core::normalized::yujian_bo::YujianBo;
use cned_search::laesa::Laesa;
use cned_search::linear::LinearIndex;
use cned_search::pivots::select_pivots_max_sum;
use cned_search::{InsertableIndex, MetricIndex, QueryOptions};
use cned_serve::{ShardConfig, ShardedIndex};
use cned_store::{decode_snapshot, encode_snapshot, IndexView, StoredIndex};
use proptest::prelude::*;

fn word() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(97u8..=99, 1..=8)
}

fn database() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(word(), 3..=24)
}

fn metrics() -> Vec<(&'static str, Box<dyn Distance<u8>>)> {
    vec![
        ("d_E", Box::new(Levenshtein)),
        ("d_YB", Box::new(YujianBo)),
        ("d_C,h", Box::new(ContextualHeuristic)),
    ]
}

/// Compare every query surface bit-for-bit between two indexes.
fn assert_bit_identical(
    a: &dyn MetricIndex<u8>,
    b: &dyn MetricIndex<u8>,
    dist: &dyn Distance<u8>,
    queries: &[Vec<u8>],
) {
    assert_eq!(a.len(), b.len());
    for q in queries {
        let nn_a = a.nn(q, dist, &QueryOptions::new()).unwrap();
        let nn_b = b.nn(q, dist, &QueryOptions::new()).unwrap();
        assert_eq!(nn_a, nn_b, "nn({q:?})");
        let opts = QueryOptions::new().k(3);
        let knn_a = a.knn(q, dist, &opts).unwrap();
        let knn_b = b.knn(q, dist, &opts).unwrap();
        assert_eq!(knn_a, knn_b, "knn({q:?})");
        let opts = QueryOptions::new().radius(0.75);
        let range_a = a.range(q, dist, &opts).unwrap();
        let range_b = b.range(q, dist, &opts).unwrap();
        assert_eq!(range_a, range_b, "range({q:?})");
    }
}

fn roundtrip(index: &dyn MetricIndex<u8>) -> StoredIndex<u8> {
    let view = IndexView::of(index).expect("persistable backend");
    let bytes = encode_snapshot((1, 0), &view);
    let (meta, decoded) = decode_snapshot::<u8>(&bytes).expect("own encoding decodes");
    assert_eq!(meta.items as usize, index.len());
    decoded
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn linear_snapshot_answers_bit_identically(
        db in database(),
        queries in proptest::collection::vec(word(), 1..=4),
    ) {
        let index = LinearIndex::new(db);
        let decoded = roundtrip(&index);
        for (name, dist) in metrics() {
            let _ = name;
            assert_bit_identical(&index, &decoded, &*dist, &queries);
        }
    }

    #[test]
    fn laesa_snapshot_answers_bit_identically(
        db in database(),
        queries in proptest::collection::vec(word(), 1..=4),
        n_pivots in 1usize..=4,
    ) {
        // Pivot tables are metric-specific: build (and compare) per
        // metric, so the persisted rows are the ones being exercised.
        for (name, dist) in metrics() {
            let _ = name;
            let pivots = select_pivots_max_sum(&db, n_pivots.min(db.len()), 0, &*dist);
            let index = Laesa::try_build(db.clone(), pivots, &*dist).unwrap();
            let decoded = roundtrip(&index);
            assert_bit_identical(&index, &decoded, &*dist, &queries);
        }
    }

    #[test]
    fn sharded_snapshot_answers_bit_identically(
        db in database(),
        queries in proptest::collection::vec(word(), 1..=4),
        extra in proptest::collection::vec(word(), 0..=3),
    ) {
        let config = ShardConfig {
            shards: 2,
            pivots_per_shard: 2,
            ..ShardConfig::default()
        };
        for (name, dist) in metrics() {
            let _ = name;
            let mut index = ShardedIndex::try_build(db.clone(), config, &*dist).unwrap();
            // Push items into the delta shard so its persistence (and
            // the compaction counters around it) is covered too.
            for item in &extra {
                InsertableIndex::insert(&mut index, item.clone(), &*dist).unwrap();
            }
            let decoded = roundtrip(&index);
            assert_bit_identical(&index, &decoded, &*dist, &queries);
        }
    }
}
