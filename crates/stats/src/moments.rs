//! Moments of distance distributions and the intrinsic dimensionality
//! (Table 1).

use cned_core::metric::Distance;
use cned_core::Symbol;

/// Streaming mean/variance via Welford's algorithm — numerically
/// stable over the millions of pairwise distances the experiments
/// produce.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Moments {
    /// Empty accumulator.
    pub fn new() -> Moments {
        Moments::default()
    }

    /// Add one sample.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merge another accumulator (parallel reduction).
    pub fn merge(&mut self, other: &Moments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Intrinsic dimensionality `ρ = µ²/(2σ²)` (Chávez et al.).
    /// `None` when the variance is zero.
    pub fn intrinsic_dimensionality(&self) -> Option<f64> {
        let v = self.variance();
        (v > 0.0).then(|| self.mean * self.mean / (2.0 * v))
    }

    /// The paper's printed variant `µ²/σ²` (exactly `2ρ`).
    pub fn intrinsic_dimensionality_paper(&self) -> Option<f64> {
        self.intrinsic_dimensionality().map(|r| 2.0 * r)
    }
}

/// All pairwise distances `d(x_i, x_j)` for `i < j`.
///
/// `O(n²/2)` distance computations; the experiment drivers use their
/// own sharded version — this helper serves tests, examples, and small
/// runs.
pub fn pairwise_distances<S: Symbol, D: Distance<S> + ?Sized>(
    sample: &[Vec<S>],
    dist: &D,
) -> Vec<f64> {
    let n = sample.len();
    let mut out = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            out.push(dist.distance(&sample[i], &sample[j]));
        }
    }
    out
}

/// Intrinsic dimensionality of a sample under a distance: moments of
/// all pairwise distances, then `ρ = µ²/(2σ²)`.
pub fn intrinsic_dimensionality<S: Symbol, D: Distance<S> + ?Sized>(
    sample: &[Vec<S>],
    dist: &D,
) -> Option<f64> {
    let mut m = Moments::new();
    for d in pairwise_distances(sample, dist) {
        m.add(d);
    }
    m.intrinsic_dimensionality()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cned_core::levenshtein::Levenshtein;

    #[test]
    fn welford_matches_naive() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0, -3.0];
        let mut m = Moments::new();
        for &x in &xs {
            m.add(x);
        }
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((m.mean() - mean).abs() < 1e-12);
        assert!((m.variance() - var).abs() < 1e-12);
        assert_eq!(m.count(), 6);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Moments::new();
        for &x in &xs {
            all.add(x);
        }
        let mut a = Moments::new();
        let mut b = Moments::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
        assert_eq!(a.count(), all.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Moments::new();
        a.add(3.0);
        a.add(5.0);
        let before = a;
        a.merge(&Moments::new());
        assert_eq!(a, before);
        let mut empty = Moments::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn constant_sample_has_no_dimensionality() {
        let mut m = Moments::new();
        for _ in 0..10 {
            m.add(4.2);
        }
        assert!(m.variance() < 1e-20);
        assert_eq!(m.intrinsic_dimensionality(), None);
    }

    #[test]
    fn paper_variant_is_twice_chavez() {
        let mut m = Moments::new();
        for x in [1.0, 2.0, 3.0] {
            m.add(x);
        }
        let rho = m.intrinsic_dimensionality().unwrap();
        let paper = m.intrinsic_dimensionality_paper().unwrap();
        assert!((paper - 2.0 * rho).abs() < 1e-12);
    }

    #[test]
    fn pairwise_count_is_n_choose_2() {
        let sample: Vec<Vec<u8>> = [&b"aa"[..], b"ab", b"ba", b"bb"]
            .iter()
            .map(|w| w.to_vec())
            .collect();
        let d = pairwise_distances(&sample, &Levenshtein);
        assert_eq!(d.len(), 6);
    }

    #[test]
    fn concentrated_space_has_higher_rho() {
        // Strings of identical length and near-identical pairwise
        // distance → high ρ; mixed lengths → broader spectrum → lower ρ.
        let concentrated: Vec<Vec<u8>> = [&b"aaaa"[..], b"bbbb", b"cccc", b"dddd", b"eeee"]
            .iter()
            .map(|w| w.to_vec())
            .collect();
        let spread: Vec<Vec<u8>> = [&b"a"[..], b"bbbb", b"cc", b"ddddddd", b"eee"]
            .iter()
            .map(|w| w.to_vec())
            .collect();
        let r_conc = intrinsic_dimensionality(&concentrated, &Levenshtein);
        let r_spread = intrinsic_dimensionality(&spread, &Levenshtein).unwrap();
        // All pairwise distances in `concentrated` are exactly 4 → no
        // variance at all.
        assert_eq!(r_conc, None);
        assert!(r_spread > 0.0);
    }
}
