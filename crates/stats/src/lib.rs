//! # cned-stats
//!
//! Distance-distribution statistics: histograms (Figures 1–2) and the
//! intrinsic dimensionality of a metric space (Table 1).
//!
//! Chávez et al. ("Searching in metric spaces", 2001 — the paper's
//! ref \[1\]) characterise how hard a metric space is to search by the
//! concentration of its distance histogram, summarised as the
//! *intrinsic dimensionality* `ρ = µ² / (2σ²)` where `µ, σ²` are the
//! mean and variance of pairwise distances. Concentrated histograms
//! (large ρ) mean triangle-inequality lower bounds rarely eliminate
//! anything.
//!
//! Note the paper's text prints the definition as `µ²/σ²`; we compute
//! the Chávez value `µ²/(2σ²)` as primary and expose both (they differ
//! by an exact factor 2, so none of Table 1's *orderings* change).

// No unsafe here, enforced at compile time (and by cned-lint).
#![forbid(unsafe_code)]

pub mod histogram;
pub mod moments;

pub use histogram::Histogram;
pub use moments::{intrinsic_dimensionality, pairwise_distances, Moments};
