//! Fixed-bin histograms over `f64` samples (Figures 1–2).

/// A histogram with uniform bins over `[lo, hi)`; samples outside the
/// range are clamped into the first/last bin so mass is never lost
/// (matching how the paper's plots saturate at the axis ends).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Create a histogram with `bins` uniform bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "empty range");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Add one sample.
    pub fn add(&mut self, v: f64) {
        let bins = self.counts.len();
        let t = (v - self.lo) / (self.hi - self.lo);
        let idx = ((t * bins as f64).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Add many samples.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, it: I) {
        for v in it {
            self.add(v);
        }
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Centre of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// `(bin_center, count)` rows — the gnuplot-ready series of
    /// Figures 1–2.
    pub fn rows(&self) -> Vec<(f64, u64)> {
        (0..self.counts.len())
            .map(|i| (self.bin_center(i), self.counts[i]))
            .collect()
    }

    /// Index of the fullest bin (the histogram mode).
    pub fn mode_bin(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// A crude spread measure: number of bins holding at least
    /// `frac` of the modal count. Concentrated histograms (high
    /// intrinsic dimension) have few such bins.
    pub fn bins_above_fraction_of_mode(&self, frac: f64) -> usize {
        let peak = self.counts[self.mode_bin()] as f64;
        self.counts
            .iter()
            .filter(|&&c| c as f64 >= frac * peak)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_fill_correctly() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.extend([0.1, 0.3, 0.6, 0.9, 0.35]);
        assert_eq!(h.counts(), &[1, 2, 1, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-5.0);
        h.add(7.0);
        h.add(1.0); // hi boundary lands in the last bin
        assert_eq!(h.counts(), &[1, 2]);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(0.0, 2.0, 4);
        assert_eq!(h.bin_center(0), 0.25);
        assert_eq!(h.bin_center(3), 1.75);
    }

    #[test]
    fn rows_align_with_counts() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.extend([0.2, 0.7, 0.8]);
        let rows = h.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], (0.25, 1));
        assert_eq!(rows[1], (0.75, 2));
    }

    #[test]
    fn mode_and_spread() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        // Concentrated mass near 0.55.
        for _ in 0..100 {
            h.add(0.55);
        }
        h.add(0.1);
        assert_eq!(h.mode_bin(), 5);
        assert_eq!(h.bins_above_fraction_of_mode(0.5), 1);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        Histogram::new(1.0, 1.0, 4);
    }
}
