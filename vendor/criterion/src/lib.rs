//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API this workspace's
//! benches use: [`Criterion::benchmark_group`], group configuration
//! (`sample_size`, `warm_up_time`, `measurement_time`),
//! `bench_function` / `bench_with_input`, [`Bencher::iter`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark warms up for the configured
//! warm-up time, sizes an inner batch so one sample takes roughly
//! `measurement_time / sample_size`, then records `sample_size`
//! samples and reports the **median ns/iter**. Results are printed to
//! stdout and appended to `BENCH_<target>.json` at the workspace root
//! (upstream criterion writes `target/criterion/`; a flat JSON file
//! keeps the perf trajectory diffable in-repo).

use std::marker::PhantomData;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement marker types (subset: wall-clock only).
pub mod measurement {
    /// Wall-clock time measurement (the default and only option).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// One finished benchmark measurement.
#[derive(Debug, Clone)]
pub struct Record {
    /// Benchmark group name.
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Number of samples taken.
    pub samples: usize,
}

static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(500),
            _lifetime: PhantomData,
        }
    }

    /// Top-level bench outside any group (kept for API parity).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let mut group = self.benchmark_group("_");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Identifier of a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion's conventional display form.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}
impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    _lifetime: PhantomData<(&'a mut Criterion, M)>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total measurement budget across samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut bencher);
        self.record(id, bencher);
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group (prints nothing extra; results stream as they
    /// complete).
    pub fn finish(self) {}

    fn record(&self, id: BenchmarkId, bencher: Bencher) {
        let Some((median_ns, mean_ns, iters, samples)) = bencher.result else {
            return;
        };
        println!(
            "{:<60} median {:>12.1} ns/iter ({} samples x {} iters)",
            format!("{}/{}", self.name, id.id),
            median_ns,
            samples,
            iters
        );
        RECORDS.lock().expect("bench record lock").push(Record {
            group: self.name.clone(),
            id: id.id,
            median_ns,
            mean_ns,
            iters_per_sample: iters,
            samples,
        });
    }
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the
/// routine to measure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    /// (median ns/iter, mean ns/iter, iters per sample, samples)
    result: Option<(f64, f64, u64, usize)>,
}

impl Bencher {
    /// Measure `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, also estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;

        // Size one sample at measurement / sample_size.
        let sample_budget_ns = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let iters = ((sample_budget_ns / per_iter.max(1.0)).ceil() as u64).max(1);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(f64::total_cmp);
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        self.result = Some((median, mean, iters, samples_ns.len()));
    }
}

/// Write all recorded results as JSON to
/// `<workspace-root>/BENCH_<target>.json`. Called by
/// [`criterion_main!`]; `bench_manifest_dir` is the benching crate's
/// manifest directory (`crates/bench`), from which the workspace root
/// is two levels up.
pub fn write_report(target: &str, bench_manifest_dir: &str) {
    let records = RECORDS.lock().expect("bench record lock");
    let root = std::path::Path::new(bench_manifest_dir)
        .ancestors()
        .nth(2)
        .unwrap_or_else(|| std::path::Path::new("."));
    let path = root.join(format!("BENCH_{target}.json"));
    let mut out = String::from("{\n  \"target\": ");
    push_json_str(&mut out, target);
    out.push_str(",\n  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    {\"group\": ");
        push_json_str(&mut out, &r.group);
        out.push_str(", \"id\": ");
        push_json_str(&mut out, &r.id);
        out.push_str(&format!(
            ", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"iters_per_sample\": {}, \"samples\": {}}}",
            r.median_ns, r.mean_ns, r.iters_per_sample, r.samples
        ));
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("bench report written to {}", path.display());
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Define a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the given groups, then writing the report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_report(env!("CARGO_CRATE_NAME"), env!("CARGO_MANIFEST_DIR"));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_produces_sane_numbers() {
        let mut b = Bencher {
            warm_up: Duration::from_millis(5),
            measurement: Duration::from_millis(20),
            sample_size: 5,
            result: None,
        };
        b.iter(|| black_box(41u64) + 1);
        let (median, mean, iters, samples) = b.result.expect("result recorded");
        assert!(median > 0.0 && mean > 0.0);
        assert!(iters >= 1);
        assert_eq!(samples, 5);
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("d_E", 64).id, "d_E/64");
        assert_eq!(BenchmarkId::from_parameter(3).id, "3");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\n");
        assert_eq!(s, "\"a\\\"b\\\\c\\u000a\"");
    }
}
