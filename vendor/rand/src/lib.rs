//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.9 API this workspace uses:
//! [`Rng::random`], [`Rng::random_range`], [`Rng::random_bool`],
//! [`rngs::StdRng`] and [`SeedableRng::seed_from_u64`]. The generator
//! is xoshiro256++ (public-domain construction by Blackman & Vigna)
//! seeded through SplitMix64 — deterministic per seed, statistically
//! strong, **not** cryptographic, and not stream-compatible with
//! upstream `StdRng`. Nothing in this repository depends on the exact
//! stream, only on per-seed determinism.

use core::ops::{Range, RangeInclusive};

/// Seedable generators (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, expanding it with
    /// SplitMix64 as recommended by the xoshiro authors.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A source of randomness plus the derived sampling helpers.
pub trait Rng {
    /// Next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T` (see [`Random`]).
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// A uniform sample from `range`; panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

/// Types with a canonical "uniform over the whole domain" sample.
pub trait Random {
    /// Draw one sample from `rng`.
    fn random<R: Rng>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random<R: Rng>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: Rng>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for bool {
    fn random<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: Rng>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a uniform sample can be drawn from.
pub trait SampleRange<T> {
    /// Draw one sample; panics if the range is empty.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        lo + f64::random(rng) * (hi - lo)
    }
}

/// Named generators (subset: only [`rngs::StdRng`]).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, per the xoshiro reference code.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3u8..9);
            assert!((3..9).contains(&v));
            let w = rng.random_range(0usize..=5);
            assert!(w <= 5);
            let f = rng.random_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn full_width_ranges_are_reachable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
