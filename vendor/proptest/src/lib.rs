//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the proptest 1.x API this workspace uses:
//! the [`proptest!`] test macro, `prop_assert!`/`prop_assert_eq!`,
//! `prop_oneof!`, [`strategy::Just`], range and tuple strategies,
//! `prop_map`/`prop_flat_map`, [`collection::vec`],
//! [`bool::weighted`] and [`test_runner::ProptestConfig`].
//!
//! Differences from upstream, by design:
//! * **no shrinking** — a failure reports the case index and the
//!   per-test seed, which reproduce the inputs deterministically;
//! * the default case count is 64 (upstream: 256), overridable with
//!   the `PROPTEST_CASES` environment variable, because the CI box is
//!   single-core and some oracles here are exponential.

pub mod strategy;

/// Test-runner configuration.
pub mod test_runner {
    /// The RNG driving value generation.
    pub type TestRng = rand::rngs::StdRng;

    /// Subset of proptest's runner configuration: just the case count.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// Build the deterministic RNG for one property test.
    pub fn new_rng(seed: u64) -> TestRng {
        <TestRng as rand::SeedableRng>::seed_from_u64(seed)
    }

    /// Deterministic per-test seed: FNV-1a of the test's name, XORed
    /// with `PROPTEST_SEED` when set (for exploring other streams).
    pub fn seed_for(test_name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let extra = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0u64);
        h ^ extra
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Acceptable size specifications for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `elem` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy producing `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted { p }
    }

    /// See [`weighted`].
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted {
        p: f64,
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.random_bool(self.p)
        }
    }
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::core::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(::std::format!(
                "{}: `{:?}` == `{:?}`",
                ::std::format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                l,
                r
            ));
        }
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(::std::boxed::Box::new($strategy) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...)` body
/// runs `cases` times over deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let seed = $crate::test_runner::seed_for(::core::stringify!($name));
            let mut rng = $crate::test_runner::new_rng(seed);
            $(let $arg = $strategy;)*
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut rng);)*
                let outcome: ::core::result::Result<(), ::std::string::String> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(message) = outcome {
                    ::core::panic!(
                        "property `{}` failed at case {}/{} (seed {seed:#x}): {}",
                        ::core::stringify!($name),
                        case + 1,
                        config.cases,
                        message
                    );
                }
            }
        }
    )*};
}
