//! Value-generation strategies (no shrinking — see the crate docs).

use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};
use rand::Rng;

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` derives
    /// from it.
    fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;
    fn generate(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A uniform union over `options`; panics if empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.random_range(0..self.options.len());
        self.options[pick].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::new_rng;

    #[test]
    fn ranges_tuples_and_combinators_compose() {
        let mut rng = new_rng(1);
        let strat = (1usize..=4, 0u8..3)
            .prop_flat_map(|(n, b)| crate::collection::vec(Just(b), n).prop_map(|v| (v.len(), v)));
        for _ in 0..100 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(n, v.len());
            assert!((1..=4).contains(&n));
            assert!(v.iter().all(|&b| b < 3));
        }
    }

    #[test]
    fn union_picks_every_arm() {
        let mut rng = new_rng(2);
        let strat = crate::prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
