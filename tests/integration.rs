//! Cross-crate integration tests: exercise the full pipelines a user
//! of the `cned` facade would run, spanning datasets → distances →
//! search → stats → classification.

use cned::classify::eval::evaluate;
use cned::classify::nn::NnClassifier;
use cned::core::contextual::exact::{contextual_distance, Contextual};
use cned::core::contextual::heuristic::{contextual_heuristic, ContextualHeuristic};
use cned::core::levenshtein::Levenshtein;
use cned::core::metric::{check_metric_axioms, DistanceKind};
use cned::core::normalized::yujian_bo::YujianBo;
use cned::datasets::dictionary::spanish_dictionary;
use cned::datasets::digits::generate_digits;
use cned::datasets::dna::dna_sequences;
use cned::datasets::perturb::{gen_queries, ASCII_LOWER};
use cned::search::aesa::Aesa;
use cned::search::laesa::Laesa;
use cned::search::pivots::select_pivots_max_sum;
use cned::search::{LinearIndex, MetricIndex, QueryOptions};
use cned::stats::{Histogram, Moments};

/// The contextual distance passes a full metric-axiom sweep on real
/// dictionary words (identity, symmetry, triangle over all triples).
#[test]
fn contextual_is_a_metric_on_dictionary_words() {
    let words = spanish_dictionary(18, 3);
    assert_eq!(check_metric_axioms(&Contextual, &words), None);
}

/// Same sweep on DNA fragments and digit chains — different alphabets
/// and length regimes.
#[test]
fn contextual_is_a_metric_on_dna_fragments() {
    // Short fragments keep the O(n^3) triple sweep fast.
    let frags: Vec<Vec<u8>> = dna_sequences(60, 5)
        .into_iter()
        .map(|g| g[..12.min(g.len())].to_vec())
        .take(14)
        .collect();
    assert_eq!(check_metric_axioms(&Contextual, &frags), None);
}

#[test]
fn yujian_bo_is_a_metric_on_digit_chain_prefixes() {
    let chains: Vec<Vec<u8>> = generate_digits(2, 9)
        .into_iter()
        .map(|s| s.chain[..20.min(s.chain.len())].to_vec())
        .take(12)
        .collect();
    assert_eq!(check_metric_axioms(&YujianBo, &chains), None);
}

/// LAESA over the contextual (exact) metric returns exactly the
/// linear-scan nearest neighbour on dictionary data.
#[test]
fn laesa_exactness_for_contextual_metric_on_dictionary() {
    let dict = spanish_dictionary(250, 11);
    let queries = gen_queries(&dict, 40, 2, ASCII_LOWER, 13);
    let pivots = select_pivots_max_sum(&dict, 16, 0, &Contextual);
    let index = Laesa::try_build(dict.clone(), pivots, &Contextual).unwrap();
    let oracle = LinearIndex::new(dict.clone());
    let opts = QueryOptions::new();
    for q in &queries {
        let (lin, _) = oracle.nn(q, &Contextual, &opts).expect("non-empty");
        let (nn, stats) = MetricIndex::nn(&index, q, &Contextual, &opts).expect("non-empty");
        let (lin, nn) = (lin.unwrap(), nn.unwrap());
        assert!((nn.distance - lin.distance).abs() < 1e-9, "query {q:?}");
        assert!(stats.distance_computations <= dict.len() as u64);
    }
}

/// AESA and LAESA agree with each other and with linear scan, and
/// AESA needs no more query-time computations than LAESA overall.
#[test]
fn aesa_laesa_linear_concordance() {
    let dict = spanish_dictionary(150, 17);
    let queries = gen_queries(&dict, 25, 2, ASCII_LOWER, 19);
    let aesa = Aesa::build(dict.clone(), &Levenshtein);
    let pivots = select_pivots_max_sum(&dict, 12, 0, &Levenshtein);
    let laesa = Laesa::try_build(dict.clone(), pivots, &Levenshtein).unwrap();
    let oracle = LinearIndex::new(dict.clone());
    let opts = QueryOptions::new();
    let (mut ca, mut cl) = (0u64, 0u64);
    for q in &queries {
        let (lin, _) = oracle.nn(q, &Levenshtein, &opts).expect("non-empty");
        let (na, sa) = MetricIndex::nn(&aesa, q, &Levenshtein, &opts).expect("non-empty");
        let (nl, sl) = MetricIndex::nn(&laesa, q, &Levenshtein, &opts).expect("non-empty");
        let (lin, na, nl) = (lin.unwrap(), na.unwrap(), nl.unwrap());
        assert_eq!(na.distance, lin.distance);
        assert_eq!(nl.distance, lin.distance);
        ca += sa.distance_computations;
        cl += sl.distance_computations;
    }
    assert!(ca <= cl, "AESA ({ca}) should not exceed LAESA ({cl})");
}

/// End-to-end digit classification beats chance by a wide margin with
/// every distance in the Table 2 panel.
#[test]
fn digit_classification_beats_chance_for_all_distances() {
    let train_raw = generate_digits(6, 21);
    let test_raw = generate_digits(6, 22);
    let training: Vec<Vec<u8>> = train_raw.iter().map(|s| s.chain.clone()).collect();
    let labels: Vec<u8> = train_raw.iter().map(|s| s.label).collect();
    let test: Vec<(Vec<u8>, u8)> = test_raw
        .iter()
        .map(|s| (s.chain.clone(), s.label))
        .collect();

    for kind in DistanceKind::TABLE2_PANEL {
        let dist = kind.build::<u8>();
        let clf = NnClassifier::new(Box::new(LinearIndex::new(training.clone())), labels.clone())
            .expect("labelled training set");
        let (cm, _) = evaluate(&clf, &test, &dist, 10).expect("well-formed classifier");
        // Chance is 90% error; anything competent lands far below.
        assert!(
            cm.error_rate_percent() < 40.0,
            "{} error {}%",
            kind.label(),
            cm.error_rate_percent()
        );
    }
}

/// The headline heuristic contract on every dataset: d_C <= d_C,h,
/// equality in most cases (the paper's 90% figure, loosely checked).
#[test]
fn heuristic_contract_across_datasets() {
    let mut all_pairs = 0usize;
    let mut agreements = 0usize;
    let dict = spanish_dictionary(40, 23);
    let digits: Vec<Vec<u8>> = generate_digits(1, 23)
        .into_iter()
        .map(|s| s.chain[..30.min(s.chain.len())].to_vec())
        .collect();
    let dna: Vec<Vec<u8>> = dna_sequences(10, 23)
        .into_iter()
        .map(|g| g[..25.min(g.len())].to_vec())
        .collect();
    for sample in [dict, digits, dna] {
        for i in 0..sample.len() {
            for j in (i + 1)..sample.len() {
                let exact = contextual_distance(&sample[i], &sample[j]);
                let heur = contextual_heuristic(&sample[i], &sample[j]);
                assert!(heur >= exact - 1e-9);
                all_pairs += 1;
                if (heur - exact).abs() < 1e-12 {
                    agreements += 1;
                }
            }
        }
    }
    let rate = agreements as f64 / all_pairs as f64;
    assert!(rate > 0.6, "agreement rate {rate} suspiciously low");
}

/// Distance histograms + moments compose across crates: the contextual
/// histogram over dictionary words is wider (relative to its mean)
/// than Yujian–Bo's — the paper's discrimination argument.
#[test]
fn contextual_histogram_spreads_wider_than_yb_on_words() {
    let words = spanish_dictionary(120, 29);
    let mut h_c = Histogram::new(0.0, 2.0, 50);
    let mut h_yb = Histogram::new(0.0, 1.0, 50);
    let mut m_c = Moments::new();
    let mut m_yb = Moments::new();
    for i in 0..words.len() {
        for j in (i + 1)..words.len() {
            let dc = contextual_heuristic(&words[i], &words[j]);
            let dyb = cned::core::normalized::yujian_bo::yujian_bo(&words[i], &words[j]);
            h_c.add(dc);
            h_yb.add(dyb);
            m_c.add(dc);
            m_yb.add(dyb);
        }
    }
    let spread_c = m_c.std_dev() / m_c.mean();
    let spread_yb = m_yb.std_dev() / m_yb.mean();
    assert!(
        spread_c > spread_yb,
        "contextual {spread_c} vs yb {spread_yb}"
    );
    // And therefore lower intrinsic dimensionality.
    assert!(m_c.intrinsic_dimensionality().unwrap() < m_yb.intrinsic_dimensionality().unwrap());
}

/// The counting wrapper integrates with LAESA: reported stats equal
/// the wrapper's observed count.
#[test]
fn counting_wrapper_matches_reported_stats() {
    use cned::search::counter::CountingDistance;
    let dict = spanish_dictionary(100, 31);
    let counting = CountingDistance::new(ContextualHeuristic);
    let pivots = select_pivots_max_sum(&dict, 8, 0, &counting);
    let index = Laesa::try_build(dict.clone(), pivots, &counting).unwrap();
    counting.reset(); // drop preprocessing counts
    let q = b"palabra".to_vec();
    let (_, stats) =
        MetricIndex::nn(&index, &q, &counting, &QueryOptions::new()).expect("non-empty");
    assert_eq!(stats.distance_computations, counting.count());
}

/// Dataset generators + distances are all deterministic end to end:
/// two fresh runs of a small classification task give identical
/// confusion matrices.
#[test]
fn full_pipeline_is_deterministic() {
    let run = || {
        let train_raw = generate_digits(4, 37);
        let test_raw = generate_digits(4, 38);
        let training: Vec<Vec<u8>> = train_raw.iter().map(|s| s.chain.clone()).collect();
        let labels: Vec<u8> = train_raw.iter().map(|s| s.label).collect();
        let test: Vec<(Vec<u8>, u8)> = test_raw
            .iter()
            .map(|s| (s.chain.clone(), s.label))
            .collect();
        let d = ContextualHeuristic;
        let pivots = select_pivots_max_sum(&training, 6, 0, &d);
        let index = Laesa::try_build(training, pivots, &d).unwrap();
        let clf = NnClassifier::new(Box::new(index), labels).expect("labelled training set");
        let (cm, comps) = evaluate(&clf, &test, &d, 10).expect("well-formed classifier");
        (format!("{cm:?}"), comps)
    };
    assert_eq!(run(), run());
}

/// The facade's prelude exposes the headline API.
#[test]
fn prelude_smoke() {
    use cned::prelude::*;
    assert_eq!(levenshtein(b"abaa", b"aab"), 2);
    let d = contextual_distance(b"ababa", b"baab");
    assert!((d - 8.0 / 15.0).abs() < 1e-12);
    assert!(contextual_heuristic(b"ababa", b"baab") >= d - 1e-12);
    assert_eq!(Distance::<u8>::name(&Levenshtein), "d_E");
}
