//! The unified-API agreement suite (acceptance gate of the redesign):
//! all five backends — `LinearIndex`, `Laesa`, `Aesa`, `VpTree` and
//! `ShardedIndex` — answer nn / knn / range through `&dyn
//! MetricIndex<u8>` with results **bit-identical** to the
//! pre-redesign inherent-method paths (neighbours, distances, and —
//! where the legacy path exists — computation counts), across `d_E`,
//! `d_YB` and `d_C`, including the canonical tie-break on
//! duplicate-heavy corpora and the empty-corpus edge cases.

use cned::core::contextual::exact::Contextual;
use cned::core::levenshtein::Levenshtein;
use cned::core::metric::Distance;
use cned::core::normalized::yujian_bo::YujianBo;
use cned::search::pivots::select_pivots_max_sum;
use cned::search::{Aesa, Laesa, LinearIndex, VpTree};
use cned::serve::{ShardConfig, ShardedIndex};
use cned::{Backend, Database, Metric, MetricIndex, Neighbour, QueryOptions, SearchError};

/// Deterministic pseudo-random word corpus (xorshift).
fn corpus(n: usize, len: usize, alphabet: u8, seed: u64) -> Vec<Vec<u8>> {
    let mut state = seed | 1;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|_| {
            let l = 1 + (rng() % len as u64) as usize;
            (0..l)
                .map(|_| b'a' + (rng() % alphabet as u64) as u8)
                .collect()
        })
        .collect()
}

/// All five backends over one corpus, as trait objects.
fn backends(db: &[Vec<u8>], dist: &dyn Distance<u8>) -> Vec<Box<dyn MetricIndex<u8>>> {
    let pivots = select_pivots_max_sum(db, 6, 0, dist);
    vec![
        Box::new(LinearIndex::new(db.to_vec())),
        Box::new(Laesa::try_build(db.to_vec(), pivots, dist).unwrap()),
        Box::new(Aesa::build(db.to_vec(), dist)),
        Box::new(VpTree::build(db.to_vec(), dist)),
        Box::new(
            ShardedIndex::try_build(
                db.to_vec(),
                ShardConfig {
                    shards: 3,
                    pivots_per_shard: 3,
                    compact_threshold: 8,
                    ..ShardConfig::default()
                },
                dist,
            )
            .unwrap(),
        ),
    ]
}

fn key(ns: &[Neighbour]) -> Vec<(usize, u64)> {
    ns.iter().map(|n| (n.index, n.distance.to_bits())).collect()
}

/// Linear-scan oracles computed with raw `Distance::distance` calls —
/// independent of every code path under test.
fn oracle_sorted(db: &[Vec<u8>], q: &[u8], dist: &dyn Distance<u8>) -> Vec<(usize, f64)> {
    let mut all: Vec<(usize, f64)> = db
        .iter()
        .enumerate()
        .map(|(i, item)| (i, dist.distance(q, item)))
        .collect();
    all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    all
}

#[test]
fn all_backends_agree_on_nn_knn_and_range_for_all_metrics() {
    // Duplicates guarantee distance ties, so this also pins the
    // canonical (distance, ascending index) tie-break behind the
    // trait for every backend.
    let mut db = corpus(36, 6, 3, 41);
    let dups: Vec<Vec<u8>> = db.iter().take(8).cloned().collect();
    db.extend(dups);
    let queries = corpus(6, 6, 3, 411);
    let metrics: [&dyn Distance<u8>; 3] = [&Levenshtein, &YujianBo, &Contextual];
    for dist in metrics {
        let indexes = backends(&db, dist);
        for q in &queries {
            let sorted = oracle_sorted(&db, q, dist);
            let (nn_i, nn_d) = sorted[0];
            let knn_expect: Vec<(usize, u64)> = sorted
                .iter()
                .take(4)
                .map(|&(i, d)| (i, d.to_bits()))
                .collect();
            // Radius at the exact NN distance: boundary ties must be
            // admitted by every backend (elimination slack at work for
            // the real-valued metrics).
            let radius = nn_d;
            let range_expect: Vec<(usize, u64)> = sorted
                .iter()
                .take_while(|&&(_, d)| d <= radius)
                .map(|&(i, d)| (i, d.to_bits()))
                .collect();
            for index in &indexes {
                let label = format!(
                    "backend {} metric {} query {q:?}",
                    index.backend_name(),
                    dist.name()
                );
                let (nn, _) = index.nn(q, dist, &QueryOptions::new()).unwrap();
                let nn = nn.expect("infinite radius always finds");
                assert_eq!(
                    (nn.index, nn.distance.to_bits()),
                    (nn_i, nn_d.to_bits()),
                    "{label}"
                );
                let (knn, _) = index.knn(q, dist, &QueryOptions::new().k(4)).unwrap();
                assert_eq!(key(&knn), knn_expect, "{label}");
                let (range, _) = index
                    .range(q, dist, &QueryOptions::new().radius(radius))
                    .unwrap();
                assert_eq!(key(&range), range_expect, "{label}");
            }
        }
    }
}

#[test]
#[allow(deprecated)]
fn trait_object_results_are_bit_identical_to_legacy_inherent_paths() {
    // For each backend that had an inherent pre-redesign query path,
    // the trait-object path must reproduce it bit for bit — including
    // the per-query computation counts.
    let db = corpus(50, 7, 3, 43);
    let queries = corpus(8, 7, 3, 431);
    let opts = QueryOptions::new();
    let metrics: [&dyn Distance<u8>; 3] = [&Levenshtein, &YujianBo, &Contextual];
    for dist in metrics {
        let pivots = select_pivots_max_sum(&db, 6, 0, dist);
        let laesa = Laesa::try_build(db.clone(), pivots, dist).unwrap();
        let aesa = Aesa::build(db.clone(), dist);
        let sharded = ShardedIndex::try_build(
            db.clone(),
            ShardConfig {
                shards: 3,
                pivots_per_shard: 3,
                compact_threshold: 8,
                ..ShardConfig::default()
            },
            dist,
        )
        .unwrap();
        for q in &queries {
            let label = format!("metric {} query {q:?}", dist.name());
            // Linear: free function vs trait.
            let linear: &dyn MetricIndex<u8> = &LinearIndex::new(db.clone());
            let (l_legacy, l_stats) = cned::search::linear_nn(&db, q, dist).unwrap();
            let (l_new, l_new_stats) = linear.nn(q, dist, &opts).unwrap();
            let l_new = l_new.unwrap();
            assert_eq!(
                (l_legacy.index, l_legacy.distance.to_bits(), l_stats),
                (l_new.index, l_new.distance.to_bits(), l_new_stats),
                "{label}"
            );
            let (lk_legacy, _) = cned::search::linear_knn(&db, q, dist, 5);
            let (lk_new, _) = linear.knn(q, dist, &QueryOptions::new().k(5)).unwrap();
            assert_eq!(key(&lk_legacy), key(&lk_new), "{label}");
            // LAESA.
            let (a_legacy, a_stats) = laesa.nn(q, dist).unwrap();
            let dyn_laesa: &dyn MetricIndex<u8> = &laesa;
            let (a_new, a_new_stats) = dyn_laesa.nn(q, dist, &opts).unwrap();
            let a_new = a_new.unwrap();
            assert_eq!(
                (a_legacy.index, a_legacy.distance.to_bits(), a_stats),
                (a_new.index, a_new.distance.to_bits(), a_new_stats),
                "{label}"
            );
            let (ak_legacy, ak_stats) = laesa.knn(q, dist, 5);
            let (ak_new, ak_new_stats) = dyn_laesa.knn(q, dist, &QueryOptions::new().k(5)).unwrap();
            assert_eq!(key(&ak_legacy), key(&ak_new), "{label}");
            assert_eq!(ak_stats, ak_new_stats, "{label}");
            // nn_limited ↔ pivot_budget.
            for limit in [0usize, 2, 6] {
                let (p_legacy, p_stats) = laesa.nn_limited(q, dist, limit).unwrap();
                let (p_new, p_new_stats) = dyn_laesa
                    .nn(q, dist, &QueryOptions::new().pivot_budget(limit))
                    .unwrap();
                let p_new = p_new.unwrap();
                assert_eq!(
                    (p_legacy.index, p_legacy.distance.to_bits(), p_stats),
                    (p_new.index, p_new.distance.to_bits(), p_new_stats),
                    "{label} limit {limit}"
                );
            }
            // AESA.
            let (e_legacy, e_stats) = aesa.nn(q, dist).unwrap();
            let dyn_aesa: &dyn MetricIndex<u8> = &aesa;
            let (e_new, e_new_stats) = dyn_aesa.nn(q, dist, &opts).unwrap();
            let e_new = e_new.unwrap();
            assert_eq!(
                (e_legacy.index, e_legacy.distance.to_bits(), e_stats),
                (e_new.index, e_new.distance.to_bits(), e_new_stats),
                "{label}"
            );
            // Sharded.
            let (s_legacy, s_stats) = sharded.nn(q, dist).unwrap();
            let dyn_sharded: &dyn MetricIndex<u8> = &sharded;
            let (s_new, s_new_stats) = dyn_sharded.nn(q, dist, &opts).unwrap();
            let s_new = s_new.unwrap();
            assert_eq!(
                (s_legacy.index, s_legacy.distance.to_bits(), s_stats.total()),
                (s_new.index, s_new.distance.to_bits(), s_new_stats),
                "{label}"
            );
            let (sk_legacy, sk_stats) = sharded.knn(q, dist, 5);
            let (sk_new, sk_new_stats) =
                dyn_sharded.knn(q, dist, &QueryOptions::new().k(5)).unwrap();
            assert_eq!(key(&sk_legacy), key(&sk_new), "{label}");
            assert_eq!(sk_stats.total(), sk_new_stats, "{label}");
        }
    }
}

#[test]
fn empty_corpus_is_a_typed_error_on_every_backend() {
    let empty: Vec<Vec<u8>> = Vec::new();
    for index in backends(&empty, &Levenshtein) {
        let label = index.backend_name();
        assert_eq!(index.len(), 0, "{label}");
        let opts = QueryOptions::new();
        assert_eq!(
            index.nn(b"abc", &Levenshtein, &opts).unwrap_err(),
            SearchError::EmptyDatabase,
            "{label}"
        );
        assert_eq!(
            index.knn(b"abc", &Levenshtein, &opts).unwrap_err(),
            SearchError::EmptyDatabase,
            "{label}"
        );
        assert_eq!(
            index.range(b"abc", &Levenshtein, &opts).unwrap_err(),
            SearchError::EmptyDatabase,
            "{label}"
        );
        assert_eq!(
            index
                .nn_batch(&[b"abc".to_vec()], &Levenshtein, &opts)
                .unwrap_err(),
            SearchError::EmptyDatabase,
            "{label}"
        );
        assert_eq!(index.item(0), None, "{label}");
    }
}

#[test]
fn batch_paths_match_single_paths_behind_the_trait() {
    let db = corpus(40, 7, 3, 47);
    let queries = corpus(10, 7, 3, 471);
    for index in backends(&db, &Levenshtein) {
        let label = index.backend_name();
        let opts = QueryOptions::new().threads(3);
        let nn_batch = index.nn_batch(&queries, &Levenshtein, &opts).unwrap();
        let knn_batch = index
            .knn_batch(&queries, &Levenshtein, &QueryOptions::new().k(3).threads(3))
            .unwrap();
        for (q, ((b_nn, b_stats), (b_knn, b_knn_stats))) in
            queries.iter().zip(nn_batch.iter().zip(&knn_batch))
        {
            let (s_nn, s_stats) = index.nn(q, &Levenshtein, &opts).unwrap();
            let (b_nn, s_nn) = (b_nn.unwrap(), s_nn.unwrap());
            assert_eq!(
                (b_nn.index, b_nn.distance.to_bits(), *b_stats),
                (s_nn.index, s_nn.distance.to_bits(), s_stats),
                "{label} query {q:?}"
            );
            let (s_knn, s_knn_stats) = index
                .knn(q, &Levenshtein, &QueryOptions::new().k(3))
                .unwrap();
            assert_eq!(key(b_knn), key(&s_knn), "{label} query {q:?}");
            assert_eq!(b_knn_stats, &s_knn_stats, "{label} query {q:?}");
        }
    }
}

#[test]
fn facade_end_to_end_with_sharding_and_range() {
    // The acceptance-criteria scenario: Database::builder with shards,
    // plus range queries through the pipeline.
    use cned::serve::{QueryPipeline, Request, ResponseBody};
    let words = corpus(60, 6, 3, 53);
    let db = Database::builder(words.clone())
        .metric(Metric::Levenshtein)
        .backend(Backend::Laesa { pivots: 4 })
        .shards(4)
        .build()
        .unwrap();
    assert_eq!(db.index().backend_name(), "sharded");
    let probe = words[11].clone();
    let (nn, _) = db.nn(&probe).unwrap();
    assert_eq!(nn.unwrap().distance, 0.0);
    let (hits, _) = db.range(&probe, 1.0).unwrap();
    let oracle: Vec<(usize, u64)> = oracle_sorted(&words, &probe, db.metric())
        .into_iter()
        .take_while(|&(_, d)| d <= 1.0)
        .map(|(i, d)| (i, d.to_bits()))
        .collect();
    assert_eq!(key(&hits), oracle);
    // Range through the pipeline, in-order with an insert barrier.
    let index = ShardedIndex::try_build(
        words.clone(),
        ShardConfig {
            shards: 4,
            pivots_per_shard: 4,
            compact_threshold: 16,
            ..ShardConfig::default()
        },
        &Levenshtein,
    )
    .unwrap();
    let mut pipeline = QueryPipeline::new(index);
    let far = b"zzzzz".to_vec();
    let responses = pipeline.run(
        &[
            Request::Range {
                query: far.clone(),
                radius: 0.0,
            },
            Request::Insert { item: far.clone() },
            Request::Range {
                query: far.clone(),
                radius: 0.0,
            },
        ],
        &Levenshtein,
    );
    let ResponseBody::Range { neighbours, .. } = &responses[0].body else {
        panic!("expected Range, got {:?}", responses[0]);
    };
    assert!(neighbours.is_empty());
    let ResponseBody::Range { neighbours, .. } = &responses[2].body else {
        panic!("expected Range, got {:?}", responses[2]);
    };
    assert_eq!(key(neighbours), vec![(words.len(), 0.0f64.to_bits())]);
}
