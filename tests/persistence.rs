//! Persistence end to end through the facade: `Database::save`/`load`
//! fidelity, durable serving with kill → warm restart, and a simulated
//! crash that recovers from the fsynced snapshot + WAL alone.
//!
//! The acceptance bar everywhere is **bit-identity**: a recovered
//! database must return the same neighbours, the same distances to the
//! bit, and the same `SearchStats` as the original — recovery decodes
//! state, it never recomputes it.

use cned::prelude::*;
use cned::{Neighbour, SearchStats, ServerConfig};
use std::path::{Path, PathBuf};

fn words() -> Vec<Vec<u8>> {
    [
        "casa", "cosa", "masa", "taza", "cesta", "pasta", "costa", "caza", "queso", "beso", "peso",
        "piso", "vaso", "caso", "cada", "nada",
    ]
    .iter()
    .map(|w| w.as_bytes().to_vec())
    .collect()
}

fn queries() -> Vec<Vec<u8>> {
    [
        b"cesa".to_vec(),
        b"pes".to_vec(),
        b"tazas".to_vec(),
        b"xyz".to_vec(),
    ]
    .to_vec()
}

/// Every query surface, with stats, as one comparable value.
type Answers = Vec<(
    (Option<Neighbour>, SearchStats),
    (Vec<Neighbour>, SearchStats),
    (Vec<Neighbour>, SearchStats),
)>;

fn ask(db: &Database<u8>) -> Answers {
    queries()
        .iter()
        .map(|q| {
            (
                db.nn(q).unwrap(),
                db.knn(q, 3).unwrap(),
                db.range(q, 0.6).unwrap(),
            )
        })
        .collect()
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cned-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn save_load_is_bit_identical_across_metrics_and_backends() {
    for metric in [
        Metric::Levenshtein,
        Metric::YujianBo,
        Metric::ContextualHeuristic,
    ] {
        for shards in [0usize, 2] {
            let mut builder = Database::builder(words())
                .metric(metric)
                .backend(Backend::Laesa { pivots: 3 });
            if shards > 0 {
                builder = builder.shards(shards);
            }
            let db = builder.build().unwrap();
            let path = fresh_dir("save-load").with_extension("snap");
            db.save(&path).unwrap();
            let loaded = Database::<u8>::load(&path).unwrap();
            assert_eq!(loaded.len(), db.len());
            assert_eq!(ask(&db), ask(&loaded), "{metric:?} shards={shards}");
            let _ = std::fs::remove_file(&path);
        }
    }
}

#[test]
fn save_refuses_custom_metrics_with_a_typed_error() {
    let db = Database::builder(words())
        .custom_metric(Box::new(cned::core::levenshtein::Levenshtein))
        .build()
        .unwrap();
    let path = fresh_dir("custom-metric").with_extension("snap");
    match db.save(&path) {
        Err(SearchError::UnsupportedConfig { .. }) => {}
        other => panic!("expected UnsupportedConfig, got {other:?}"),
    }
    assert!(!path.exists(), "a refused save must not touch disk");
}

#[test]
fn load_of_garbage_is_a_typed_error() {
    let path = fresh_dir("garbage").with_extension("snap");
    std::fs::write(&path, b"definitely not a snapshot").unwrap();
    match Database::<u8>::load(&path) {
        Err(SearchError::Persistence { .. }) => {}
        Err(other) => panic!("expected Persistence, got {other:?}"),
        Ok(_) => panic!("garbage decoded as a database"),
    }
    let _ = std::fs::remove_file(&path);
}

/// Kill (drop without graceful shutdown) → restart from the data dir:
/// the wire-accepted insert survives, and a fresh seed database passed
/// to the restarted server is ignored in favour of disk.
#[test]
fn warm_restart_is_bit_identical_including_stats() {
    let dir = fresh_dir("warm-restart");
    let db = Database::builder(words())
        .metric(Metric::Contextual { bounded: true })
        .backend(Backend::Laesa { pivots: 3 })
        .shards(2)
        .build()
        .unwrap();

    // Boot 1: seed the dir, insert over the wire, record answers.
    let handle = db
        .serve_with("127.0.0.1:0", ServerConfig::default().data_dir(&dir))
        .unwrap();
    let mut client: Client<u8> = Client::connect(handle.local_addr()).unwrap();
    let at = client.insert(b"tapa").unwrap();
    assert_eq!(at, words().len());
    let before: Vec<_> = queries().iter().map(|q| client.nn(q).unwrap()).collect();
    drop(client);
    drop(handle); // kill: no graceful drain of the facade handle

    // Boot 2: different seed contents prove disk wins.
    let decoy = Database::builder(vec![b"zzz".to_vec()])
        .metric(Metric::Levenshtein)
        .build()
        .unwrap();
    let handle = decoy
        .serve_with("127.0.0.1:0", ServerConfig::default().data_dir(&dir))
        .unwrap();
    let mut client: Client<u8> = Client::connect(handle.local_addr()).unwrap();
    let after: Vec<_> = queries().iter().map(|q| client.nn(q).unwrap()).collect();
    assert_eq!(before, after);

    // The recovered database still holds the insert, with the
    // persisted metric (d_C), not the decoy's.
    drop(client);
    let db = handle.shutdown();
    assert_eq!(db.len(), words().len() + 1);
    let (nn, _) = db.nn(b"tapa").unwrap();
    assert_eq!(nn.map(|n| (n.index, n.distance)), Some((at, 0.0)));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Copy the fsynced files out from under a *live* server (the moral
/// equivalent of `kill -9` + disk image): recovery from the copy must
/// hold every acknowledged insert, replayed from the WAL.
#[test]
fn simulated_crash_recovers_acknowledged_inserts_from_the_wal() {
    let dir = fresh_dir("crash-live");
    let crash_dir = fresh_dir("crash-image");
    let db = Database::builder(words())
        .metric(Metric::Levenshtein)
        .build()
        .unwrap();
    // A huge snapshot threshold keeps every insert in the WAL.
    let handle = db
        .serve_with(
            "127.0.0.1:0",
            ServerConfig::default()
                .data_dir(&dir)
                .snapshot_every(1 << 30),
        )
        .unwrap();
    let mut client: Client<u8> = Client::connect(handle.local_addr()).unwrap();
    for w in [b"tapa".as_slice(), b"sopa", b"ropa"] {
        client.insert(w).unwrap();
    }
    let before: Vec<_> = queries().iter().map(|q| client.nn(q).unwrap()).collect();

    // The server is still running: everything in the copy was made
    // durable by the insert path itself, not by any shutdown logic.
    copy_dir(&dir, &crash_dir);

    let handle2 = Database::builder(vec![b"zzz".to_vec()])
        .metric(Metric::Levenshtein)
        .build()
        .unwrap()
        .serve_with("127.0.0.1:0", ServerConfig::default().data_dir(&crash_dir))
        .unwrap();
    let mut client2: Client<u8> = Client::connect(handle2.local_addr()).unwrap();
    let after: Vec<_> = queries().iter().map(|q| client2.nn(q).unwrap()).collect();
    assert_eq!(before, after);
    drop(client2);
    let recovered = handle2.shutdown();
    assert_eq!(recovered.len(), words().len() + 3);

    drop(client);
    drop(handle);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&crash_dir);
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}
