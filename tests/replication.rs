//! Primary → replica streaming through the facade: a replica catches
//! up (snapshot, then log tail), serves reads bit-identically to the
//! primary — under many concurrent connections — rejects writes with a
//! typed error, and a *restarted* replica resumes from its own disk,
//! fetching only the tail it missed.

use cned::prelude::*;
use cned::{ClientError, ReplicaHandle, ServerConfig};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn words() -> Vec<Vec<u8>> {
    [
        "casa", "cosa", "masa", "taza", "cesta", "pasta", "costa", "caza",
    ]
    .iter()
    .map(|w| w.as_bytes().to_vec())
    .collect()
}

fn queries() -> Vec<Vec<u8>> {
    [b"cesa".to_vec(), b"tapa".to_vec(), b"sopas".to_vec()].to_vec()
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cned-repl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Block until the replica has applied `want` items (generous bound:
/// the stream crosses a real TCP connection and a scheduler barrier).
fn await_applied(replica: &ReplicaHandle<u8>, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while replica.applied() < want {
        assert!(
            Instant::now() < deadline,
            "replica stuck at {} of {want} items",
            replica.applied()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn nn_all(addr: SocketAddr) -> Vec<(Option<cned::Neighbour>, cned::SearchStats)> {
    let mut client: Client<u8> = Client::connect(addr).unwrap();
    queries().iter().map(|q| client.nn(q).unwrap()).collect()
}

#[test]
fn replica_streams_serves_reads_and_survives_restart() {
    let primary_dir = fresh_dir("primary");
    let replica_dir = fresh_dir("replica");

    let db = Database::builder(words())
        .metric(Metric::Contextual { bounded: true })
        .backend(Backend::Laesa { pivots: 2 })
        .shards(2)
        .build()
        .unwrap();
    let primary = db
        .serve_with(
            "127.0.0.1:0",
            ServerConfig::default().data_dir(&primary_dir),
        )
        .unwrap();
    let p_addr = primary.local_addr();

    // Fresh replica: full snapshot transfer, then the live stream.
    let replica =
        Database::<u8>::replica(p_addr, &replica_dir, "127.0.0.1:0", ServerConfig::default())
            .unwrap();
    assert_eq!(replica.applied(), words().len() as u64);
    let r_addr = replica.local_addr();

    // Writes flow to the primary and stream across live.
    let mut writer: Client<u8> = Client::connect(p_addr).unwrap();
    for w in [b"tapa".as_slice(), b"sopa", b"ropa"] {
        writer.insert(w).unwrap();
    }
    await_applied(&replica, words().len() as u64 + 3);

    // Caught up, the replica answers bit-identically to the primary.
    assert_eq!(nn_all(p_addr), nn_all(r_addr));

    // And rejects writes with the typed read-only error. (The reason
    // string canonicalises crossing the wire; the code is what's
    // pinned.)
    let mut to_replica: Client<u8> = Client::connect(r_addr).unwrap();
    match to_replica.insert(b"nope") {
        Err(ClientError::Search(SearchError::UnsupportedConfig { .. })) => {}
        other => panic!("expected a typed read-only rejection, got {other:?}"),
    }
    drop(to_replica);

    // Restart the replica: it recovers from its own disk and fetches
    // only the tail written while it was down.
    drop(replica);
    for w in [b"vaso".as_slice(), b"caso"] {
        writer.insert(w).unwrap();
    }
    let replica =
        Database::<u8>::replica(p_addr, &replica_dir, "127.0.0.1:0", ServerConfig::default())
            .unwrap();
    assert_eq!(replica.applied(), words().len() as u64 + 5);
    assert_eq!(nn_all(p_addr), nn_all(replica.local_addr()));

    drop(replica);
    drop(writer);
    drop(primary);
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&replica_dir);
}

/// The acceptance bar from the issue: primary and caught-up replica
/// answer bit-identically with 64+ clients connected concurrently,
/// half of them interrogating each side.
#[test]
fn primary_and_replica_agree_under_64_concurrent_connections() {
    let primary_dir = fresh_dir("conc-primary");
    let replica_dir = fresh_dir("conc-replica");

    let db = Database::builder(words())
        .metric(Metric::Levenshtein)
        .build()
        .unwrap();
    let primary = db
        .serve_with(
            "127.0.0.1:0",
            ServerConfig::default()
                .data_dir(&primary_dir)
                .max_connections(256),
        )
        .unwrap();
    let p_addr = primary.local_addr();
    let replica = Database::<u8>::replica(
        p_addr,
        &replica_dir,
        "127.0.0.1:0",
        ServerConfig::default().max_connections(256),
    )
    .unwrap();
    let r_addr = replica.local_addr();

    let mut writer: Client<u8> = Client::connect(p_addr).unwrap();
    for w in [b"tapa".as_slice(), b"sopa"] {
        writer.insert(w).unwrap();
    }
    await_applied(&replica, words().len() as u64 + 2);

    // The reference answer, gathered single-threaded from the primary.
    let reference = nn_all(p_addr);

    let handles: Vec<_> = (0..64)
        .map(|i| {
            let addr = if i % 2 == 0 { p_addr } else { r_addr };
            std::thread::spawn(move || nn_all(addr))
        })
        .collect();
    for handle in handles {
        let got = handle.join().expect("client thread panicked");
        assert_eq!(got, reference);
    }

    drop(writer);
    drop(replica);
    drop(primary);
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&replica_dir);
}
