//! Property tests for the decision layer: the hot-query cache must be
//! invisible except in cost (no stale answer survives an insert/delete
//! barrier), and tombstoned deletes — with or without a vacuum — must
//! answer exactly like a fresh build over the surviving corpus, for
//! every metric × backend shape the serving stack supports.

use cned::{Backend, Database, Metric, Neighbour};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn word() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(97u8..=122, 0..=8)
}

/// Bit-exact comparison key for an answer set.
fn key(ns: &[Neighbour]) -> Vec<(usize, u64)> {
    ns.iter().map(|n| (n.index, n.distance.to_bits())).collect()
}

/// `key`, with indices renumbered through `map` (tombstoned database
/// vs fresh build of the survivors). Canonical order is
/// `(distance, index)` and the survivor map is monotone, so mapped
/// answers must match the fresh ones exactly.
fn mapped_key(ns: &[Neighbour], map: &BTreeMap<usize, usize>) -> Vec<(usize, u64)> {
    ns.iter()
        .map(|n| (map[&n.index], n.distance.to_bits()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Interleave queries, inserts and deletes through a cached
    /// database and an uncached twin: every answer must be
    /// bit-identical. The write barrier is what makes this hold — a
    /// cached entry may only be replayed while the corpus is
    /// untouched.
    #[test]
    fn cache_never_serves_a_stale_answer(
        corpus in proptest::collection::vec(word(), 4..=16),
        ops in proptest::collection::vec((0u8..=4, word(), 0u16..1024), 1..=40),
    ) {
        let mut cached = Database::builder(corpus.clone()).cache().build().unwrap();
        let mut plain = Database::builder(corpus).build().unwrap();
        for (kind, w, sel) in ops {
            let sel = sel as usize;
            // Bias queries towards existing items so cache hits and
            // near-duplicate radius seeds actually occur.
            let q = if sel.is_multiple_of(2) {
                w.clone()
            } else {
                plain.item(sel % plain.len()).unwrap().to_vec()
            };
            match kind {
                0 => {
                    let a = cached.insert(w.clone()).unwrap();
                    let b = plain.insert(w).unwrap();
                    prop_assert_eq!(a, b);
                }
                1 => {
                    let i = sel % plain.len();
                    prop_assert_eq!(cached.delete(i).unwrap(), plain.delete(i).unwrap());
                }
                2 => {
                    let (a, _) = cached.nn(&q).unwrap();
                    let (b, _) = plain.nn(&q).unwrap();
                    prop_assert_eq!(
                        a.map(|n| (n.index, n.distance.to_bits())),
                        b.map(|n| (n.index, n.distance.to_bits()))
                    );
                }
                3 => {
                    let k = sel % 4 + 1;
                    let (a, _) = cached.knn(&q, k).unwrap();
                    let (b, _) = plain.knn(&q, k).unwrap();
                    prop_assert_eq!(key(&a), key(&b));
                }
                _ => {
                    let r = (sel % 5) as f64 * 0.75;
                    let (a, _) = cached.range(&q, r).unwrap();
                    let (b, _) = plain.range(&q, r).unwrap();
                    prop_assert_eq!(key(&a), key(&b));
                }
            }
        }
        // Deletes always flushed; queries may or may not have hit.
        prop_assert!(cached.cache_stats().is_some());
    }

    /// Tombstoned answers (indices mapped through the survivor
    /// renumbering) and a post-vacuum rebuild must both be
    /// bit-identical to a fresh build over the surviving corpus —
    /// across metrics (`d_E`, `d_YB`, `d_C,h`) and backend shapes
    /// (linear, LAESA, sharded LAESA with delta compaction).
    #[test]
    fn deletes_answer_like_a_fresh_build_of_the_survivors(
        corpus in proptest::collection::vec(word(), 6..=14),
        kills in proptest::collection::vec(0u16..1024, 0..=5),
        extras in proptest::collection::vec(word(), 0..=3),
        queries in proptest::collection::vec(word(), 1..=3),
    ) {
        let shapes = [
            (Backend::Linear, 1usize),
            (Backend::Laesa { pivots: 3 }, 1),
            (Backend::Laesa { pivots: 2 }, 2),
        ];
        for metric in [Metric::Levenshtein, Metric::YujianBo, Metric::ContextualHeuristic] {
            for (backend, shards) in shapes {
                let insertable = shards > 1 || matches!(backend, Backend::Linear);
                let mut db = Database::builder(corpus.clone())
                    .metric(metric)
                    .backend(backend)
                    .shards(shards)
                    .compact_threshold(2)
                    .build()
                    .unwrap();
                let mut dead = std::collections::BTreeSet::new();
                for k in &kills {
                    let i = *k as usize % corpus.len();
                    prop_assert_eq!(db.delete(i).unwrap(), dead.insert(i));
                }
                // Post-delete inserts drive the sharded delta/compaction
                // path (threshold 2) on top of live tombstones.
                if insertable {
                    for w in &extras {
                        db.insert(w.clone()).unwrap();
                    }
                }
                let mut survivors: Vec<Vec<u8>> = corpus
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !dead.contains(i))
                    .map(|(_, w)| w.clone())
                    .collect();
                let mut map = BTreeMap::new();
                for (next, i) in (0..corpus.len()).filter(|i| !dead.contains(i)).enumerate() {
                    map.insert(i, next);
                }
                if insertable {
                    for (j, w) in extras.iter().enumerate() {
                        map.insert(corpus.len() + j, survivors.len());
                        survivors.push(w.clone());
                    }
                }
                if survivors.is_empty() {
                    continue;
                }
                let fresh = Database::builder(survivors)
                    .metric(metric)
                    .backend(backend)
                    .shards(shards)
                    .compact_threshold(2)
                    .build()
                    .unwrap();
                for q in &queries {
                    let (t, _) = db.knn(q, 3).unwrap();
                    let (f, _) = fresh.knn(q, 3).unwrap();
                    prop_assert_eq!(mapped_key(&t, &map), key(&f), "tombstoned vs fresh");
                    let (tr, _) = db.range(q, 1.0).unwrap();
                    let (fr, _) = fresh.range(q, 1.0).unwrap();
                    prop_assert_eq!(mapped_key(&tr, &map), key(&fr));
                }
                let vacuumed = db.vacuum().unwrap();
                prop_assert_eq!(vacuumed.deleted(), 0);
                for q in &queries {
                    let (v, vs) = vacuumed.knn(q, 3).unwrap();
                    let (f, fs) = fresh.knn(q, 3).unwrap();
                    prop_assert_eq!(key(&v), key(&f), "vacuumed vs fresh");
                    prop_assert_eq!(vs, fs, "vacuum is indistinguishable, stats included");
                }
            }
        }
    }
}
