//! A look at the synthetic scribes — the paper's Figure 5 ("Different
//! '8' and '0' from the NIST database") for our generator.
//!
//! ```sh
//! cargo run --release --example digit_gallery
//! ```
//!
//! Renders several jittered instances of the same digit side by side
//! as ASCII art, then shows the Freeman chain code and the contextual
//! distances between them: same-class glyphs sit much closer than
//! cross-class ones even though "orientation and sizes are widely
//! different from scribe to scribe".

use cned::core::contextual::heuristic::contextual_heuristic;
use cned::datasets::chain::chain_code;
use cned::datasets::contour::trace_boundary;
use cned::datasets::digits::{render_digit_bitmap, DigitConfig};

fn side_by_side(arts: &[String]) -> String {
    let grids: Vec<Vec<&str>> = arts.iter().map(|a| a.lines().collect()).collect();
    let rows = grids.iter().map(Vec::len).max().unwrap_or(0);
    let mut out = String::new();
    for r in 0..rows {
        for g in &grids {
            out.push_str(g.get(r).copied().unwrap_or(""));
            out.push_str("  ");
        }
        out.push('\n');
    }
    out
}

fn main() {
    let cfg = DigitConfig {
        canvas: 26,
        stroke: 1.1,
        ..DigitConfig::default()
    };

    for digit in [8u8, 0] {
        println!("=== three scribes writing '{digit}' ===");
        let arts: Vec<String> = (0..3)
            .map(|s| render_digit_bitmap(digit, 40 + s, cfg).to_ascii())
            .collect();
        println!("{}", side_by_side(&arts));
    }

    // Chain codes and distances — at the experiments' full resolution
    // (the tiny gallery canvas above merges the '8' lobes into a
    // '0'-like outer contour, which is exactly the 8-vs-0 confusion
    // the paper's Figure 5 hints at).
    let full = DigitConfig::default();
    let chain = |d: u8, seed: u64| -> Vec<u8> {
        chain_code(&trace_boundary(&render_digit_bitmap(d, seed, full)))
    };
    let e1 = chain(8, 40);
    let e2 = chain(8, 41);
    let z1 = chain(0, 40);

    let show = |c: &[u8]| c.iter().map(|d| char::from(b'0' + d)).collect::<String>();
    println!(
        "chain('8', scribe A) = {} symbols: {}…",
        e1.len(),
        &show(&e1)[..30.min(e1.len())]
    );
    println!(
        "chain('8', scribe B) = {} symbols: {}…",
        e2.len(),
        &show(&e2)[..30.min(e2.len())]
    );
    println!(
        "chain('0', scribe A) = {} symbols: {}…",
        z1.len(),
        &show(&z1)[..30.min(z1.len())]
    );

    let d_same = contextual_heuristic(&e1, &e2);
    let d_cross = contextual_heuristic(&e1, &z1);
    println!("\nd_C,h('8' vs '8') = {d_same:.3}");
    println!("d_C,h('8' vs '0') = {d_cross:.3}");
    if d_same < d_cross {
        println!("-> same class is closer, despite the scribe variation.");
    } else {
        println!("-> this particular '8' pair strays — the 1-NN vote over a full");
        println!("   training set (see digit_classification) is what fixes such cases.");
    }
}
