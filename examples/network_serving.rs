//! Network serving end to end, entirely through the facade: build a
//! `Database`, put it behind a TCP socket with `Database::serve`, and
//! query it with the pipelined `Client` — no shard or session
//! plumbing in sight.
//!
//! ```bash
//! cargo run --release --example network_serving
//! ```

use cned::prelude::*;
use cned::Ticket;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let words: Vec<Vec<u8>> = [
        "casa", "cosa", "masa", "taza", "cesta", "pasta", "costa", "caza",
    ]
    .iter()
    .map(|w| w.as_bytes().to_vec())
    .collect();

    // A sharded LAESA database serving the contextual metric d_C.
    let db = Database::builder(words.clone())
        .metric(Metric::Contextual { bounded: true })
        .backend(Backend::Laesa { pivots: 2 })
        .shards(2)
        .build()?;

    // Port 0 = ephemeral: the OS picks a free port, we read it back.
    let handle = db.serve("127.0.0.1:0")?;
    let addr = handle.local_addr();
    println!("serving {} words on {addr}", words.len());

    let mut client: Client<u8> = Client::connect(addr)?;

    // Blocking conveniences: one call, one answer.
    let (nearest, stats) = client.nn(b"cesa")?;
    let nearest = nearest.expect("non-empty database");
    println!(
        "nn(\"cesa\") -> #{} {:?} at d_C = {:.4}  ({} distance computations)",
        nearest.index,
        String::from_utf8_lossy(&words[nearest.index]),
        nearest.distance,
        stats.distance_computations
    );

    let (close, _) = client.range(b"casa", 0.4)?;
    println!(
        "range(\"casa\", 0.4) -> {:?}",
        close
            .iter()
            .map(|n| String::from_utf8_lossy(&words[n.index]).into_owned())
            .collect::<Vec<_>>()
    );

    // Pipelining: submit a burst, collect tickets out of order —
    // responses correlate by request id, not arrival order.
    let queries: Vec<&[u8]> = vec![b"tasa", b"pasto", b"cueva"];
    let tickets: Vec<Ticket> = queries
        .iter()
        .map(|q| client.submit(Request::Nn { query: q.to_vec() }))
        .collect::<Result<_, _>>()?;
    for (ticket, q) in tickets.into_iter().zip(&queries).rev() {
        let response = ticket.wait();
        let ResponseBody::Nn {
            neighbour: Some(nb),
            ..
        } = response.body
        else {
            panic!("expected an Nn answer");
        };
        println!(
            "ticket {} nn({:?}) -> {:?} at {:.4}",
            response.id,
            String::from_utf8_lossy(q),
            String::from_utf8_lossy(&words[nb.index]),
            nb.distance
        );
    }

    // Inserts flow over the wire too (and are barriers server-side).
    let at = client.insert(b"queso")?;
    let (nn, _) = client.nn(b"queso")?;
    assert_eq!(nn.map(|n| (n.index, n.distance)), Some((at, 0.0)));
    println!("inserted \"queso\" at index {at}; it is now its own nearest neighbour");

    // Shutdown drains in flight work and hands the Database back —
    // with the insert included.
    drop(client);
    let db = handle.shutdown();
    println!("server drained; database holds {} items", db.len());
    assert_eq!(db.len(), words.len() + 1);
    Ok(())
}
