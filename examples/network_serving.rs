//! Network serving end to end, entirely through the facade: build a
//! `Database`, put it behind a TCP socket with `Database::serve`, and
//! query it with the pipelined `Client` — no shard or session
//! plumbing in sight.
//!
//! ```bash
//! cargo run --release --example network_serving
//! ```
//!
//! With no arguments the demo is self-contained: it serves, queries,
//! inserts, then runs a kill → warm-restart cycle against a temporary
//! data dir and checks the answers come back bit-identical.
//!
//! Durable serving and replication can also be driven across real
//! processes:
//!
//! ```bash
//! # Terminal 1 — durable primary (re-run it to warm-restart):
//! cargo run --release --example network_serving -- \
//!     primary data_dir=/tmp/cned-primary addr=127.0.0.1:7878 snapshot=256
//!
//! # Terminal 2 — streaming read replica:
//! cargo run --release --example network_serving -- \
//!     replica primary=127.0.0.1:7878 data_dir=/tmp/cned-replica addr=127.0.0.1:7879
//! ```
//!
//! Kill the primary (Ctrl-C or `kill -9`) and start it again: it
//! recovers from its snapshot + WAL and answers exactly as before.
//! The replica serves reads the whole time and catches up from the
//! primary's log tail when restarted.

use cned::prelude::*;
use cned::{ServerConfig, Ticket};
use std::collections::BTreeMap;

fn demo_words() -> Vec<Vec<u8>> {
    [
        "casa", "cosa", "masa", "taza", "cesta", "pasta", "costa", "caza",
    ]
    .iter()
    .map(|w| w.as_bytes().to_vec())
    .collect()
}

fn build_db(words: Vec<Vec<u8>>) -> Result<Database<u8>, SearchError> {
    Database::builder(words)
        .metric(Metric::Contextual { bounded: true })
        .backend(Backend::Laesa { pivots: 2 })
        .shards(2)
        .build()
}

/// `key=value` arguments, order-free.
fn parse_kv(args: &[String]) -> BTreeMap<String, String> {
    args.iter()
        .filter_map(|a| a.split_once('='))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("primary") => run_primary(&parse_kv(&args[1..])),
        Some("replica") => run_replica(&parse_kv(&args[1..])),
        _ => run_demo(),
    }
}

/// Long-running durable primary: recovers `data_dir` if it holds a
/// snapshot, otherwise seeds it with the demo words.
fn run_primary(kv: &BTreeMap<String, String>) -> Result<(), Box<dyn std::error::Error>> {
    let dir = kv.get("data_dir").ok_or("primary requires data_dir=DIR")?;
    let addr = kv.get("addr").map_or("127.0.0.1:0", String::as_str);
    let snapshot: u64 = kv.get("snapshot").map_or(Ok(1024), |s| s.parse())?;

    let db = build_db(demo_words())?;
    let handle = db.serve_with(
        addr,
        ServerConfig::default()
            .data_dir(dir)
            .snapshot_every(snapshot),
    )?;
    println!(
        "primary serving on {} (data dir {dir}, snapshot every {snapshot} inserts)",
        handle.local_addr()
    );
    println!("kill me and re-run: recovery is snapshot + WAL replay, no index rebuild");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(60));
    }
}

/// Streaming read replica of a durable primary.
fn run_replica(kv: &BTreeMap<String, String>) -> Result<(), Box<dyn std::error::Error>> {
    let primary = kv.get("primary").ok_or("replica requires primary=ADDR")?;
    let dir = kv.get("data_dir").ok_or("replica requires data_dir=DIR")?;
    let addr = kv.get("addr").map_or("127.0.0.1:0", String::as_str);

    let handle = Database::<u8>::replica(primary.as_str(), dir, addr, ServerConfig::default())?;
    println!(
        "replica serving reads on {} ({} items applied; data dir {dir})",
        handle.local_addr(),
        handle.applied()
    );
    println!("inserts on the primary stream here live; inserts sent to me answer read-only");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(60));
    }
}

/// The self-contained single-process tour.
fn run_demo() -> Result<(), Box<dyn std::error::Error>> {
    let words = demo_words();

    // A sharded LAESA database serving the contextual metric d_C.
    let db = build_db(words.clone())?;

    // Port 0 = ephemeral: the OS picks a free port, we read it back.
    let handle = db.serve("127.0.0.1:0")?;
    let addr = handle.local_addr();
    println!("serving {} words on {addr}", words.len());

    let mut client: Client<u8> = Client::connect(addr)?;

    // Blocking conveniences: one call, one answer.
    let (nearest, stats) = client.nn(b"cesa")?;
    let nearest = nearest.expect("non-empty database");
    println!(
        "nn(\"cesa\") -> #{} {:?} at d_C = {:.4}  ({} distance computations)",
        nearest.index,
        String::from_utf8_lossy(&words[nearest.index]),
        nearest.distance,
        stats.distance_computations
    );

    let (close, _) = client.range(b"casa", 0.4)?;
    println!(
        "range(\"casa\", 0.4) -> {:?}",
        close
            .iter()
            .map(|n| String::from_utf8_lossy(&words[n.index]).into_owned())
            .collect::<Vec<_>>()
    );

    // Pipelining: submit a burst, collect tickets out of order —
    // responses correlate by request id, not arrival order.
    let queries: Vec<&[u8]> = vec![b"tasa", b"pasto", b"cueva"];
    let tickets: Vec<Ticket> = queries
        .iter()
        .map(|q| client.submit(Request::Nn { query: q.to_vec() }))
        .collect::<Result<_, _>>()?;
    client.flush()?; // submission is buffered; one syscall ships the burst
    for (ticket, q) in tickets.into_iter().zip(&queries).rev() {
        let response = ticket.wait();
        let nb = match response.body {
            ResponseBody::Nn {
                neighbour: Some(nb),
                ..
            } => nb,
            other => panic!("expected an Nn answer, got {other:?}"),
        };
        println!(
            "ticket {} nn({:?}) -> {:?} at {:.4}",
            response.id,
            String::from_utf8_lossy(q),
            String::from_utf8_lossy(&words[nb.index]),
            nb.distance
        );
    }

    // Inserts flow over the wire too (and are barriers server-side).
    let at = client.insert(b"queso")?;
    let (nn, _) = client.nn(b"queso")?;
    assert_eq!(nn.map(|n| (n.index, n.distance)), Some((at, 0.0)));
    println!("inserted \"queso\" at index {at}; it is now its own nearest neighbour");

    // Shutdown drains in flight work and hands the Database back —
    // with the insert included.
    drop(client);
    let db = handle.shutdown();
    println!("server drained; database holds {} items", db.len());
    assert_eq!(db.len(), words.len() + 1);

    // ---- Durability: kill → warm restart, in miniature. ----
    let dir = std::env::temp_dir().join(format!("cned-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Boot 1: seed the dir, insert over the wire, record an answer.
    let handle = db.serve_with("127.0.0.1:0", ServerConfig::default().data_dir(&dir))?;
    let mut client: Client<u8> = Client::connect(handle.local_addr())?;
    client.insert(b"quesadilla")?;
    let (before, before_stats) = client.nn(b"quesadilla")?;
    drop(client);
    drop(handle); // "kill": the handle drops without a graceful drain

    // Boot 2: a *fresh* seed database pointed at the same dir — disk
    // wins, so the insert survives and answers are bit-identical.
    let handle =
        build_db(words)?.serve_with("127.0.0.1:0", ServerConfig::default().data_dir(&dir))?;
    let mut client: Client<u8> = Client::connect(handle.local_addr())?;
    let (after, after_stats) = client.nn(b"quesadilla")?;
    assert_eq!(before, after);
    assert_eq!(before_stats, after_stats);
    println!(
        "warm restart from {} answered bit-identically (d = {:.4}, {} computations)",
        dir.display(),
        after.expect("non-empty").distance,
        after_stats.distance_computations
    );
    drop(client);
    let db = handle.shutdown();
    assert_eq!(db.len(), 10);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
