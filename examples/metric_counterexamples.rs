//! The paper's negative results, demonstrated concretely:
//!
//! 1. §2.2 — the simple normalisations `d_sum`, `d_max`, `d_min`
//!    violate the triangle inequality (exact witness triples from the
//!    paper);
//! 2. §5 — the *naive* generalisation of the contextual distance to
//!    weighted operations breaks: cheap dummy insertions make
//!    non-internal paths beat every internal one.
//!
//! ```sh
//! cargo run --release --example metric_counterexamples
//! ```

use cned::core::generalized::{dummy_exploit_weight, naive_contextual_generalized_is_broken};
use cned::core::metric::{check_triangle, Distance, MetricViolation};
use cned::core::normalized::simple::{d_max, d_min, d_sum, MaxNorm, MinNorm, SumNorm};

fn report_violation(name: &str, v: Option<MetricViolation<u8>>) {
    match v {
        Some(MetricViolation::Triangle { x, y, z, dxz, via }) => {
            let s = |b: &[u8]| String::from_utf8_lossy(b).into_owned();
            println!(
                "  {name}: d({}, {}) = {dxz:.3} > {via:.3} = d({}, {}) + d({}, {})  -> NOT a metric",
                s(&x), s(&z), s(&x), s(&y), s(&y), s(&z)
            );
        }
        Some(other) => println!("  {name}: unexpected violation {other:?}"),
        None => println!("  {name}: no violation found on this sample"),
    }
}

fn main() {
    println!("== §2.2: simple normalisations are not metrics ==\n");

    // The paper's exact numbers for d_sum on (ab, aba, ba):
    println!(
        "d_sum(ab, aba) + d_sum(aba, ba) = {:.3} + {:.3} = {:.3}",
        d_sum(b"ab", b"aba"),
        d_sum(b"aba", b"ba"),
        d_sum(b"ab", b"aba") + d_sum(b"aba", b"ba"),
    );
    println!(
        "d_sum(ab, ba) = {:.3}  -> triangle inequality fails\n",
        d_sum(b"ab", b"ba")
    );

    // Automated witness search over the paper's triples:
    let sample1: Vec<Vec<u8>> = [&b"ab"[..], b"aba", b"ba"]
        .iter()
        .map(|w| w.to_vec())
        .collect();
    let sample2: Vec<Vec<u8>> = [&b"b"[..], b"ba", b"aa"]
        .iter()
        .map(|w| w.to_vec())
        .collect();
    report_violation("d_sum", check_triangle(&SumNorm, &sample1));
    report_violation("d_max", check_triangle(&MaxNorm, &sample1));
    report_violation("d_min", check_triangle(&MinNorm, &sample2));

    println!(
        "\n(d_max values on the witness: {:.3}, {:.3} vs {:.3};",
        d_max(b"ab", b"aba"),
        d_max(b"aba", b"ba"),
        d_max(b"ab", b"ba")
    );
    println!(
        " d_min values on its witness: {:.3}, {:.3} vs {:.3})",
        d_min(b"b", b"ba"),
        d_min(b"ba", b"aa"),
        d_min(b"b", b"aa")
    );

    // By contrast, d_C and d_YB pass the same sweep:
    let all: Vec<Vec<u8>> = [&b"ab"[..], b"aba", b"ba", b"b", b"aa", b"", b"abab", b"bb"]
        .iter()
        .map(|w| w.to_vec())
        .collect();
    let dc = cned::core::contextual::exact::Contextual;
    let dyb = cned::core::normalized::yujian_bo::YujianBo;
    println!(
        "\nd_C  triangle sweep over {} strings: {}",
        all.len(),
        if check_triangle(&dc, &all).is_none() {
            "clean (it is a metric, Theorem 1)"
        } else {
            "violated!?"
        }
    );
    println!(
        "d_YB triangle sweep over {} strings: {}",
        all.len(),
        if check_triangle(&dyb, &all).is_none() {
            "clean (Yujian & Bo 2007)"
        } else {
            "violated!?"
        }
    );
    assert!(Distance::<u8>::is_metric(&dc));

    println!("\n== §5: naive generalised contextual distance breaks ==\n");
    println!("setup: x = aaaa, y = bbbb; substitutions cost 10; a dummy symbol");
    println!("inserts/deletes for 0.01. Internal paths (Proposition 1) cannot");
    println!("use the dummy — but a rewriting path can:");
    let (internal, exploit) = naive_contextual_generalized_is_broken(4, 60);
    println!("  best internal-path weight:      {internal:.4}");
    println!("  dummy-padding exploit (pad=60): {exploit:.4}");
    assert!(exploit < internal);
    println!("\npadding sweep (exploit weight keeps dropping):");
    for pad in [0, 5, 20, 60, 200] {
        println!(
            "  pad {pad:>4}: {:.4}",
            dummy_exploit_weight(4, 4, 10.0, 0.01, pad)
        );
    }
    println!("\n-> internality fails for generalised costs, so Algorithm 1 does not");
    println!("   extend naively (the paper leaves this as an open problem).");
}
