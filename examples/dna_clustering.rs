//! Comparing gene sequences under normalised edit distances — the
//! paper's genes benchmark as an analysis session.
//!
//! ```sh
//! cargo run --release --example dna_clustering
//! ```
//!
//! Generates gene-like DNA sequences of widely varying length, then
//! shows why normalisation matters: raw `d_E` ranks a short unrelated
//! sequence "closer" than a long homolog, while `d_C,h` corrects for
//! length. Also prints each distance's intrinsic dimensionality on
//! this data (the paper's Table 1, genes column).

use cned::core::contextual::heuristic::contextual_heuristic;
use cned::core::levenshtein::levenshtein;
use cned::core::metric::{Distance, DistanceKind};
use cned::datasets::dna::{dna_sequences, dna_sequences_with, LengthLaw, TransitionMatrix};
use cned::datasets::perturb::perturb;
use cned::stats::Moments;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // --- Length bias of the raw edit distance ------------------------
    // A "gene family": one sequence and a mutated homolog (5% edits),
    // plus a short unrelated sequence.
    let law = LengthLaw {
        median: 300.0,
        sigma: 0.1,
        min: 250,
        max: 400,
    };
    let base = dna_sequences_with(1, 1, law, TransitionMatrix::default()).remove(0);
    let mut rng = StdRng::seed_from_u64(2);
    let homolog = perturb(&base, base.len() / 20, b"ACGT", &mut rng);
    let short_law = LengthLaw {
        median: 14.0,
        sigma: 0.05,
        min: 10,
        max: 18,
    };
    let unrelated = dna_sequences_with(1, 99, short_law, TransitionMatrix::default()).remove(0);

    // A second pair: two *unrelated* short fragments.
    let short_a = unrelated.clone();
    let short_b = dna_sequences_with(1, 123, short_law, TransitionMatrix::default()).remove(0);

    println!(
        "pair A: gene ({} bp) vs 5%-mutated homolog ({} bp) — biologically close",
        base.len(),
        homolog.len()
    );
    println!(
        "pair B: two unrelated short fragments ({} bp, {} bp) — biologically far\n",
        short_a.len(),
        short_b.len()
    );
    let de_a = levenshtein(&base, &homolog);
    let de_b = levenshtein(&short_a, &short_b);
    println!("raw d_E:   pair A {de_a:>5}    pair B {de_b:>5}");
    if de_b < de_a {
        println!("  -> d_E calls the unrelated pair closer: editing twice on a string of");
        println!("     length 2 is not the same as editing twice on one of length 200 (§1)!");
    }
    let dc_a = contextual_heuristic(&base, &homolog);
    let dc_b = contextual_heuristic(&short_a, &short_b);
    println!("d_C,h:     pair A {dc_a:>8.3} pair B {dc_b:>8.3}");
    assert!(
        dc_a < dc_b,
        "contextual distance ranks the homolog pair closer"
    );
    println!("  -> d_C,h ranks the homolog pair closer, as biology expects.\n");

    // --- Intrinsic dimensionality on a gene sample -------------------
    let genes = dna_sequences(80, 7);
    println!(
        "intrinsic dimensionality over {} genes (lower = easier NN search):",
        genes.len()
    );
    for kind in [
        DistanceKind::YujianBo,
        DistanceKind::ContextualHeuristic,
        DistanceKind::MaxNorm,
        DistanceKind::Levenshtein,
    ] {
        let dist = kind.build::<u8>();
        let mut m = Moments::new();
        for i in 0..genes.len() {
            for j in (i + 1)..genes.len() {
                m.add(dist.distance(&genes[i], &genes[j]));
            }
        }
        println!(
            "  {:<6} mean {:>8.3}  std {:>7.3}  rho {:>7.2}",
            kind.label(),
            m.mean(),
            m.std_dev(),
            m.intrinsic_dimensionality().unwrap_or(f64::NAN)
        );
    }
    println!("\nthe contextual distance keeps genes spread out (low rho), which is");
    println!("exactly what lets LAESA discard most candidates during search.");
}
