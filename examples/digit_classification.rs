//! Handwritten-digit recognition from contour strings — the paper's
//! §4.4 classification task end to end.
//!
//! ```sh
//! cargo run --release --example digit_classification
//! ```
//!
//! Generates synthetic digit glyphs (stroke templates + heavy writer
//! jitter), extracts Freeman chain codes from their contours, and
//! classifies unseen digits by 1-NN under several distances. Shows
//! the confusion matrix for the contextual heuristic.

use cned::classify::eval::evaluate;
use cned::classify::nn::NnClassifier;
use cned::core::contextual::heuristic::ContextualHeuristic;
use cned::core::levenshtein::Levenshtein;
use cned::core::metric::Distance;
use cned::core::normalized::simple::MaxNorm;
use cned::core::normalized::yujian_bo::YujianBo;
use cned::datasets::digits::generate_digits;
use cned::search::LinearIndex;

fn main() {
    const TRAIN_PER_CLASS: usize = 30;
    const TEST_PER_CLASS: usize = 30;

    let train_raw = generate_digits(TRAIN_PER_CLASS, 1);
    let test_raw = generate_digits(TEST_PER_CLASS, 2); // different writers
    let training: Vec<Vec<u8>> = train_raw.iter().map(|s| s.chain.clone()).collect();
    let labels: Vec<u8> = train_raw.iter().map(|s| s.label).collect();
    let test: Vec<(Vec<u8>, u8)> = test_raw
        .iter()
        .map(|s| (s.chain.clone(), s.label))
        .collect();

    let mean_len = training.iter().map(Vec::len).sum::<usize>() as f64 / training.len() as f64;
    println!(
        "{} training digits, {} test digits; mean contour length {:.0} symbols (alphabet 8)\n",
        training.len(),
        test.len(),
        mean_len
    );

    let panel: Vec<(&str, Box<dyn Distance<u8>>)> = vec![
        ("d_E", Box::new(Levenshtein)),
        ("d_C,h", Box::new(ContextualHeuristic)),
        ("d_YB", Box::new(YujianBo)),
        ("d_max", Box::new(MaxNorm)),
    ];

    println!("1-NN error rates (exhaustive search):");
    for (name, d) in &panel {
        let clf = NnClassifier::new(Box::new(LinearIndex::new(training.clone())), labels.clone())
            .expect("labelled training set");
        let (cm, _) = evaluate(&clf, &test, d, 10).expect("well-formed classifier");
        println!("  {:<6} {:>5.1}%", name, cm.error_rate_percent());
    }

    // Confusion matrix under the contextual heuristic.
    let d = ContextualHeuristic;
    let clf = NnClassifier::new(Box::new(LinearIndex::new(training)), labels)
        .expect("labelled training set");
    let (cm, _) = evaluate(&clf, &test, &d, 10).expect("well-formed classifier");
    println!("\nconfusion matrix for d_C,h (rows = truth, cols = prediction):");
    print!("     ");
    for p in 0..10 {
        print!("{p:>4}");
    }
    println!();
    for t in 0..10u8 {
        print!("  {t} |");
        for p in 0..10u8 {
            let c = cm.get(t, p);
            if c == 0 {
                print!("   .");
            } else {
                print!("{c:>4}");
            }
        }
        println!();
    }
    for t in 0..10u8 {
        if let Some((p, n)) = cm.worst_confusion(t) {
            println!("  digit {t} most confused with {p} ({n} times)");
        }
    }
    println!("\noverall error: {:.2}%", cm.error_rate_percent());
}
