//! Fast approximate-word lookup in a Spanish-like dictionary —
//! the paper's §4.3 scenario as a library user would run it.
//!
//! ```sh
//! cargo run --release --example dictionary_search
//! ```
//!
//! Builds a LAESA index over generated dictionary words under the
//! contextual heuristic distance, then resolves misspelled queries
//! (2-operation perturbations, like the SISAP `genqueries` tool)
//! while counting how many real distance computations each engine
//! needs.

use cned::core::contextual::heuristic::ContextualHeuristic;
use cned::core::levenshtein::Levenshtein;
use cned::core::metric::Distance;
use cned::core::normalized::yujian_bo::YujianBo;
use cned::datasets::dictionary::spanish_dictionary;
use cned::datasets::perturb::{gen_queries, ASCII_LOWER};
use cned::search::laesa::Laesa;
use cned::search::linear::linear_nn;
use cned::search::pivots::select_pivots_max_sum;

fn show(s: &[u8]) -> &str {
    std::str::from_utf8(s).unwrap_or("<bytes>")
}

fn main() {
    const WORDS: usize = 4000;
    const PIVOTS: usize = 64;
    const QUERIES: usize = 200;

    let dict = spanish_dictionary(WORDS, 42);
    let queries = gen_queries(&dict, QUERIES, 2, ASCII_LOWER, 7);
    println!("dictionary: {WORDS} words; {QUERIES} misspelled queries; {PIVOTS} pivots\n");

    // A few concrete lookups with the contextual heuristic.
    let dist = ContextualHeuristic;
    let pivots = select_pivots_max_sum(&dict, PIVOTS, 0, &dist);
    let index = Laesa::build(dict.clone(), pivots, &dist);
    println!("sample lookups (d_C,h):");
    for q in queries.iter().take(5) {
        let (nn, stats) = index.nn(q, &dist).expect("non-empty dictionary");
        println!(
            "  {:<14} -> {:<14} (distance {:.3}, {} computations instead of {WORDS})",
            show(q),
            show(&index.database()[nn.index]),
            nn.distance,
            stats.distance_computations,
        );
    }

    // Average savings per distance — the shape of the paper's Fig. 3.
    println!("\naverage distance computations per query (LAESA vs exhaustive):");
    let engines: Vec<(&str, Box<dyn Distance<u8>>)> = vec![
        ("d_E", Box::new(Levenshtein)),
        ("d_C,h", Box::new(ContextualHeuristic)),
        ("d_YB", Box::new(YujianBo)),
    ];
    for (name, d) in &engines {
        let pivots = select_pivots_max_sum(&dict, PIVOTS, 0, d);
        let index = Laesa::build(dict.clone(), pivots, d);
        let mut laesa_total = 0u64;
        let mut mismatches = 0usize;
        for q in &queries {
            let (nn_l, st) = index.nn(q, d).expect("non-empty");
            laesa_total += st.distance_computations;
            let (nn_x, _) = linear_nn(&dict, q, d).expect("non-empty");
            if (nn_l.distance - nn_x.distance).abs() > 1e-9 {
                mismatches += 1;
            }
        }
        println!(
            "  {:<6} LAESA {:>7.1}   exhaustive {:>6}   suboptimal answers: {}",
            name,
            laesa_total as f64 / queries.len() as f64,
            WORDS,
            mismatches,
        );
    }
    println!("\nnote: d_C,h is not formally a metric (it upper-bounds the metric d_C),");
    println!("yet LAESA loses nothing here — matching the paper's Table 2 observation.");
}
