//! Fast approximate-word lookup in a Spanish-like dictionary —
//! the paper's §4.3 scenario as a library user would run it, through
//! the [`Database`] builder facade.
//!
//! ```sh
//! cargo run --release --example dictionary_search
//! ```
//!
//! Builds a LAESA index over generated dictionary words under the
//! contextual heuristic distance, resolves misspelled queries
//! (2-operation perturbations, like the SISAP `genqueries` tool)
//! while counting how many real distance computations each engine
//! needs, and runs range queries ("every word within radius r") —
//! the operation the pre-trait API could not express.

use cned::datasets::dictionary::spanish_dictionary;
use cned::datasets::perturb::{gen_queries, ASCII_LOWER};
use cned::{Backend, Database, Metric};

fn show(s: &[u8]) -> &str {
    std::str::from_utf8(s).unwrap_or("<bytes>")
}

fn main() {
    const WORDS: usize = 4000;
    const PIVOTS: usize = 64;
    const QUERIES: usize = 200;

    let dict = spanish_dictionary(WORDS, 42);
    let queries = gen_queries(&dict, QUERIES, 2, ASCII_LOWER, 7);
    println!("dictionary: {WORDS} words; {QUERIES} misspelled queries; {PIVOTS} pivots\n");

    // A few concrete lookups with the contextual heuristic.
    let db = Database::builder(dict.clone())
        .metric(Metric::ContextualHeuristic)
        .backend(Backend::Laesa { pivots: PIVOTS })
        .build()
        .expect("valid configuration");
    println!("sample lookups (d_C,h):");
    for q in queries.iter().take(5) {
        let (nn, stats) = db.nn(q).expect("non-empty dictionary");
        let nn = nn.expect("unbounded search always finds");
        println!(
            "  {:<14} -> {:<14} (distance {:.3}, {} computations instead of {WORDS})",
            show(q),
            show(db.item(nn.index).expect("result indices are valid")),
            nn.distance,
            stats.distance_computations,
        );
    }

    // Range search: every word within a radius, with triangle-
    // inequality pruning doing the heavy lifting.
    let spell = Database::builder(dict.clone())
        .backend(Backend::Laesa { pivots: PIVOTS })
        .build()
        .expect("valid configuration");
    println!("\nspelling suggestions (d_E, radius 2):");
    for q in queries.iter().take(3) {
        let (hits, stats) = spell.range(q, 2.0).expect("non-empty dictionary");
        let words: Vec<&str> = hits
            .iter()
            .take(6)
            .map(|n| show(spell.item(n.index).expect("valid index")))
            .collect();
        println!(
            "  {:<14} -> {} candidates ({} computations): {}",
            show(q),
            hits.len(),
            stats.distance_computations,
            words.join(", "),
        );
    }

    // Average savings per distance — the shape of the paper's Fig. 3.
    println!("\naverage distance computations per query (LAESA vs exhaustive):");
    let engines = [
        ("d_E", Metric::Levenshtein),
        ("d_C,h", Metric::ContextualHeuristic),
        ("d_YB", Metric::YujianBo),
    ];
    for (name, metric) in engines {
        let laesa = Database::builder(dict.clone())
            .metric(metric)
            .backend(Backend::Laesa { pivots: PIVOTS })
            .build()
            .expect("valid configuration");
        let exhaustive = Database::builder(dict.clone())
            .metric(metric)
            .build()
            .expect("valid configuration");
        let mut laesa_total = 0u64;
        let mut mismatches = 0usize;
        for q in &queries {
            let (nn_l, st) = laesa.nn(q).expect("non-empty");
            laesa_total += st.distance_computations;
            let (nn_x, _) = exhaustive.nn(q).expect("non-empty");
            let (nn_l, nn_x) = (nn_l.unwrap(), nn_x.unwrap());
            if (nn_l.distance - nn_x.distance).abs() > 1e-9 {
                mismatches += 1;
            }
        }
        println!(
            "  {:<6} LAESA {:>7.1}   exhaustive {:>6}   suboptimal answers: {}",
            name,
            laesa_total as f64 / queries.len() as f64,
            WORDS,
            mismatches,
        );
    }
    println!("\nnote: d_C,h is not formally a metric (it upper-bounds the metric d_C),");
    println!("yet LAESA loses nothing here — matching the paper's Table 2 observation.");
}
