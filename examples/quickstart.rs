//! Quickstart: the contextual normalised edit distance in five
//! minutes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks through the paper's running examples: the plain edit
//! distance, why naive normalisations break the triangle inequality,
//! the contextual distance `d_C` and its fast heuristic `d_C,h`.

use cned::core::contextual::exact::{contextual_alignment, contextual_distance};
use cned::core::contextual::heuristic::contextual_heuristic;
use cned::core::levenshtein::{edit_script, levenshtein};
use cned::core::normalized::simple::d_sum;
use cned::core::normalized::yujian_bo::yujian_bo;

fn main() {
    // --- The edit distance (paper, Example 1) -----------------------
    let (x, y) = (b"abaa".as_slice(), b"aab".as_slice());
    println!("d_E({:?}, {:?}) = {}", "abaa", "aab", levenshtein(x, y));
    println!("  one optimal script: {:?}", edit_script(x, y));

    // --- Why dividing by length is not enough (paper, §2.2) ---------
    // d_sum = d_E/(|x|+|y|) violates the triangle inequality:
    let (a, b, c) = (b"ab".as_slice(), b"aba".as_slice(), b"ba".as_slice());
    let direct = d_sum(a, c);
    let via = d_sum(a, b) + d_sum(b, c);
    println!("\nd_sum(ab, ba) = {direct:.3} > {via:.3} = d_sum(ab, aba) + d_sum(aba, ba)");
    println!("  -> d_sum is NOT a metric; same for d_max and d_min");

    // --- The contextual distance (paper, Example 4) ------------------
    // Each operation on a string of length L costs 1/L (insertions
    // 1/(L+1)), so editing long strings is cheaper than editing short
    // ones — and the result is still a metric (Theorem 1).
    let (x, y) = (b"ababa".as_slice(), b"baab".as_slice());
    let d = contextual_distance(x, y);
    println!("\nd_C(ababa, baab) = {d:.6} (= 8/15 = {:.6})", 8.0 / 15.0);
    let alignment = contextual_alignment(x, y);
    println!(
        "  optimal path: {} insertions, {} substitutions, {} deletions (k = {})",
        alignment.shape.insertions,
        alignment.shape.substitutions,
        alignment.shape.deletions,
        alignment.k
    );

    // --- The fast heuristic ------------------------------------------
    // d_C,h evaluates only the Levenshtein-optimal path length:
    // quadratic instead of cubic, equal to d_C most of the time and
    // never below it.
    let h = contextual_heuristic(x, y);
    println!("d_C,h(ababa, baab) = {h:.6} (here equal to d_C)");

    // --- Comparison with Yujian–Bo ------------------------------------
    // d_YB is also a metric but saturates for very different strings:
    let far_x = b"aaaaaaaaaa".as_slice();
    let far_y = b"bbbbbbbbbb".as_slice();
    println!(
        "\nfor two totally different length-10 strings:\n  d_YB = {:.4} (capped at 2/3 for equal lengths)\n  d_C  = {:.4} (keeps discriminating)",
        yujian_bo(far_x, far_y),
        contextual_distance(far_x, far_y),
    );

    // --- The metric property in action --------------------------------
    let (p, q, r) = (b"casa".as_slice(), b"cosa".as_slice(), b"cose".as_slice());
    let (dpq, dqr, dpr) = (
        contextual_distance(p, q),
        contextual_distance(q, r),
        contextual_distance(p, r),
    );
    println!(
        "\ntriangle inequality: d_C(casa, cose) = {dpr:.4} <= {:.4} = d_C(casa, cosa) + d_C(cosa, cose)",
        dpq + dqr
    );
    assert!(dpr <= dpq + dqr + 1e-12);
    println!("  -> safe to use with AESA/LAESA pruning (see dictionary_search example)");

    // --- The Database facade ------------------------------------------
    // One builder crosses any paper metric with any search backend;
    // the Database owns the metric, so index and distance can never
    // drift apart.
    use cned::{Backend, Database, Metric};
    let words: Vec<Vec<u8>> = ["casa", "cosa", "masa", "taza", "cesta"]
        .iter()
        .map(|w| w.as_bytes().to_vec())
        .collect();
    let db = Database::builder(words)
        .metric(Metric::Contextual { bounded: true })
        .backend(Backend::Laesa { pivots: 2 })
        .build()
        .expect("valid configuration");
    let (nn, stats) = db.nn(b"cesa").expect("non-empty database");
    let nn = nn.expect("unbounded search always finds");
    println!(
        "\nDatabase facade: nn(\"cesa\") = {:?} at d_C {:.4} ({} distance computations)",
        String::from_utf8_lossy(db.item(nn.index).unwrap()),
        nn.distance,
        stats.distance_computations,
    );
    let (close, _) = db.range(b"casa", 0.4).expect("non-empty database");
    println!("words with d_C <= 0.4 of \"casa\": {}", close.len());
}
